//! Dense tensor library for the cnn-stack workspace.
//!
//! This crate is the lowest layer of the reproduction: a small, fully
//! self-contained dense tensor library in the NCHW convention, together
//! with the data-layout transformations (`im2col`/`col2im`) and the GEMM
//! kernels (naive, blocked, and tile-parameterised) that the paper's
//! "Data Formats and Algorithms" stack layer (§IV-C/§IV-D) evaluates.
//!
//! # Example
//!
//! ```
//! use cnn_stack_tensor::{Tensor, gemm};
//!
//! let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
//! let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
//! let c = gemm::matmul(&a, &b);
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
//! ```

pub mod error;
pub mod fft;
pub mod gemm;
pub mod im2col;
pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;
pub mod winograd;

pub use error::KernelError;
pub use fft::{fft_conv2d, fft_conv2d_into, fft_conv_scratch_elems, fft_plane_dims};
pub use gemm::{
    gemm_kernel_name, gemm_packed_into, gemm_prepacked, gemm_prepacked_epilogue,
    gemm_prepacked_int8, gemm_prepacked_ternary, matmul, pack_a_i8_into, pack_a_into,
    pack_a_transposed_into, pack_b_into, pack_b_ternary_transposed_into, pack_b_transposed_i8_into,
    pack_b_transposed_into, quantise_i8, quantise_scale_i8, GemmAlgorithm, GemmEpilogue, GemmPlan,
    TileConfig, MR, NR,
};
pub use im2col::{
    col2im, im2col, im2col_into, pack_b_im2col_batch_into, pack_b_im2col_into, Conv2dGeometry,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use winograd::{
    winograd4_conv2d, winograd4_conv2d_into, winograd4_scratch_elems, winograd_conv2d,
};
