//! General matrix–matrix multiplication kernels.
//!
//! The paper's systems layer leans heavily on GEMM: the im2col convolution
//! lowering (§IV-D) turns every convolution into one `M×K · K×N` product,
//! and the CLBlast comparison in Fig. 6 is a GEMM-library study. This
//! module provides the three CPU variants the characterisation needs:
//!
//! * [`GemmAlgorithm::Naive`] — triple loop in `ijk` order; the reference.
//! * [`GemmAlgorithm::Blocked`] — cache-blocked `ikj` loops with a
//!   fixed block size; the "hand-optimised serial C" analogue.
//! * [`GemmAlgorithm::Tiled`] — fully parameterised tiling mirroring
//!   CLBlast's tuning surface (used by `cnn-stack-hwsim`'s auto-tuner).

use crate::tensor::Tensor;

/// Which GEMM kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum GemmAlgorithm {
    /// Textbook triple loop (`ijk`). O(MNK), poor locality on large K.
    Naive,
    /// Cache-blocked `ikj` ordering with 64-element square blocks.
    #[default]
    Blocked,
    /// Parameterised register/cache tiling; see [`TileConfig`].
    Tiled(TileConfig),
}

/// Tiling parameters for [`GemmAlgorithm::Tiled`].
///
/// These mirror the subset of CLBlast's 14-parameter GEMM tuning surface
/// that is meaningful on a CPU: tile extents in the M/N/K dimensions and
/// an unroll factor for the innermost loop.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::TileConfig;
///
/// let cfg = TileConfig::new(32, 32, 64, 4);
/// assert_eq!(cfg.tile_m, 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Tile extent along the output-row (M) dimension.
    pub tile_m: usize,
    /// Tile extent along the output-column (N) dimension.
    pub tile_n: usize,
    /// Tile extent along the reduction (K) dimension.
    pub tile_k: usize,
    /// Unroll factor for the innermost loop (1, 2, 4 or 8).
    pub unroll: usize,
}

impl TileConfig {
    /// Creates a tile configuration.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero or `unroll` is not in {1, 2, 4, 8}.
    pub fn new(tile_m: usize, tile_n: usize, tile_k: usize, unroll: usize) -> Self {
        assert!(
            tile_m > 0 && tile_n > 0 && tile_k > 0,
            "tile extents must be non-zero"
        );
        assert!(
            matches!(unroll, 1 | 2 | 4 | 8),
            "unroll must be 1, 2, 4 or 8, got {unroll}"
        );
        TileConfig {
            tile_m,
            tile_n,
            tile_k,
            unroll,
        }
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig::new(32, 32, 32, 4)
    }
}

/// Computes `C = A · B` for rank-2 tensors with the default blocked kernel.
///
/// # Panics
///
/// Panics if `a` or `b` is not rank-2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec([1, 2], vec![1.0, 2.0]);
/// let b = Tensor::from_vec([2, 1], vec![3.0, 4.0]);
/// assert_eq!(matmul(&a, &b).data(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with(a, b, GemmAlgorithm::Blocked)
}

/// Computes `C = A · B` with an explicit kernel choice.
///
/// # Panics
///
/// Panics if `a` or `b` is not rank-2 or the inner dimensions disagree.
pub fn matmul_with(a: &Tensor, b: &Tensor, algo: GemmAlgorithm) -> Tensor {
    let (m, ka) = a.shape().matrix();
    let (kb, n) = b.shape().matrix();
    assert_eq!(ka, kb, "inner dimension mismatch: {ka} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    gemm_into(a.data(), b.data(), c.data_mut(), m, ka, n, algo);
    c
}

/// Raw-slice GEMM: `c[m×n] += a[m×k] · b[k×n]`, row-major.
///
/// The accumulating (`+=`) contract lets callers fold a bias initialisation
/// into `c` before the product.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn gemm_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    algo: GemmAlgorithm,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    match algo {
        GemmAlgorithm::Naive => gemm_naive(a, b, c, m, k, n),
        GemmAlgorithm::Blocked => gemm_tiled(a, b, c, m, k, n, TileConfig::new(64, 64, 64, 4)),
        GemmAlgorithm::Tiled(cfg) => gemm_tiled(a, b, c, m, k, n, cfg),
    }
}

/// GEMM over a sub-range of output rows: `c[rows, :] += a[rows, :] · b`.
///
/// This is the unit of work the OpenMP-style parallel executor distributes
/// across threads (one chunk of output rows per task).
///
/// # Panics
///
/// Panics if `row_end > m` or slice lengths are inconsistent.
// Low-level kernel signature: the argument list *is* the GEMM shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rows_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_start: usize,
    row_end: usize,
) {
    assert!(
        row_start <= row_end && row_end <= m,
        "row range out of bounds"
    );
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    for i in row_start..row_end {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

fn gemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

fn gemm_tiled(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, cfg: TileConfig) {
    let TileConfig {
        tile_m,
        tile_n,
        tile_k,
        unroll,
    } = cfg;
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + tile_m).min(m);
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + tile_k).min(k);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + tile_n).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        let av = a[i * k + p];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n..p * n + n];
                        let c_row = &mut c[i * n..i * n + n];
                        let mut j = j0;
                        // Unrolled inner loop over the N tile.
                        while j + unroll <= j1 {
                            for u in 0..unroll {
                                c_row[j + u] += av * b_row[j + u];
                            }
                            j += unroll;
                        }
                        while j < j1 {
                            c_row[j] += av * b_row[j];
                            j += 1;
                        }
                    }
                }
                j0 = j1;
            }
            p0 = p1;
        }
        i0 = i1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: [usize; 2], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_noop() {
        let a = random_tensor([5, 5], 1);
        let id = Tensor::from_fn([5, 5], |off| if off % 6 == 0 { 1.0 } else { 0.0 });
        assert!(matmul(&a, &id).allclose(&a, 1e-6));
        assert!(matmul(&id, &a).allclose(&a, 1e-6));
    }

    #[test]
    fn all_algorithms_agree() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (16, 16, 16),
            (33, 65, 17),
            (64, 128, 9),
        ] {
            let a = random_tensor([m, k], m as u64);
            let b = random_tensor([k, n], n as u64);
            let naive = matmul_with(&a, &b, GemmAlgorithm::Naive);
            let blocked = matmul_with(&a, &b, GemmAlgorithm::Blocked);
            let tiled = matmul_with(&a, &b, GemmAlgorithm::Tiled(TileConfig::new(8, 8, 8, 2)));
            assert!(
                naive.allclose(&blocked, 1e-4),
                "blocked mismatch {m}x{k}x{n}"
            );
            assert!(naive.allclose(&tiled, 1e-4), "tiled mismatch {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_rows_partition_equals_full() {
        let (m, k, n) = (10, 12, 8);
        let a = random_tensor([m, k], 42);
        let b = random_tensor([k, n], 43);
        let full = matmul_with(&a, &b, GemmAlgorithm::Naive);
        let mut c = vec![0.0; m * n];
        gemm_rows_into(a.data(), b.data(), &mut c, m, k, n, 0, 4);
        gemm_rows_into(a.data(), b.data(), &mut c, m, k, n, 4, 10);
        let part = Tensor::from_vec([m, n], c);
        assert!(full.allclose(&part, 1e-5));
    }

    #[test]
    fn accumulates_into_c() {
        let a = Tensor::ones([2, 2]);
        let b = Tensor::ones([2, 2]);
        let mut c = vec![10.0; 4];
        gemm_into(a.data(), b.data(), &mut c, 2, 2, 2, GemmAlgorithm::Naive);
        assert_eq!(c, vec![12.0; 4]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "unroll")]
    fn bad_unroll_rejected() {
        let _ = TileConfig::new(8, 8, 8, 3);
    }

    #[test]
    fn tile_config_default_valid() {
        let cfg = TileConfig::default();
        assert!(cfg.tile_m > 0 && cfg.unroll == 4);
    }
}
