//! General matrix–matrix multiplication kernels.
//!
//! The paper's systems layer leans heavily on GEMM: the im2col convolution
//! lowering (§IV-D) turns every convolution into one `M×K · K×N` product,
//! and the CLBlast comparison in Fig. 6 is a GEMM-library study. This
//! module provides the CPU variants the characterisation needs:
//!
//! * [`GemmAlgorithm::Naive`] — triple loop in `ijk` order; the reference.
//! * [`GemmAlgorithm::Blocked`] — cache-blocked `ikj` loops with a
//!   fixed block size; the "hand-optimised serial C" analogue.
//! * [`GemmAlgorithm::Tiled`] — fully parameterised tiling mirroring
//!   CLBlast's tuning surface (used by `cnn-stack-hwsim`'s auto-tuner).
//! * [`GemmAlgorithm::Packed`] — the tuned-BLAS analogue: a BLIS-style
//!   packed engine that copies A into `MR`-row panels and B into
//!   `NR`-column panels, then drives an `MR×NR` register-tiled
//!   micro-kernel (scalar autovectorised, or AVX2/FMA when the CPU
//!   supports it — detected at runtime) over the panel grid, with the
//!   grid distributed across the `cnn-stack-parallel` pool.
//!
//! # Packed engine layout
//!
//! [`GemmPlan`] fixes the blocking parameters for a shape. A is packed
//! so panel `ip` holds rows `[ip·MR, ip·MR+MR)` in k-major order
//! (`packed_a[ip·MR·k + p·MR + r]`); B so panel `jp` holds columns
//! `[jp·NR, jp·NR+NR)` (`packed_b[jp·NR·k + p·NR + c]`). Ragged edges
//! are zero-padded inside the panels (the reduction dimension `k` is
//! never padded, so padding can never contaminate valid outputs). The
//! micro-kernel then streams both panels with unit stride: one `MR×NR`
//! tile costs `kc` contiguous loads of `MR` A-values and `NR` B-values
//! and `MR·NR` fused multiply-adds per step.

use crate::tensor::Tensor;
use cnn_stack_obs::{self as obs, Metric};
use cnn_stack_parallel::{parallel_tiles, DisjointWriter, Schedule};
use std::sync::OnceLock;

/// Micro-kernel tile height: rows of A (and C) per register tile.
pub const MR: usize = 6;
/// Micro-kernel tile width: columns of B (and C) per register tile.
///
/// Two 8-lane AVX2 vectors; with `MR = 6` the kernel holds 12 YMM
/// accumulators plus two B loads and one A broadcast — 15 of the 16
/// architectural YMM registers.
pub const NR: usize = 16;

/// Which GEMM kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum GemmAlgorithm {
    /// Textbook triple loop (`ijk`). O(MNK), poor locality on large K.
    Naive,
    /// Cache-blocked `ikj` ordering with 64-element square blocks.
    Blocked,
    /// Parameterised register/cache tiling; see [`TileConfig`].
    Tiled(TileConfig),
    /// BLIS-style packed panels + `MR×NR` micro-kernel (AVX2/FMA when
    /// available). The fast path for conv-im2col and linear layers.
    #[default]
    Packed,
    /// Packed engine whose B-panels stay 2-bit ternary codes (one `u32`
    /// per reduction step per NR-panel): the micro-kernel sign-selects
    /// {−Wₙ, 0, +Wₚ} in registers from two per-layer scales. The decoded
    /// values are exact f32s, so the FMA sequence — and therefore the
    /// output bits — match [`GemmAlgorithm::Packed`] run on the
    /// dequantised weights. Requires prepacked ternary panels; callers
    /// without them (e.g. [`gemm_into`]) take the f32 packed path.
    TernaryPacked,
    /// Packed engine over int8 operands (per-tensor scales, f32
    /// accumulate): both panels are quantised `i8`, products accumulate
    /// exactly in f32, and the driver rescales at write-back. Requires
    /// prepacked int8 panels; callers without them take the f32 packed
    /// path.
    Int8Packed,
}

/// Element-wise epilogue fused into the packed engine's write-back.
///
/// The fold-and-fuse plan pass collapses `conv → BN → ReLU` chains into a
/// single kernel; the activation then runs here, applied to each output
/// tile as it is stored (no second sweep over `C`). The epilogue fires
/// only on the **final** `kc` reduction block, when the accumulator for a
/// tile is complete — earlier blocks hold partial sums that must not be
/// clamped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum GemmEpilogue {
    /// Plain accumulate: `C += A·B`.
    #[default]
    None,
    /// `C = max(C + A·B, 0)`. `max` flushes NaN to zero exactly like the
    /// standalone ReLU layer (`f32::max(NaN, 0.0) == 0.0`), so a fused
    /// plan stays bit-identical to the unfused reference even on
    /// non-finite inputs.
    Relu,
}

impl GemmEpilogue {
    /// Applies the epilogue to a finished output value.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            GemmEpilogue::None => v,
            GemmEpilogue::Relu => v.max(0.0),
        }
    }
}

/// Tiling parameters for [`GemmAlgorithm::Tiled`].
///
/// These mirror the subset of CLBlast's 14-parameter GEMM tuning surface
/// that is meaningful on a CPU: tile extents in the M/N/K dimensions and
/// an unroll factor for the innermost loop.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::TileConfig;
///
/// let cfg = TileConfig::new(32, 32, 64, 4);
/// assert_eq!(cfg.tile_m, 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Tile extent along the output-row (M) dimension.
    pub tile_m: usize,
    /// Tile extent along the output-column (N) dimension.
    pub tile_n: usize,
    /// Tile extent along the reduction (K) dimension.
    pub tile_k: usize,
    /// Unroll factor for the innermost loop (1, 2, 4 or 8).
    pub unroll: usize,
}

impl TileConfig {
    /// Creates a tile configuration.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero or `unroll` is not in {1, 2, 4, 8}.
    pub fn new(tile_m: usize, tile_n: usize, tile_k: usize, unroll: usize) -> Self {
        assert!(
            tile_m > 0 && tile_n > 0 && tile_k > 0,
            "tile extents must be non-zero"
        );
        assert!(
            matches!(unroll, 1 | 2 | 4 | 8),
            "unroll must be 1, 2, 4 or 8, got {unroll}"
        );
        TileConfig {
            tile_m,
            tile_n,
            tile_k,
            unroll,
        }
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig::new(32, 32, 32, 4)
    }
}

/// Blocking plan for one packed GEMM shape: the `MC/KC/NC/MR/NR`
/// parameters plus the packed-buffer sizes they imply.
///
/// `InferencePlan` compiles one of these per conv-im2col / linear layer
/// so weight panels can be packed once at plan time and packing scratch
/// can be sized into the session arena.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::{GemmPlan, MR, NR};
///
/// let plan = GemmPlan::new(512, 4608, 196);
/// assert_eq!(plan.packed_a_elems(), 512usize.div_ceil(MR) * MR * 4608);
/// assert_eq!(plan.packed_b_elems(), 196usize.div_ceil(NR) * NR * 4608);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmPlan {
    /// Output rows (rows of A).
    pub m: usize,
    /// Reduction extent (columns of A, rows of B).
    pub k: usize,
    /// Output columns (columns of B).
    pub n: usize,
    /// Rows per parallel row-chunk (multiple of [`MR`]); bounds the A
    /// working set of one grain to `mc × kc` floats (L2-resident).
    pub mc: usize,
    /// Reduction block: the micro-kernel walks K in `kc` steps so one
    /// `kc×NR` B block (64 KiB at `kc = 1024`... sized to 16 KiB here)
    /// stays L1-resident while it is reused across a whole row-chunk.
    pub kc: usize,
    /// Columns per parallel column-grain (multiple of [`NR`]).
    pub nc: usize,
}

impl GemmPlan {
    /// Chooses blocking parameters for an `m×k · k×n` product.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        // kc = 256: one NR-wide B block is 256·16·4 = 16 KiB — half of a
        // typical 32 KiB L1D, leaving room for the 6 KiB A block and the
        // C tile.
        let kc = k.clamp(1, 256);
        // mc = 96 rows = 16 MR-panels: the A working set of a grain is
        // mc·kc·4 ≈ 96 KiB, comfortably L2-resident.
        let mc = (MR * 16).min(m.div_ceil(MR) * MR).max(MR);
        // nc = 64 cols = 4 NR-panels per grain: coarse enough that grain
        // dispatch is amortised, fine enough that row_chunks × col_chunks
        // exceeds the pool size for every conv shape in the paper models.
        let nc = (NR * 4).min(n.div_ceil(NR) * NR).max(NR);
        GemmPlan {
            m,
            k,
            n,
            mc,
            kc,
            nc,
        }
    }

    /// Number of MR-row panels A packs into.
    pub fn m_panels(&self) -> usize {
        self.m.div_ceil(MR)
    }

    /// Number of NR-column panels B packs into.
    pub fn n_panels(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// Elements in the packed-A buffer (rows zero-padded to a multiple
    /// of [`MR`]).
    pub fn packed_a_elems(&self) -> usize {
        self.m_panels() * MR * self.k
    }

    /// Elements in the packed-B buffer (columns zero-padded to a
    /// multiple of [`NR`]).
    pub fn packed_b_elems(&self) -> usize {
        self.n_panels() * NR * self.k
    }

    /// Scratch elements needed to pack both operands.
    pub fn scratch_elems(&self) -> usize {
        self.packed_a_elems() + self.packed_b_elems()
    }

    /// Parallel grains along M (row-chunks of `mc` rows).
    pub fn row_chunks(&self) -> usize {
        self.m_panels().div_ceil(self.mc / MR)
    }

    /// Parallel grains along N (column-grains of `nc` columns).
    pub fn col_chunks(&self) -> usize {
        self.n_panels().div_ceil(self.nc / NR)
    }

    /// Words in a ternary packed-B buffer: one `u32` per reduction step
    /// per NR-panel (16 columns × 2 bits). Compare
    /// [`packed_b_elems`](Self::packed_b_elems): the same panels cost
    /// 16× less memory traffic than f32.
    pub fn ternary_b_words(&self) -> usize {
        self.n_panels() * self.k
    }
}

/// Packs `a[m×k]` (row-major) into MR-row panels: panel `ip` holds rows
/// `[ip·MR, ip·MR+MR)` k-major, i.e. `buf[ip·MR·k + p·MR + r]`. Rows
/// beyond `m` are zero-filled. Writes every element of the panel region,
/// so `buf` may hold arbitrary garbage on entry.
///
/// # Panics
///
/// Panics if `a` or `buf` is shorter than the plan requires.
pub fn pack_a_into(plan: &GemmPlan, a: &[f32], buf: &mut [f32]) {
    let (m, k) = (plan.m, plan.k);
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert!(
        buf.len() >= plan.packed_a_elems(),
        "packed-A buffer too small"
    );
    for ip in 0..plan.m_panels() {
        let dst = &mut buf[ip * MR * k..(ip + 1) * MR * k];
        for r in 0..MR {
            let row = ip * MR + r;
            if row < m {
                let src = &a[row * k..row * k + k];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * MR + r] = v;
                }
            } else {
                for p in 0..k {
                    dst[p * MR + r] = 0.0;
                }
            }
        }
    }
    obs::count(
        Metric::GemmBytesPacked,
        (plan.packed_a_elems() * std::mem::size_of::<f32>()) as u64,
    );
}

/// Packs `b[k×n]` (row-major) into NR-column panels: panel `jp` holds
/// columns `[jp·NR, jp·NR+NR)`, i.e. `buf[jp·NR·k + p·NR + c]`. Columns
/// beyond `n` are zero-filled.
///
/// # Panics
///
/// Panics if `b` or `buf` is shorter than the plan requires.
pub fn pack_b_into(plan: &GemmPlan, b: &[f32], buf: &mut [f32]) {
    let (k, n) = (plan.k, plan.n);
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert!(
        buf.len() >= plan.packed_b_elems(),
        "packed-B buffer too small"
    );
    for jp in 0..plan.n_panels() {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let dst = &mut buf[jp * NR * k..(jp + 1) * NR * k];
        for p in 0..k {
            let src = &b[p * n + j0..p * n + j0 + cols];
            let d = &mut dst[p * NR..p * NR + NR];
            d[..cols].copy_from_slice(src);
            d[cols..].fill(0.0);
        }
    }
    obs::count(
        Metric::GemmBytesPacked,
        (plan.packed_b_elems() * std::mem::size_of::<f32>()) as u64,
    );
}

/// Packs `Wᵀ` into NR-column panels directly from `w[n×k]` (row-major),
/// without materialising the transpose: the packed B is the `k×n`
/// matrix with `B[p][j] = w[j·k + p]`. This is the linear layer's
/// weight layout (`W[out, in]`, `B = Wᵀ`).
///
/// # Panics
///
/// Panics if `w` or `buf` is shorter than the plan requires.
pub fn pack_b_transposed_into(plan: &GemmPlan, w: &[f32], buf: &mut [f32]) {
    let (k, n) = (plan.k, plan.n);
    assert_eq!(w.len(), n * k, "W length mismatch");
    assert!(
        buf.len() >= plan.packed_b_elems(),
        "packed-B buffer too small"
    );
    for jp in 0..plan.n_panels() {
        let j0 = jp * NR;
        let dst = &mut buf[jp * NR * k..(jp + 1) * NR * k];
        for c in 0..NR {
            let col = j0 + c;
            if col < n {
                let src = &w[col * k..col * k + k];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * NR + c] = v;
                }
            } else {
                for p in 0..k {
                    dst[p * NR + c] = 0.0;
                }
            }
        }
    }
    obs::count(
        Metric::GemmBytesPacked,
        (plan.packed_b_elems() * std::mem::size_of::<f32>()) as u64,
    );
}

/// Packs `Aᵀ` into MR-row panels directly from `at[k×m]` (row-major),
/// without materialising the transpose: the packed A is the `m×k`
/// matrix with `A[r][p] = at[p·m + r]`. This is the transposed-conv
/// orientation — the im2col matrix `[patch_len, positions]` *is* `Aᵀ`
/// when positions play the M role — and the copies are contiguous
/// MR-wide runs of each `at` row, so it is cheaper than [`pack_a_into`]
/// on an explicit transpose.
///
/// # Panics
///
/// Panics if `at` or `buf` is shorter than the plan requires.
pub fn pack_a_transposed_into(plan: &GemmPlan, at: &[f32], buf: &mut [f32]) {
    let (m, k) = (plan.m, plan.k);
    assert_eq!(at.len(), k * m, "Aᵀ length mismatch");
    assert!(
        buf.len() >= plan.packed_a_elems(),
        "packed-A buffer too small"
    );
    for ip in 0..plan.m_panels() {
        let i0 = ip * MR;
        let rows = MR.min(m - i0);
        let dst = &mut buf[ip * MR * k..(ip + 1) * MR * k];
        for p in 0..k {
            let src = &at[p * m + i0..p * m + i0 + rows];
            let d = &mut dst[p * MR..p * MR + MR];
            d[..rows].copy_from_slice(src);
            d[rows..].fill(0.0);
        }
    }
    obs::count(
        Metric::GemmBytesPacked,
        (plan.packed_a_elems() * std::mem::size_of::<f32>()) as u64,
    );
}

/// Packs the *signs* of `Wᵀ` into 2-bit ternary NR-column panels: one
/// `u32` per reduction step per panel, the code for column `c` at bits
/// `2c..2c+2` — `0b00` = 0, `0b01` = +Wₚ, `0b10` = −Wₙ. `w[n×k]` is the
/// linear weight layout (`B = Wᵀ`), exactly as in
/// [`pack_b_transposed_into`]; columns beyond `n` encode zero. The two
/// magnitudes are *not* stored here — the caller passes them to
/// [`gemm_prepacked_ternary`], which is what makes the panels reusable
/// across scale updates.
///
/// # Panics
///
/// Panics if `w` or `buf` is shorter than the plan requires.
pub fn pack_b_ternary_transposed_into(plan: &GemmPlan, w: &[f32], buf: &mut [u32]) {
    let (k, n) = (plan.k, plan.n);
    assert_eq!(w.len(), n * k, "W length mismatch");
    assert!(
        buf.len() >= plan.ternary_b_words(),
        "ternary packed-B buffer too small"
    );
    for jp in 0..plan.n_panels() {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let dst = &mut buf[jp * k..(jp + 1) * k];
        dst.fill(0);
        for c in 0..cols {
            let src = &w[(j0 + c) * k..(j0 + c) * k + k];
            for (p, &v) in src.iter().enumerate() {
                let code: u32 = if v > 0.0 {
                    0b01
                } else if v < 0.0 {
                    0b10
                } else {
                    0b00
                };
                dst[p] |= code << (2 * c);
            }
        }
    }
    obs::count(
        Metric::GemmBytesPacked,
        (plan.ternary_b_words() * std::mem::size_of::<u32>()) as u64,
    );
}

/// Per-tensor int8 quantisation scale: `127 / max|x|`, or `1.0` when the
/// data is empty, all-zero, or contains a non-finite value (every
/// element then saturates/zeroes predictably under [`quantise_i8`]).
pub fn quantise_scale_i8(data: &[f32]) -> f32 {
    let mut maxabs = 0.0f32;
    for &v in data {
        // `f32::max` would silently drop a NaN operand, so reject
        // non-finite values explicitly.
        if !v.is_finite() {
            return 1.0;
        }
        maxabs = maxabs.max(v.abs());
    }
    if maxabs > 0.0 {
        127.0 / maxabs
    } else {
        1.0
    }
}

/// Quantises one value to int8: `round(v · scale)` clamped to
/// `[-127, 127]`. NaN maps to 0 (the `as` cast's saturating contract) —
/// the int8 path is documented lossy, unlike the ternary path.
#[inline]
pub fn quantise_i8(v: f32, scale: f32) -> i8 {
    (v * scale).round().clamp(-127.0, 127.0) as i8
}

/// [`pack_a_into`] for the int8 engine: quantises `a[m×k]` by `scale`
/// while packing into MR-row i8 panels (same `buf[ip·MR·k + p·MR + r]`
/// layout, one byte per element).
///
/// # Panics
///
/// Panics if `a` or `buf` is shorter than the plan requires.
pub fn pack_a_i8_into(plan: &GemmPlan, a: &[f32], scale: f32, buf: &mut [i8]) {
    let (m, k) = (plan.m, plan.k);
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert!(
        buf.len() >= plan.packed_a_elems(),
        "packed-A buffer too small"
    );
    for ip in 0..plan.m_panels() {
        let dst = &mut buf[ip * MR * k..(ip + 1) * MR * k];
        for r in 0..MR {
            let row = ip * MR + r;
            if row < m {
                let src = &a[row * k..row * k + k];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * MR + r] = quantise_i8(v, scale);
                }
            } else {
                for p in 0..k {
                    dst[p * MR + r] = 0;
                }
            }
        }
    }
    obs::count(Metric::GemmBytesPacked, plan.packed_a_elems() as u64);
}

/// [`pack_b_transposed_into`] for the int8 engine: quantises `w[n×k]` by
/// `scale` while packing `Wᵀ` into NR-column i8 panels (same
/// `buf[jp·NR·k + p·NR + c]` layout, one byte per element).
///
/// # Panics
///
/// Panics if `w` or `buf` is shorter than the plan requires.
pub fn pack_b_transposed_i8_into(plan: &GemmPlan, w: &[f32], scale: f32, buf: &mut [i8]) {
    let (k, n) = (plan.k, plan.n);
    assert_eq!(w.len(), n * k, "W length mismatch");
    assert!(
        buf.len() >= plan.packed_b_elems(),
        "packed-B buffer too small"
    );
    for jp in 0..plan.n_panels() {
        let j0 = jp * NR;
        let dst = &mut buf[jp * NR * k..(jp + 1) * NR * k];
        for c in 0..NR {
            let col = j0 + c;
            if col < n {
                let src = &w[col * k..col * k + k];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * NR + c] = quantise_i8(v, scale);
                }
            } else {
                for p in 0..k {
                    dst[p * NR + c] = 0;
                }
            }
        }
    }
    obs::count(Metric::GemmBytesPacked, plan.packed_b_elems() as u64);
}

/// Which micro-kernel the packed engine dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MicroKernel {
    Scalar,
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    Avx2Fma,
}

/// Runtime kernel selection, resolved once per process. Set
/// `CNN_STACK_GEMM_FORCE_SCALAR=1` (before the first GEMM) to pin the
/// portable kernel for A/B comparisons.
fn active_kernel() -> MicroKernel {
    static KERNEL: OnceLock<MicroKernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            if std::env::var_os("CNN_STACK_GEMM_FORCE_SCALAR").is_none()
                && is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
            {
                return MicroKernel::Avx2Fma;
            }
        }
        MicroKernel::Scalar
    })
}

/// Name of the micro-kernel the packed engine will use on this host
/// (`"avx2+fma"` or `"scalar"`). Benchmarks record it next to their
/// numbers.
pub fn gemm_kernel_name() -> &'static str {
    match active_kernel() {
        MicroKernel::Scalar => "scalar",
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        MicroKernel::Avx2Fma => "avx2+fma",
    }
}

/// Portable micro-kernel: `acc[MR][NR] += A-panel-block · B-panel-block`
/// over `a.len()/MR` reduction steps. Written so the inner loop
/// autovectorises: fixed-width rows, `chunks_exact`, no bounds checks in
/// the hot loop.
fn microkernel_scalar(a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ap, bp) in a.chunks_exact(MR).zip(b.chunks_exact(NR)) {
        let ap: &[f32; MR] = ap.try_into().expect("chunks_exact yields MR");
        let bp: &[f32; NR] = bp.try_into().expect("chunks_exact yields NR");
        for r in 0..MR {
            let ar = ap[r];
            let row = &mut acc[r];
            for c in 0..NR {
                row[c] += ar * bp[c];
            }
        }
    }
}

/// AVX2/FMA micro-kernel: 12 YMM accumulators (6 rows × 2 vectors of 8
/// lanes), one broadcast per A value, two loads per B step.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA (checked once in
/// [`active_kernel`]). `a.len()` must be a multiple of `MR` and
/// `b.len()/NR` must equal `a.len()/MR`.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    debug_assert_eq!(a.len() % MR, 0);
    debug_assert_eq!(b.len() % NR, 0);
    debug_assert_eq!(a.len() / MR, b.len() / NR);
    let kc = a.len() / MR;

    // SAFETY (all intrinsics below): loads/stores stay inside `a`, `b`
    // and `acc`, whose lengths are checked above; alignment is not
    // required by the unaligned (`_mm256_loadu_ps`/`_mm256_storeu_ps`)
    // forms.
    let mut c00 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c01 = _mm256_loadu_ps(acc[0].as_ptr().add(8));
    let mut c10 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c11 = _mm256_loadu_ps(acc[1].as_ptr().add(8));
    let mut c20 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c21 = _mm256_loadu_ps(acc[2].as_ptr().add(8));
    let mut c30 = _mm256_loadu_ps(acc[3].as_ptr());
    let mut c31 = _mm256_loadu_ps(acc[3].as_ptr().add(8));
    let mut c40 = _mm256_loadu_ps(acc[4].as_ptr());
    let mut c41 = _mm256_loadu_ps(acc[4].as_ptr().add(8));
    let mut c50 = _mm256_loadu_ps(acc[5].as_ptr());
    let mut c51 = _mm256_loadu_ps(acc[5].as_ptr().add(8));

    let mut ap = a.as_ptr();
    let mut bp = b.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        let a0 = _mm256_set1_ps(*ap);
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*ap.add(1));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*ap.add(2));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*ap.add(3));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
        let a4 = _mm256_set1_ps(*ap.add(4));
        c40 = _mm256_fmadd_ps(a4, b0, c40);
        c41 = _mm256_fmadd_ps(a4, b1, c41);
        let a5 = _mm256_set1_ps(*ap.add(5));
        c50 = _mm256_fmadd_ps(a5, b0, c50);
        c51 = _mm256_fmadd_ps(a5, b1, c51);
        ap = ap.add(MR);
        bp = bp.add(NR);
    }

    _mm256_storeu_ps(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_ps(acc[0].as_mut_ptr().add(8), c01);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_ps(acc[1].as_mut_ptr().add(8), c11);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_ps(acc[2].as_mut_ptr().add(8), c21);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_ps(acc[3].as_mut_ptr().add(8), c31);
    _mm256_storeu_ps(acc[4].as_mut_ptr(), c40);
    _mm256_storeu_ps(acc[4].as_mut_ptr().add(8), c41);
    _mm256_storeu_ps(acc[5].as_mut_ptr(), c50);
    _mm256_storeu_ps(acc[5].as_mut_ptr().add(8), c51);
}

/// Dispatches one `MR×NR` reduction block to the active micro-kernel.
#[inline]
fn microkernel(kernel: MicroKernel, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    match kernel {
        MicroKernel::Scalar => microkernel_scalar(a, b, acc),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `Avx2Fma` is only ever selected by `active_kernel`
        // after `is_x86_feature_detected!` confirmed AVX2 and FMA; the
        // slice-length contract is upheld by the panel driver.
        MicroKernel::Avx2Fma => unsafe { microkernel_avx2(a, b, acc) },
    }
}

/// Portable ternary micro-kernel: decodes each 2-bit B code word into an
/// exact f32 row {0, +Wₚ, −Wₙ}, then runs the identical FMA loop as
/// [`microkernel_scalar`] — same operations on the same values, so the
/// accumulator bits match the f32 kernel on dequantised weights.
fn microkernel_ternary_scalar(
    a: &[f32],
    codes: &[u32],
    positive: f32,
    negative: f32,
    acc: &mut [[f32; NR]; MR],
) {
    let lut = [0.0f32, positive, -negative, 0.0];
    for (ap, &word) in a.chunks_exact(MR).zip(codes) {
        let ap: &[f32; MR] = ap.try_into().expect("chunks_exact yields MR");
        let mut bp = [0.0f32; NR];
        for (c, b) in bp.iter_mut().enumerate() {
            *b = lut[((word >> (2 * c)) & 0b11) as usize];
        }
        for r in 0..MR {
            let ar = ap[r];
            let row = &mut acc[r];
            for c in 0..NR {
                row[c] += ar * bp[c];
            }
        }
    }
}

/// AVX2/FMA ternary micro-kernel: each `u32` code word expands into two
/// B vectors with three instructions apiece — variable right-shift
/// (`vpsrlvd`) to move each 2-bit code into lane bits 1:0, mask, then a
/// `vpermps` gather from the in-register table {0, +Wₚ, −Wₙ, 0} — and
/// the FMA ladder is byte-for-byte the one in [`microkernel_avx2`], so
/// outputs are bit-identical to the f32 kernel on dequantised weights
/// while B-panel traffic drops 16×.
///
/// # Safety
///
/// Caller must ensure AVX2 and FMA are available. `a.len()` must be a
/// multiple of `MR` and `codes.len()` must equal `a.len() / MR`.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_ternary_avx2(
    a: &[f32],
    codes: &[u32],
    positive: f32,
    negative: f32,
    acc: &mut [[f32; NR]; MR],
) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    debug_assert_eq!(a.len() % MR, 0);
    debug_assert_eq!(codes.len(), a.len() / MR);
    let kc = a.len() / MR;

    // Decode table: lane index = 2-bit code (0b11 is never produced by
    // the packer but still lands on 0.0).
    let lut = _mm256_setr_ps(0.0, positive, -negative, 0.0, 0.0, 0.0, 0.0, 0.0);
    let shifts_lo = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
    let shifts_hi = _mm256_setr_epi32(16, 18, 20, 22, 24, 26, 28, 30);
    let mask3 = _mm256_set1_epi32(3);

    // SAFETY (all intrinsics below): loads/stores stay inside `a`,
    // `codes` and `acc`, whose lengths are checked above; only unaligned
    // load/store forms are used.
    let mut c00 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c01 = _mm256_loadu_ps(acc[0].as_ptr().add(8));
    let mut c10 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c11 = _mm256_loadu_ps(acc[1].as_ptr().add(8));
    let mut c20 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c21 = _mm256_loadu_ps(acc[2].as_ptr().add(8));
    let mut c30 = _mm256_loadu_ps(acc[3].as_ptr());
    let mut c31 = _mm256_loadu_ps(acc[3].as_ptr().add(8));
    let mut c40 = _mm256_loadu_ps(acc[4].as_ptr());
    let mut c41 = _mm256_loadu_ps(acc[4].as_ptr().add(8));
    let mut c50 = _mm256_loadu_ps(acc[5].as_ptr());
    let mut c51 = _mm256_loadu_ps(acc[5].as_ptr().add(8));

    let mut ap = a.as_ptr();
    let mut wp = codes.as_ptr();
    for _ in 0..kc {
        let w = _mm256_set1_epi32(*wp as i32);
        let idx0 = _mm256_and_si256(_mm256_srlv_epi32(w, shifts_lo), mask3);
        let idx1 = _mm256_and_si256(_mm256_srlv_epi32(w, shifts_hi), mask3);
        let b0 = _mm256_permutevar8x32_ps(lut, idx0);
        let b1 = _mm256_permutevar8x32_ps(lut, idx1);
        let a0 = _mm256_set1_ps(*ap);
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*ap.add(1));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*ap.add(2));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*ap.add(3));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
        let a4 = _mm256_set1_ps(*ap.add(4));
        c40 = _mm256_fmadd_ps(a4, b0, c40);
        c41 = _mm256_fmadd_ps(a4, b1, c41);
        let a5 = _mm256_set1_ps(*ap.add(5));
        c50 = _mm256_fmadd_ps(a5, b0, c50);
        c51 = _mm256_fmadd_ps(a5, b1, c51);
        ap = ap.add(MR);
        wp = wp.add(1);
    }

    _mm256_storeu_ps(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_ps(acc[0].as_mut_ptr().add(8), c01);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_ps(acc[1].as_mut_ptr().add(8), c11);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_ps(acc[2].as_mut_ptr().add(8), c21);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_ps(acc[3].as_mut_ptr().add(8), c31);
    _mm256_storeu_ps(acc[4].as_mut_ptr(), c40);
    _mm256_storeu_ps(acc[4].as_mut_ptr().add(8), c41);
    _mm256_storeu_ps(acc[5].as_mut_ptr(), c50);
    _mm256_storeu_ps(acc[5].as_mut_ptr().add(8), c51);
}

/// Dispatches one ternary reduction block to the active micro-kernel.
#[inline]
fn microkernel_ternary(
    kernel: MicroKernel,
    a: &[f32],
    codes: &[u32],
    positive: f32,
    negative: f32,
    acc: &mut [[f32; NR]; MR],
) {
    match kernel {
        MicroKernel::Scalar => microkernel_ternary_scalar(a, codes, positive, negative, acc),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `Avx2Fma` is only ever selected by `active_kernel`
        // after `is_x86_feature_detected!` confirmed AVX2 and FMA; the
        // slice-length contract is upheld by the panel driver.
        MicroKernel::Avx2Fma => unsafe {
            microkernel_ternary_avx2(a, codes, positive, negative, acc)
        },
    }
}

/// Portable int8 micro-kernel: products of i8 operands accumulate in
/// f32. Every product is an integer with |p| ≤ 127² = 16129 and a block
/// partial sum is bounded by `kc · 16129 < 2²⁴` (kc ≤ 256), so the f32
/// accumulation is *exact* — the scalar and FMA kernels agree bit for
/// bit.
fn microkernel_int8_scalar(a: &[i8], b: &[i8], acc: &mut [[f32; NR]; MR]) {
    for (ap, bp) in a.chunks_exact(MR).zip(b.chunks_exact(NR)) {
        let ap: &[i8; MR] = ap.try_into().expect("chunks_exact yields MR");
        let bp: &[i8; NR] = bp.try_into().expect("chunks_exact yields NR");
        for r in 0..MR {
            let ar = ap[r] as f32;
            let row = &mut acc[r];
            for c in 0..NR {
                row[c] += ar * bp[c] as f32;
            }
        }
    }
}

/// AVX2/FMA int8 micro-kernel: one 16-byte B load per step sign-extends
/// to two i32 vectors (`vpmovsxbd`) and converts to f32; the FMA ladder
/// matches [`microkernel_avx2`]. Exact for the same reason as the scalar
/// variant (all intermediates are integers below 2²⁴).
///
/// # Safety
///
/// Caller must ensure AVX2 and FMA are available. `a.len()` must be a
/// multiple of `MR` and `b.len() / NR` must equal `a.len() / MR`.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_int8_avx2(a: &[i8], b: &[i8], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    debug_assert_eq!(a.len() % MR, 0);
    debug_assert_eq!(b.len() % NR, 0);
    debug_assert_eq!(a.len() / MR, b.len() / NR);
    let kc = a.len() / MR;

    // SAFETY (all intrinsics below): loads/stores stay inside `a`, `b`
    // and `acc`, whose lengths are checked above; only unaligned forms
    // are used.
    let mut c00 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c01 = _mm256_loadu_ps(acc[0].as_ptr().add(8));
    let mut c10 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c11 = _mm256_loadu_ps(acc[1].as_ptr().add(8));
    let mut c20 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c21 = _mm256_loadu_ps(acc[2].as_ptr().add(8));
    let mut c30 = _mm256_loadu_ps(acc[3].as_ptr());
    let mut c31 = _mm256_loadu_ps(acc[3].as_ptr().add(8));
    let mut c40 = _mm256_loadu_ps(acc[4].as_ptr());
    let mut c41 = _mm256_loadu_ps(acc[4].as_ptr().add(8));
    let mut c50 = _mm256_loadu_ps(acc[5].as_ptr());
    let mut c51 = _mm256_loadu_ps(acc[5].as_ptr().add(8));

    let mut ap = a.as_ptr();
    let mut bp = b.as_ptr();
    for _ in 0..kc {
        let raw = _mm_loadu_si128(bp as *const __m128i);
        let b0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
        let b1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128::<8>(raw)));
        let a0 = _mm256_set1_ps(*ap as f32);
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*ap.add(1) as f32);
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*ap.add(2) as f32);
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*ap.add(3) as f32);
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
        let a4 = _mm256_set1_ps(*ap.add(4) as f32);
        c40 = _mm256_fmadd_ps(a4, b0, c40);
        c41 = _mm256_fmadd_ps(a4, b1, c41);
        let a5 = _mm256_set1_ps(*ap.add(5) as f32);
        c50 = _mm256_fmadd_ps(a5, b0, c50);
        c51 = _mm256_fmadd_ps(a5, b1, c51);
        ap = ap.add(MR);
        bp = bp.add(NR);
    }

    _mm256_storeu_ps(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_ps(acc[0].as_mut_ptr().add(8), c01);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_ps(acc[1].as_mut_ptr().add(8), c11);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_ps(acc[2].as_mut_ptr().add(8), c21);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_ps(acc[3].as_mut_ptr().add(8), c31);
    _mm256_storeu_ps(acc[4].as_mut_ptr(), c40);
    _mm256_storeu_ps(acc[4].as_mut_ptr().add(8), c41);
    _mm256_storeu_ps(acc[5].as_mut_ptr(), c50);
    _mm256_storeu_ps(acc[5].as_mut_ptr().add(8), c51);
}

/// Dispatches one int8 reduction block to the active micro-kernel.
#[inline]
fn microkernel_int8(kernel: MicroKernel, a: &[i8], b: &[i8], acc: &mut [[f32; NR]; MR]) {
    match kernel {
        MicroKernel::Scalar => microkernel_int8_scalar(a, b, acc),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `Avx2Fma` is only ever selected by `active_kernel`
        // after `is_x86_feature_detected!` confirmed AVX2 and FMA; the
        // slice-length contract is upheld by the panel driver.
        MicroKernel::Avx2Fma => unsafe { microkernel_int8_avx2(a, b, acc) },
    }
}

/// Packed GEMM over pre-packed operands: `c[m×n] += packed_a · packed_b`.
///
/// Both operands must be packed with this `plan`'s shape (see
/// [`pack_a_into`] / [`pack_b_into`]). The `(row-chunk, column-grain)`
/// grid is distributed over `threads` workers via
/// `cnn_stack_parallel::parallel_tiles`; each grain walks K in `kc`
/// blocks so the active B block stays cache-resident while it is reused
/// across the row-chunk. Never allocates.
///
/// # Panics
///
/// Panics if a buffer is shorter than the plan requires.
pub fn gemm_prepacked(
    plan: &GemmPlan,
    packed_a: &[f32],
    packed_b: &[f32],
    c: &mut [f32],
    threads: usize,
    schedule: Schedule,
) {
    gemm_prepacked_epilogue(
        plan,
        packed_a,
        packed_b,
        c,
        threads,
        schedule,
        GemmEpilogue::None,
    );
}

/// [`gemm_prepacked`] with a fused [`GemmEpilogue`]: the activation is
/// applied in the micro-kernel's write-back on the final `kc` reduction
/// block, so a fused conv/linear + ReLU costs zero extra passes over `C`.
///
/// # Panics
///
/// Panics if a buffer is shorter than the plan requires.
#[allow(clippy::too_many_arguments)] // low-level kernel: the argument list *is* the GEMM shape
pub fn gemm_prepacked_epilogue(
    plan: &GemmPlan,
    packed_a: &[f32],
    packed_b: &[f32],
    c: &mut [f32],
    threads: usize,
    schedule: Schedule,
    epilogue: GemmEpilogue,
) {
    let GemmPlan { m, k, n, .. } = *plan;
    assert!(
        packed_a.len() >= plan.packed_a_elems(),
        "packed-A too small"
    );
    assert!(
        packed_b.len() >= plan.packed_b_elems(),
        "packed-B too small"
    );
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 || k == 0 {
        // k == 0 is an empty reduction: C += 0, exactly like the naive
        // loop — but a fused epilogue still applies to the finished C.
        if k == 0 && epilogue == GemmEpilogue::Relu {
            for v in c.iter_mut() {
                *v = v.max(0.0);
            }
        }
        return;
    }
    let kernel = active_kernel();
    let m_panels = plan.m_panels();
    let n_panels = plan.n_panels();
    let panels_per_row_chunk = plan.mc / MR;
    let panels_per_col_chunk = plan.nc / NR;
    let kc = plan.kc;

    // One batched registry update per call (the panel/k-block counts are
    // known analytically); the logical m·k·n — not the padded panel work
    // — so `gemm.flops` matches the IR's analytic FLOP count exactly.
    obs::with_current(|o| {
        let metrics = o.metrics();
        metrics.add(Metric::GemmCalls, 1);
        metrics.add(Metric::GemmFlops, 2 * (m * k * n) as u64);
        metrics.add(
            Metric::GemmPanels,
            (m_panels * n_panels * k.div_ceil(kc)) as u64,
        );
        let kernel_metric = match kernel {
            MicroKernel::Scalar => Metric::GemmKernelScalar,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            MicroKernel::Avx2Fma => Metric::GemmKernelAvx2,
        };
        metrics.add(kernel_metric, 1);
    });

    let writer = DisjointWriter::new(c);
    let writer = &writer;
    parallel_tiles(
        threads,
        plan.row_chunks(),
        plan.col_chunks(),
        schedule,
        |rc, cc| {
            let ip0 = rc * panels_per_row_chunk;
            let ip1 = (ip0 + panels_per_row_chunk).min(m_panels);
            let jp0 = cc * panels_per_col_chunk;
            let jp1 = (jp0 + panels_per_col_chunk).min(n_panels);
            // K-blocked panel walk: the kc×NR B block loaded for `jp`
            // stays L1-resident while every row panel of the chunk
            // streams past it.
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                // The epilogue may only clamp completed accumulators:
                // every earlier block writes raw partial sums.
                let last_block = pc + kc_eff >= k;
                for jp in jp0..jp1 {
                    let b_block =
                        &packed_b[jp * NR * k + pc * NR..jp * NR * k + (pc + kc_eff) * NR];
                    let j0 = jp * NR;
                    let cols = NR.min(n - j0);
                    for ip in ip0..ip1 {
                        let a_block =
                            &packed_a[ip * MR * k + pc * MR..ip * MR * k + (pc + kc_eff) * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        microkernel(kernel, a_block, b_block, &mut acc);
                        let i0 = ip * MR;
                        let rows = MR.min(m - i0);
                        for (r, acc_row) in acc.iter().enumerate().take(rows) {
                            let row = i0 + r;
                            // SAFETY: grain (rc, cc) exclusively owns
                            // rows [ip0·MR, ip1·MR) × cols [jp0·NR,
                            // jp1·NR) of C; ranges from distinct grains
                            // never overlap, and the buffer outlives
                            // the parallel region.
                            let dst =
                                unsafe { writer.slice_mut(row * n + j0, row * n + j0 + cols) };
                            if last_block && epilogue == GemmEpilogue::Relu {
                                for (d, &v) in dst.iter_mut().zip(&acc_row[..cols]) {
                                    *d = (*d + v).max(0.0);
                                }
                            } else {
                                for (d, &v) in dst.iter_mut().zip(&acc_row[..cols]) {
                                    *d += v;
                                }
                            }
                        }
                    }
                }
                pc += kc_eff;
            }
        },
    );
}

/// Ternary packed GEMM: `c[m×n] += packed_a · B` where B lives as 2-bit
/// codes (see [`pack_b_ternary_transposed_into`]) with per-layer
/// magnitudes `positive`/`negative` (the −Wₙ sign is applied in the
/// kernel; pass `negative` as a positive magnitude). Blocking, K-walk,
/// parallel grid, and the fused epilogue are identical to
/// [`gemm_prepacked_epilogue`]; since the decoded weights are exact
/// f32s, the output is bit-identical to the f32 engine run on the
/// dequantised weights — the property the guard's quantised→packed
/// demotion relies on.
///
/// # Panics
///
/// Panics if a buffer is shorter than the plan requires.
#[allow(clippy::too_many_arguments)] // low-level kernel: the argument list *is* the GEMM shape
pub fn gemm_prepacked_ternary(
    plan: &GemmPlan,
    packed_a: &[f32],
    codes: &[u32],
    positive: f32,
    negative: f32,
    c: &mut [f32],
    threads: usize,
    schedule: Schedule,
    epilogue: GemmEpilogue,
) {
    let GemmPlan { m, k, n, .. } = *plan;
    assert!(
        packed_a.len() >= plan.packed_a_elems(),
        "packed-A too small"
    );
    assert!(
        codes.len() >= plan.ternary_b_words(),
        "ternary packed-B too small"
    );
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 || k == 0 {
        if k == 0 && epilogue == GemmEpilogue::Relu {
            for v in c.iter_mut() {
                *v = v.max(0.0);
            }
        }
        return;
    }
    let kernel = active_kernel();
    let m_panels = plan.m_panels();
    let n_panels = plan.n_panels();
    let panels_per_row_chunk = plan.mc / MR;
    let panels_per_col_chunk = plan.nc / NR;
    let kc = plan.kc;

    obs::with_current(|o| {
        let metrics = o.metrics();
        metrics.add(Metric::GemmCalls, 1);
        metrics.add(Metric::GemmFlops, 2 * (m * k * n) as u64);
        metrics.add(
            Metric::GemmPanels,
            (m_panels * n_panels * k.div_ceil(kc)) as u64,
        );
        metrics.add(Metric::GemmKernelTernary, 1);
    });

    let writer = DisjointWriter::new(c);
    let writer = &writer;
    parallel_tiles(
        threads,
        plan.row_chunks(),
        plan.col_chunks(),
        schedule,
        |rc, cc| {
            let ip0 = rc * panels_per_row_chunk;
            let ip1 = (ip0 + panels_per_row_chunk).min(m_panels);
            let jp0 = cc * panels_per_col_chunk;
            let jp1 = (jp0 + panels_per_col_chunk).min(n_panels);
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                let last_block = pc + kc_eff >= k;
                for jp in jp0..jp1 {
                    let b_codes = &codes[jp * k + pc..jp * k + pc + kc_eff];
                    let j0 = jp * NR;
                    let cols = NR.min(n - j0);
                    for ip in ip0..ip1 {
                        let a_block =
                            &packed_a[ip * MR * k + pc * MR..ip * MR * k + (pc + kc_eff) * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        microkernel_ternary(kernel, a_block, b_codes, positive, negative, &mut acc);
                        let i0 = ip * MR;
                        let rows = MR.min(m - i0);
                        for (r, acc_row) in acc.iter().enumerate().take(rows) {
                            let row = i0 + r;
                            // SAFETY: grain (rc, cc) exclusively owns
                            // rows [ip0·MR, ip1·MR) × cols [jp0·NR,
                            // jp1·NR) of C; ranges from distinct grains
                            // never overlap, and the buffer outlives
                            // the parallel region.
                            let dst =
                                unsafe { writer.slice_mut(row * n + j0, row * n + j0 + cols) };
                            if last_block && epilogue == GemmEpilogue::Relu {
                                for (d, &v) in dst.iter_mut().zip(&acc_row[..cols]) {
                                    *d = (*d + v).max(0.0);
                                }
                            } else {
                                for (d, &v) in dst.iter_mut().zip(&acc_row[..cols]) {
                                    *d += v;
                                }
                            }
                        }
                    }
                }
                pc += kc_eff;
            }
        },
    );
}

/// Int8 packed GEMM: `c[m×n] += scale · (packed_a · packed_b)` over i8
/// panels (see [`pack_a_i8_into`] / [`pack_b_transposed_i8_into`]), with
/// `scale = 1 / (qa · qw)` folding both quantisation scales back out.
/// Products accumulate exactly in f32 inside each `kc` block, and the
/// rescale happens at *every* block's write-back (a constant scale
/// distributes over the blocked partial sums), so K-blocking cannot
/// change the result; a fused ReLU still fires only on the final block.
///
/// # Panics
///
/// Panics if a buffer is shorter than the plan requires.
#[allow(clippy::too_many_arguments)] // low-level kernel: the argument list *is* the GEMM shape
pub fn gemm_prepacked_int8(
    plan: &GemmPlan,
    packed_a: &[i8],
    packed_b: &[i8],
    scale: f32,
    c: &mut [f32],
    threads: usize,
    schedule: Schedule,
    epilogue: GemmEpilogue,
) {
    let GemmPlan { m, k, n, .. } = *plan;
    assert!(
        packed_a.len() >= plan.packed_a_elems(),
        "packed-A too small"
    );
    assert!(
        packed_b.len() >= plan.packed_b_elems(),
        "packed-B too small"
    );
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 || k == 0 {
        if k == 0 && epilogue == GemmEpilogue::Relu {
            for v in c.iter_mut() {
                *v = v.max(0.0);
            }
        }
        return;
    }
    let kernel = active_kernel();
    let m_panels = plan.m_panels();
    let n_panels = plan.n_panels();
    let panels_per_row_chunk = plan.mc / MR;
    let panels_per_col_chunk = plan.nc / NR;
    let kc = plan.kc;

    obs::with_current(|o| {
        let metrics = o.metrics();
        metrics.add(Metric::GemmCalls, 1);
        metrics.add(Metric::GemmFlops, 2 * (m * k * n) as u64);
        metrics.add(
            Metric::GemmPanels,
            (m_panels * n_panels * k.div_ceil(kc)) as u64,
        );
        metrics.add(Metric::GemmKernelInt8, 1);
    });

    let writer = DisjointWriter::new(c);
    let writer = &writer;
    parallel_tiles(
        threads,
        plan.row_chunks(),
        plan.col_chunks(),
        schedule,
        |rc, cc| {
            let ip0 = rc * panels_per_row_chunk;
            let ip1 = (ip0 + panels_per_row_chunk).min(m_panels);
            let jp0 = cc * panels_per_col_chunk;
            let jp1 = (jp0 + panels_per_col_chunk).min(n_panels);
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                let last_block = pc + kc_eff >= k;
                for jp in jp0..jp1 {
                    let b_block =
                        &packed_b[jp * NR * k + pc * NR..jp * NR * k + (pc + kc_eff) * NR];
                    let j0 = jp * NR;
                    let cols = NR.min(n - j0);
                    for ip in ip0..ip1 {
                        let a_block =
                            &packed_a[ip * MR * k + pc * MR..ip * MR * k + (pc + kc_eff) * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        microkernel_int8(kernel, a_block, b_block, &mut acc);
                        let i0 = ip * MR;
                        let rows = MR.min(m - i0);
                        for (r, acc_row) in acc.iter().enumerate().take(rows) {
                            let row = i0 + r;
                            // SAFETY: grain (rc, cc) exclusively owns
                            // rows [ip0·MR, ip1·MR) × cols [jp0·NR,
                            // jp1·NR) of C; ranges from distinct grains
                            // never overlap, and the buffer outlives
                            // the parallel region.
                            let dst =
                                unsafe { writer.slice_mut(row * n + j0, row * n + j0 + cols) };
                            if last_block && epilogue == GemmEpilogue::Relu {
                                for (d, &v) in dst.iter_mut().zip(&acc_row[..cols]) {
                                    *d = (*d + v * scale).max(0.0);
                                }
                            } else {
                                for (d, &v) in dst.iter_mut().zip(&acc_row[..cols]) {
                                    *d += v * scale;
                                }
                            }
                        }
                    }
                }
                pc += kc_eff;
            }
        },
    );
}

/// Packed GEMM from unpacked operands: packs A and B into `scratch`
/// (sized by [`GemmPlan::scratch_elems`]), then runs [`gemm_prepacked`].
/// `c[m×n] += a[m×k] · b[k×n]`; never allocates.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions or
/// `scratch` is too small.
#[allow(clippy::too_many_arguments)] // low-level kernel: the argument list *is* the GEMM shape
pub fn gemm_packed_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
    threads: usize,
    schedule: Schedule,
) {
    let plan = GemmPlan::new(m, k, n);
    assert!(
        scratch.len() >= plan.scratch_elems(),
        "packing scratch too small: {} < {}",
        scratch.len(),
        plan.scratch_elems()
    );
    let (pa, pb) = scratch.split_at_mut(plan.packed_a_elems());
    pack_a_into(&plan, a, pa);
    pack_b_into(&plan, b, pb);
    gemm_prepacked(&plan, pa, pb, c, threads, schedule);
}

/// Computes `C = A · B` for rank-2 tensors with the default packed
/// kernel.
///
/// # Panics
///
/// Panics if `a` or `b` is not rank-2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec([1, 2], vec![1.0, 2.0]);
/// let b = Tensor::from_vec([2, 1], vec![3.0, 4.0]);
/// assert_eq!(matmul(&a, &b).data(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with(a, b, GemmAlgorithm::Packed)
}

/// Computes `C = A · B` with an explicit kernel choice.
///
/// # Panics
///
/// Panics if `a` or `b` is not rank-2 or the inner dimensions disagree.
pub fn matmul_with(a: &Tensor, b: &Tensor, algo: GemmAlgorithm) -> Tensor {
    let (m, ka) = a.shape().matrix();
    let (kb, n) = b.shape().matrix();
    assert_eq!(ka, kb, "inner dimension mismatch: {ka} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    gemm_into(a.data(), b.data(), c.data_mut(), m, ka, n, algo);
    c
}

/// Raw-slice GEMM: `c[m×n] += a[m×k] · b[k×n]`, row-major.
///
/// The accumulating (`+=`) contract lets callers fold a bias initialisation
/// into `c` before the product.
///
/// [`GemmAlgorithm::Packed`] allocates a packing-scratch vector here for
/// convenience; allocation-free callers should hold their own scratch
/// and use [`gemm_packed_into`] / [`gemm_prepacked`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn gemm_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    algo: GemmAlgorithm,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    match algo {
        GemmAlgorithm::Naive => gemm_naive(a, b, c, m, k, n),
        GemmAlgorithm::Blocked => gemm_tiled(a, b, c, m, k, n, TileConfig::new(64, 64, 64, 4)),
        GemmAlgorithm::Tiled(cfg) => gemm_tiled(a, b, c, m, k, n, cfg),
        // The quantised engines operate on prepacked quantised panels;
        // from plain f32 slices the defined fallback is the f32 packed
        // path — the same bit-identical demotion the guard applies.
        GemmAlgorithm::Packed | GemmAlgorithm::TernaryPacked | GemmAlgorithm::Int8Packed => {
            let plan = GemmPlan::new(m, k, n);
            let mut scratch = vec![0.0f32; plan.scratch_elems()];
            gemm_packed_into(a, b, c, m, k, n, &mut scratch, 1, Schedule::Static);
        }
    }
}

/// GEMM over a sub-range of output rows: `c[rows, :] += a[rows, :] · b`.
///
/// This is the unit of work the OpenMP-style parallel executor distributes
/// across threads (one chunk of output rows per task).
///
/// # Panics
///
/// Panics if `row_end > m` or slice lengths are inconsistent.
// Low-level kernel signature: the argument list *is* the GEMM shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rows_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_start: usize,
    row_end: usize,
) {
    assert!(
        row_start <= row_end && row_end <= m,
        "row range out of bounds"
    );
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    for i in row_start..row_end {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        // No zero-value skip here: `0 · NaN` must stay NaN, exactly as in
        // `gemm_naive` — sparsity exploitation belongs to the CSR path.
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

fn gemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

fn gemm_tiled(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, cfg: TileConfig) {
    let TileConfig {
        tile_m,
        tile_n,
        tile_k,
        unroll,
    } = cfg;
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + tile_m).min(m);
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + tile_k).min(k);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + tile_n).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        // No zero-value skip: `0 · NaN` must stay NaN to
                        // match `gemm_naive` on non-finite inputs.
                        let av = a[i * k + p];
                        let b_row = &b[p * n..p * n + n];
                        let c_row = &mut c[i * n..i * n + n];
                        let mut j = j0;
                        // Unrolled inner loop over the N tile.
                        while j + unroll <= j1 {
                            for u in 0..unroll {
                                c_row[j + u] += av * b_row[j + u];
                            }
                            j += unroll;
                        }
                        while j < j1 {
                            c_row[j] += av * b_row[j];
                            j += 1;
                        }
                    }
                }
                j0 = j1;
            }
            p0 = p1;
        }
        i0 = i1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: [usize; 2], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_noop() {
        let a = random_tensor([5, 5], 1);
        let id = Tensor::from_fn([5, 5], |off| if off % 6 == 0 { 1.0 } else { 0.0 });
        assert!(matmul(&a, &id).allclose(&a, 1e-6));
        assert!(matmul(&id, &a).allclose(&a, 1e-6));
    }

    #[test]
    fn all_algorithms_agree() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (16, 16, 16),
            (33, 65, 17),
            (64, 128, 9),
        ] {
            let a = random_tensor([m, k], m as u64);
            let b = random_tensor([k, n], n as u64);
            let naive = matmul_with(&a, &b, GemmAlgorithm::Naive);
            let blocked = matmul_with(&a, &b, GemmAlgorithm::Blocked);
            let tiled = matmul_with(&a, &b, GemmAlgorithm::Tiled(TileConfig::new(8, 8, 8, 2)));
            let packed = matmul_with(&a, &b, GemmAlgorithm::Packed);
            assert!(
                naive.allclose(&blocked, 1e-4),
                "blocked mismatch {m}x{k}x{n}"
            );
            assert!(naive.allclose(&tiled, 1e-4), "tiled mismatch {m}x{k}x{n}");
            assert!(naive.allclose(&packed, 1e-4), "packed mismatch {m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_degenerate_shapes_match_naive() {
        // Shapes the panel edges must handle: single row/col, m < MR,
        // n not a multiple of NR, k smaller and larger than kc.
        for &(m, k, n) in &[
            (1, 9, 1),
            (1, 1, 1),
            (MR - 1, 13, NR - 1),
            (MR + 1, 300, NR + 1),
            (2 * MR, 17, 3 * NR),
            (97, 260, 33),
        ] {
            let a = random_tensor([m, k], (m + k) as u64);
            let b = random_tensor([k, n], (k + n) as u64);
            let naive = matmul_with(&a, &b, GemmAlgorithm::Naive);
            let packed = matmul_with(&a, &b, GemmAlgorithm::Packed);
            assert!(naive.allclose(&packed, 1e-4), "packed mismatch {m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_parallel_matches_serial() {
        let (m, k, n) = (41, 129, 53);
        let a = random_tensor([m, k], 7);
        let b = random_tensor([k, n], 8);
        let serial = matmul_with(&a, &b, GemmAlgorithm::Packed);
        let plan = GemmPlan::new(m, k, n);
        let mut scratch = vec![0.0f32; plan.scratch_elems()];
        for threads in [2, 4] {
            let mut c = vec![0.0f32; m * n];
            gemm_packed_into(
                a.data(),
                b.data(),
                &mut c,
                m,
                k,
                n,
                &mut scratch,
                threads,
                Schedule::Dynamic { chunk: 1 },
            );
            let c = Tensor::from_vec([m, n], c);
            assert!(serial.allclose(&c, 1e-5), "threads={threads}");
        }
    }

    #[test]
    fn scalar_and_simd_kernels_agree() {
        // Drive both micro-kernels directly over the same packed panels;
        // on non-x86 hosts this degenerates to scalar-vs-scalar.
        let (m, k, n) = (MR, 37, NR);
        let a = random_tensor([m, k], 21);
        let b = random_tensor([k, n], 22);
        let plan = GemmPlan::new(m, k, n);
        let mut pa = vec![0.0f32; plan.packed_a_elems()];
        let mut pb = vec![0.0f32; plan.packed_b_elems()];
        pack_a_into(&plan, a.data(), &mut pa);
        pack_b_into(&plan, b.data(), &mut pb);
        let mut scalar = [[0.0f32; NR]; MR];
        microkernel_scalar(&pa, &pb, &mut scalar);
        let mut other = [[0.0f32; NR]; MR];
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            // SAFETY: AVX2+FMA presence just checked; panel lengths are
            // plan-consistent by construction.
            unsafe { microkernel_avx2(&pa, &pb, &mut other) };
        } else {
            microkernel_scalar(&pa, &pb, &mut other);
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        microkernel_scalar(&pa, &pb, &mut other);
        for r in 0..MR {
            for c in 0..NR {
                assert!(
                    (scalar[r][c] - other[r][c]).abs() <= 1e-4,
                    "kernel mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn prepacked_weights_reusable_across_calls() {
        // Pack B once, run two products against different A operands —
        // the plan-time weight-packing pattern the engine relies on.
        let (m, k, n) = (10, 24, 20);
        let b = random_tensor([k, n], 31);
        let plan = GemmPlan::new(m, k, n);
        let mut pb = vec![0.0f32; plan.packed_b_elems()];
        pack_b_into(&plan, b.data(), &mut pb);
        let mut pa = vec![0.0f32; plan.packed_a_elems()];
        for seed in [1u64, 2] {
            let a = random_tensor([m, k], seed);
            pack_a_into(&plan, a.data(), &mut pa);
            let mut c = vec![0.0f32; m * n];
            gemm_prepacked(&plan, &pa, &pb, &mut c, 1, Schedule::Static);
            let reference = matmul_with(&a, &b, GemmAlgorithm::Naive);
            let c = Tensor::from_vec([m, n], c);
            assert!(reference.allclose(&c, 1e-4), "seed {seed}");
        }
    }

    #[test]
    fn pack_b_transposed_matches_explicit_transpose() {
        let (n, k) = (23, 17); // W is [n × k]; B = Wᵀ is [k × n].
        let w = random_tensor([n, k], 77);
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = w.data()[j * k + p];
            }
        }
        let plan = GemmPlan::new(4, k, n);
        let mut direct = vec![0.0f32; plan.packed_b_elems()];
        let mut via_transpose = vec![0.0f32; plan.packed_b_elems()];
        pack_b_transposed_into(&plan, w.data(), &mut direct);
        pack_b_into(&plan, &bt, &mut via_transpose);
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn non_finite_b_propagates_through_all_kernels() {
        // Regression for the old `av == 0.0 { continue }` skip: a zero in
        // A must still multiply a NaN in B (0 · NaN = NaN). Row 0 of A is
        // all zeros; B has a NaN and an Inf column.
        let (m, k, n) = (4, 5, 6);
        let mut a = vec![0.5f32; m * k];
        a[..k].fill(0.0); // row 0 ≡ 0
        let mut b = vec![1.0f32; k * n];
        b[2 * n + 1] = f32::NAN; // column 1 sees a NaN at k-step 2
        b[3 * n + 4] = f32::INFINITY; // column 4 sees +Inf (all products ≥ 0)
        for algo in [
            GemmAlgorithm::Naive,
            GemmAlgorithm::Blocked,
            GemmAlgorithm::Tiled(TileConfig::new(8, 8, 8, 2)),
            GemmAlgorithm::Packed,
        ] {
            let mut c = vec![0.0f32; m * n];
            gemm_into(&a, &b, &mut c, m, k, n, algo);
            for i in 0..m {
                assert!(
                    c[i * n + 1].is_nan(),
                    "row {i} col 1 must be NaN under {algo:?}, got {}",
                    c[i * n + 1]
                );
            }
            // The all-zero A row turns +Inf into 0 · Inf = NaN; other rows
            // accumulate +Inf.
            assert!(c[4].is_nan(), "0 · Inf must be NaN under {algo:?}");
            for i in 1..m {
                assert!(
                    c[i * n + 4] == f32::INFINITY,
                    "row {i} col 4 must be +Inf under {algo:?}"
                );
            }
        }
        // And through the row-partitioned kernel the parallel executor uses.
        let mut c = vec![0.0f32; m * n];
        gemm_rows_into(&a, &b, &mut c, m, k, n, 0, 2);
        gemm_rows_into(&a, &b, &mut c, m, k, n, 2, m);
        assert!(c[n + 1].is_nan() && c[4].is_nan());
    }

    #[test]
    fn gemm_rows_partition_equals_full() {
        let (m, k, n) = (10, 12, 8);
        let a = random_tensor([m, k], 42);
        let b = random_tensor([k, n], 43);
        let full = matmul_with(&a, &b, GemmAlgorithm::Naive);
        let mut c = vec![0.0; m * n];
        gemm_rows_into(a.data(), b.data(), &mut c, m, k, n, 0, 4);
        gemm_rows_into(a.data(), b.data(), &mut c, m, k, n, 4, 10);
        let part = Tensor::from_vec([m, n], c);
        assert!(full.allclose(&part, 1e-5));
    }

    #[test]
    fn accumulates_into_c() {
        let a = Tensor::ones([2, 2]);
        let b = Tensor::ones([2, 2]);
        for algo in [GemmAlgorithm::Naive, GemmAlgorithm::Packed] {
            let mut c = vec![10.0; 4];
            gemm_into(a.data(), b.data(), &mut c, 2, 2, 2, algo);
            assert_eq!(c, vec![12.0; 4], "{algo:?}");
        }
    }

    #[test]
    fn plan_sizes_are_consistent() {
        let plan = GemmPlan::new(512, 4608, 196);
        assert_eq!(plan.m_panels(), 512usize.div_ceil(MR));
        assert_eq!(plan.n_panels(), 196usize.div_ceil(NR));
        assert_eq!(
            plan.scratch_elems(),
            plan.packed_a_elems() + plan.packed_b_elems()
        );
        assert_eq!(plan.mc % MR, 0);
        assert_eq!(plan.nc % NR, 0);
        assert!(plan.kc >= 1 && plan.kc <= 4608);
        assert!(plan.row_chunks() * plan.col_chunks() >= 4);
        // Tiny shapes still produce valid (non-zero) blocking.
        let tiny = GemmPlan::new(1, 1, 1);
        assert_eq!(tiny.row_chunks(), 1);
        assert_eq!(tiny.col_chunks(), 1);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "unroll")]
    fn bad_unroll_rejected() {
        let _ = TileConfig::new(8, 8, 8, 3);
    }

    #[test]
    fn tile_config_default_valid() {
        let cfg = TileConfig::default();
        assert!(cfg.tile_m > 0 && cfg.unroll == 4);
    }

    /// Runs a packed product with and without the fused ReLU epilogue and
    /// returns both C buffers (bias-initialised so the `+=` contract is
    /// exercised too).
    fn fused_vs_sweep(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let plan = GemmPlan::new(m, k, n);
        let mut scratch = vec![f32::NAN; plan.scratch_elems()];
        let (pa, pb) = scratch.split_at_mut(plan.packed_a_elems());
        pack_a_into(&plan, a, pa);
        pack_b_into(&plan, b, pb);
        let bias: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut fused = bias.clone();
        gemm_prepacked_epilogue(
            &plan,
            pa,
            pb,
            &mut fused,
            1,
            Schedule::Static,
            GemmEpilogue::Relu,
        );
        let mut swept = bias;
        gemm_prepacked(&plan, pa, pb, &mut swept, 1, Schedule::Static);
        for v in swept.iter_mut() {
            *v = v.max(0.0);
        }
        (fused, swept)
    }

    #[test]
    fn relu_epilogue_bit_matches_separate_sweep() {
        // k = 300 > kc forces multiple reduction blocks: the epilogue must
        // fire only once the accumulator is complete.
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR - 1, 13, NR - 1),
            (MR + 1, 300, NR + 1),
            (7, 256, 16),
        ] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 7 + 3) as f32 * 0.11).sin())
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 5 + 1) as f32 * 0.13).sin())
                .collect();
            let (fused, swept) = fused_vs_sweep(m, k, n, &a, &b);
            // Bit-identical, not just allclose: same adds, same max.
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                swept.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn relu_epilogue_flushes_non_finite_like_relu_layer() {
        let (m, k, n) = (4, 40, 20);
        let mut a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.17).sin()).collect();
        a[3] = f32::NAN;
        a[41] = f32::INFINITY;
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.19).cos()).collect();
        let (fused, swept) = fused_vs_sweep(m, k, n, &a, &b);
        assert_eq!(
            fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            swept.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // max(NaN, 0) == 0: no NaN survives the fused epilogue either.
        assert!(fused.iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn relu_epilogue_applies_on_empty_reduction() {
        // k == 0: C += 0, but the fused activation still clamps C.
        let plan = GemmPlan::new(2, 0, 3);
        let mut c = vec![-1.0, 2.0, -3.0, 4.0, -5.0, 6.0];
        gemm_prepacked_epilogue(
            &plan,
            &[],
            &[],
            &mut c,
            1,
            Schedule::Static,
            GemmEpilogue::Relu,
        );
        assert_eq!(c, vec![0.0, 2.0, 0.0, 4.0, 0.0, 6.0]);
    }

    /// A deterministic ternary weight matrix drawn from {−0.4, 0, +0.7}.
    fn ternary_weights(n: usize, k: usize, seed: u64) -> Vec<f32> {
        (0..n * k)
            .map(|i| match (i as u64 * 2654435761 + seed) % 5 {
                0 => 0.7,
                1 => -0.4,
                _ => 0.0,
            })
            .collect()
    }

    #[test]
    fn pack_a_transposed_matches_pack_a() {
        let (m, k) = (13, 29);
        let a = random_tensor([m, k], 91);
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a.data()[i * k + p];
            }
        }
        let plan = GemmPlan::new(m, k, 8);
        let mut direct = vec![f32::NAN; plan.packed_a_elems()];
        let mut via = vec![f32::NAN; plan.packed_a_elems()];
        pack_a_into(&plan, a.data(), &mut direct);
        pack_a_transposed_into(&plan, &at, &mut via);
        assert_eq!(direct, via);
    }

    #[test]
    fn ternary_prepacked_bit_matches_f32_on_dequantised() {
        // The quantised→packed demotion contract: the ternary engine must
        // reproduce the f32 packed engine's exact bits when the f32
        // engine runs on the dequantised weights. k = 300 > kc exercises
        // multiple reduction blocks, ragged m/n the panel edges.
        for &(m, k, n) in &[
            (1, 9, 1),
            (MR - 1, 13, NR - 1),
            (MR + 1, 300, NR + 1),
            (7, 256, 33),
        ] {
            let a = random_tensor([m, k], (m * k) as u64);
            let w = ternary_weights(n, k, (k + n) as u64);
            let plan = GemmPlan::new(m, k, n);
            let mut pa = vec![f32::NAN; plan.packed_a_elems()];
            pack_a_into(&plan, a.data(), &mut pa);
            let mut pb = vec![f32::NAN; plan.packed_b_elems()];
            pack_b_transposed_into(&plan, &w, &mut pb);
            let mut codes = vec![0xffff_ffffu32; plan.ternary_b_words()];
            pack_b_ternary_transposed_into(&plan, &w, &mut codes);
            for epilogue in [GemmEpilogue::None, GemmEpilogue::Relu] {
                let bias: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.4).sin()).collect();
                let mut f32_c = bias.clone();
                gemm_prepacked_epilogue(&plan, &pa, &pb, &mut f32_c, 1, Schedule::Static, epilogue);
                let mut tern_c = bias;
                gemm_prepacked_ternary(
                    &plan,
                    &pa,
                    &codes,
                    0.7,
                    0.4,
                    &mut tern_c,
                    1,
                    Schedule::Static,
                    epilogue,
                );
                assert_eq!(
                    f32_c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    tern_c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{m}x{k}x{n} {epilogue:?}"
                );
            }
        }
    }

    #[test]
    fn ternary_parallel_matches_serial() {
        let (m, k, n) = (41, 300, 53);
        let a = random_tensor([m, k], 11);
        let w = ternary_weights(n, k, 12);
        let plan = GemmPlan::new(m, k, n);
        let mut pa = vec![0.0f32; plan.packed_a_elems()];
        pack_a_into(&plan, a.data(), &mut pa);
        let mut codes = vec![0u32; plan.ternary_b_words()];
        pack_b_ternary_transposed_into(&plan, &w, &mut codes);
        let run = |threads: usize, schedule: Schedule| {
            let mut c = vec![0.0f32; m * n];
            gemm_prepacked_ternary(
                &plan,
                &pa,
                &codes,
                0.7,
                0.4,
                &mut c,
                threads,
                schedule,
                GemmEpilogue::None,
            );
            c
        };
        let serial = run(1, Schedule::Static);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                run(threads, Schedule::Dynamic { chunk: 1 }),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn ternary_zero_weight_times_nan_activation_is_nan() {
        // 0 · NaN policy: a zero *code* still multiplies the activation,
        // so a NaN in A reaches every output column — including columns
        // whose weights are all zero — exactly like the f32 kernels.
        let (m, k, n) = (3, 5, 4);
        let mut a = vec![1.0f32; m * k];
        a[k] = f32::NAN; // row 1 sees a NaN at k-step 0
        let w = vec![0.0f32; n * k]; // all-zero ternary weights
        let plan = GemmPlan::new(m, k, n);
        let mut pa = vec![0.0f32; plan.packed_a_elems()];
        pack_a_into(&plan, &a, &mut pa);
        let mut codes = vec![0u32; plan.ternary_b_words()];
        pack_b_ternary_transposed_into(&plan, &w, &mut codes);
        let mut c = vec![0.0f32; m * n];
        gemm_prepacked_ternary(
            &plan,
            &pa,
            &codes,
            0.0,
            0.0,
            &mut c,
            1,
            Schedule::Static,
            GemmEpilogue::None,
        );
        for j in 0..n {
            assert!(c[n + j].is_nan(), "row 1 col {j} must be NaN");
            assert_eq!(c[j], 0.0, "row 0 col {j} stays 0");
        }
    }

    #[test]
    fn ternary_scalar_and_simd_kernels_agree() {
        let (m, k, n) = (MR, 37, NR);
        let a = random_tensor([m, k], 23);
        let w = ternary_weights(n, k, 24);
        let plan = GemmPlan::new(m, k, n);
        let mut pa = vec![0.0f32; plan.packed_a_elems()];
        pack_a_into(&plan, a.data(), &mut pa);
        let mut codes = vec![0u32; plan.ternary_b_words()];
        pack_b_ternary_transposed_into(&plan, &w, &mut codes);
        let mut scalar = [[0.0f32; NR]; MR];
        microkernel_ternary_scalar(&pa, &codes, 0.7, 0.4, &mut scalar);
        let mut other = [[0.0f32; NR]; MR];
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            // SAFETY: AVX2+FMA presence just checked; panel lengths are
            // plan-consistent by construction.
            unsafe { microkernel_ternary_avx2(&pa, &codes, 0.7, 0.4, &mut other) };
        } else {
            microkernel_ternary_scalar(&pa, &codes, 0.7, 0.4, &mut other);
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        microkernel_ternary_scalar(&pa, &codes, 0.7, 0.4, &mut other);
        for r in 0..MR {
            for c in 0..NR {
                assert!(
                    (scalar[r][c] - other[r][c]).abs() <= 1e-4,
                    "kernel mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn int8_prepacked_matches_dequantised_reference() {
        // The int8 engine must equal the f32 naive reference computed
        // from the *dequantised* operands to ≤1e-5 relative tolerance
        // (the only rounding is the per-block scaled write-back).
        for &(m, k, n) in &[(1, 9, 1), (MR + 1, 300, NR + 1), (7, 256, 33)] {
            let a = random_tensor([m, k], (m + 7 * k) as u64);
            let w = random_tensor([n, k], (n + 3 * k) as u64);
            let qa = quantise_scale_i8(a.data());
            let qw = quantise_scale_i8(w.data());
            let plan = GemmPlan::new(m, k, n);
            let mut pa = vec![0i8; plan.packed_a_elems()];
            pack_a_i8_into(&plan, a.data(), qa, &mut pa);
            let mut pb = vec![0i8; plan.packed_b_elems()];
            pack_b_transposed_i8_into(&plan, w.data(), qw, &mut pb);
            let mut c = vec![0.0f32; m * n];
            gemm_prepacked_int8(
                &plan,
                &pa,
                &pb,
                1.0 / (qa * qw),
                &mut c,
                1,
                Schedule::Static,
                GemmEpilogue::None,
            );
            // Dequantised reference.
            let deq_a: Vec<f32> = (0..m * k)
                .map(|i| quantise_i8(a.data()[i], qa) as f32 / qa)
                .collect();
            let mut deq_b = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    deq_b[p * n + j] = quantise_i8(w.data()[j * k + p], qw) as f32 / qw;
                }
            }
            let mut want = vec![0.0f32; m * n];
            gemm_naive(&deq_a, &deq_b, &mut want, m, k, n);
            for (i, (&got, &exp)) in c.iter().zip(&want).enumerate() {
                let tol = 1e-5 * exp.abs().max(1.0);
                assert!(
                    (got - exp).abs() <= tol,
                    "{m}x{k}x{n} elem {i}: {got} vs {exp}"
                );
            }
        }
    }

    #[test]
    fn int8_scalar_and_simd_kernels_agree_exactly() {
        // All int8 intermediates are integers below 2^24, so mul+add and
        // FMA round identically: the two kernels must agree bit for bit.
        let (m, k, n) = (MR, 37, NR);
        let a = random_tensor([m, k], 25);
        let w = random_tensor([n, k], 26);
        let plan = GemmPlan::new(m, k, n);
        let mut pa = vec![0i8; plan.packed_a_elems()];
        pack_a_i8_into(&plan, a.data(), quantise_scale_i8(a.data()), &mut pa);
        let mut pb = vec![0i8; plan.packed_b_elems()];
        pack_b_transposed_i8_into(&plan, w.data(), quantise_scale_i8(w.data()), &mut pb);
        let mut scalar = [[0.0f32; NR]; MR];
        microkernel_int8_scalar(&pa, &pb, &mut scalar);
        let mut other = [[0.0f32; NR]; MR];
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            // SAFETY: AVX2+FMA presence just checked; panel lengths are
            // plan-consistent by construction.
            unsafe { microkernel_int8_avx2(&pa, &pb, &mut other) };
        } else {
            microkernel_int8_scalar(&pa, &pb, &mut other);
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        microkernel_int8_scalar(&pa, &pb, &mut other);
        assert_eq!(scalar, other);
    }

    #[test]
    fn int8_relu_epilogue_fires_only_on_last_block() {
        // k = 300 > kc: earlier blocks must write raw scaled partial
        // sums; only the final block clamps. Compare against an unfused
        // run plus a separate sweep.
        let (m, k, n) = (7, 300, 17);
        let a = random_tensor([m, k], 31);
        let w = random_tensor([n, k], 32);
        let qa = quantise_scale_i8(a.data());
        let qw = quantise_scale_i8(w.data());
        let plan = GemmPlan::new(m, k, n);
        let mut pa = vec![0i8; plan.packed_a_elems()];
        pack_a_i8_into(&plan, a.data(), qa, &mut pa);
        let mut pb = vec![0i8; plan.packed_b_elems()];
        pack_b_transposed_i8_into(&plan, w.data(), qw, &mut pb);
        let bias: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.3).cos()).collect();
        let scale = 1.0 / (qa * qw);
        let mut fused = bias.clone();
        gemm_prepacked_int8(
            &plan,
            &pa,
            &pb,
            scale,
            &mut fused,
            1,
            Schedule::Static,
            GemmEpilogue::Relu,
        );
        let mut swept = bias;
        gemm_prepacked_int8(
            &plan,
            &pa,
            &pb,
            scale,
            &mut swept,
            1,
            Schedule::Static,
            GemmEpilogue::None,
        );
        for v in swept.iter_mut() {
            *v = v.max(0.0);
        }
        assert_eq!(
            fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            swept.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn quantise_helpers_guard_degenerate_inputs() {
        assert_eq!(quantise_scale_i8(&[]), 1.0);
        assert_eq!(quantise_scale_i8(&[0.0, 0.0]), 1.0);
        assert_eq!(quantise_scale_i8(&[1.0, f32::NAN]), 1.0);
        assert_eq!(quantise_scale_i8(&[f32::INFINITY]), 1.0);
        assert_eq!(quantise_scale_i8(&[-2.0, 0.5]), 127.0 / 2.0);
        // NaN activations quantise to 0 (saturating cast) — documented
        // lossy, unlike the ternary path.
        assert_eq!(quantise_i8(f32::NAN, 1.0), 0);
        assert_eq!(quantise_i8(f32::INFINITY, 1.0), 127);
        assert_eq!(quantise_i8(-1e9, 1.0), -127);
    }

    #[test]
    fn ternary_empty_reduction_applies_epilogue() {
        let plan = GemmPlan::new(2, 0, 3);
        let mut c = vec![-1.0, 2.0, -3.0, 4.0, -5.0, 6.0];
        gemm_prepacked_ternary(
            &plan,
            &[],
            &[],
            0.5,
            0.5,
            &mut c,
            1,
            Schedule::Static,
            GemmEpilogue::Relu,
        );
        assert_eq!(c, vec![0.0, 2.0, 0.0, 4.0, 0.0, 6.0]);
    }

    #[test]
    fn pointwise_geometry_is_identity() {
        use crate::im2col::Conv2dGeometry;
        assert!(Conv2dGeometry::new(64, 8, 8, 1, 1, 1, 0).is_pointwise_identity());
        assert!(!Conv2dGeometry::new(64, 8, 8, 1, 1, 2, 0).is_pointwise_identity());
        assert!(!Conv2dGeometry::new(64, 8, 8, 3, 3, 1, 1).is_pointwise_identity());
    }
}
