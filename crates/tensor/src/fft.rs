//! Real 2-D FFT convolution.
//!
//! The fourth algorithm of the cuDNN-style taxonomy the paper's Layer-3
//! characterisation spans (GEMM, direct, Winograd, FFT). Each input
//! plane and each filter is zero-padded to a power-of-two plane,
//! transformed once, multiplied pointwise in the frequency domain and
//! accumulated over input channels, and the per-output-channel
//! accumulator is inverse-transformed — so the arithmetic per
//! channel-pair drops from `O(k²)` per output to `O(1)` pointwise work
//! plus plane transforms that amortise over the channel grid. FFT
//! convolution therefore wins exactly where im2col loses: large kernels
//! over large feature maps, where the im2col lowering materialises a
//! `k²`-fold copy of the image (`BENCH_conv.json` quantifies the
//! crossover).
//!
//! Real-input structure is exploited by conjugate-pair packing (the
//! classic "two real FFTs for the price of one complex FFT"): forward
//! transforms carry two real planes as the real/imaginary halves of one
//! complex plane and unpack the two spectra by Hermitian symmetry;
//! inverse transforms pack two output-channel accumulators the same way
//! and read both real results back from one transform.
//!
//! Everything runs in caller-provided scratch sized by
//! [`fft_conv_scratch_elems`] — no hidden allocation, so the PR 9
//! liveness planner and `fit_budget` see the (large) workspace
//! honestly. Strides > 1 are handled by computing the dense correlation
//! and subsampling at extraction time; arbitrary padding and
//! non-square kernels are supported. Error budget: results match direct
//! convolution to a relative error that grows with `log₂(plane)` — the
//! conformance harness's tolerance model, asserted by proptest.

use crate::error::KernelError;
use crate::im2col::Conv2dGeometry;
use crate::tensor::Tensor;
use cnn_stack_obs::{self as obs, Metric};

/// Padded power-of-two plane extents `(ph, pw)` for a geometry: each
/// dimension covers the zero-padded input plus the linear-convolution
/// tail `k − 1`, rounded up to a power of two so the radix-2 transform
/// applies.
pub fn fft_plane_dims(geom: &Conv2dGeometry) -> (usize, usize) {
    let ph = (geom.in_h + 2 * geom.padding + geom.k_h - 1).next_power_of_two();
    let pw = (geom.in_w + 2 * geom.padding + geom.k_w - 1).next_power_of_two();
    (ph, pw)
}

/// Scratch floats [`fft_conv2d_into`] needs for one call: twiddles, a
/// transpose plane, a packing stage, two accumulator planes, `in_c`
/// input spectra and `out_c·in_c` filter spectra (each spectrum is a
/// split re/im pair of `ph·pw` planes).
///
/// The filter-spectrum bank dominates and scales with the channel
/// grid — the honest price of caching every filter transform for the
/// whole call. The memory planner sees this through the layer's
/// workspace query and `fit_budget` will demote FFT away when the
/// budget cannot carry it.
pub fn fft_conv_scratch_elems(geom: &Conv2dGeometry, out_channels: usize) -> usize {
    let (ph, pw) = fft_plane_dims(geom);
    let ps = ph * pw;
    let in_c = geom.in_channels;
    // twiddles + tmp(2) + stage(2) + acc pair(4) + inputs + filters
    ph.max(pw) + 2 * ps + 2 * ps + 4 * ps + 2 * ps * in_c + 2 * ps * in_c * out_channels
}

/// Fills `tw_re/tw_im` (each `n/2` long) with `exp(-2πik/n)`, computed
/// in f64 so twiddle error never dominates the f32 transform error.
fn fill_twiddles(n: usize, tw_re: &mut [f32], tw_im: &mut [f32]) {
    for k in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        tw_re[k] = ang.cos() as f32;
        tw_im[k] = ang.sin() as f32;
    }
}

fn bit_reverse_permute(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
}

/// One in-place radix-2 DIT transform over `re/im` (power-of-two
/// length). `tw_*` hold `exp(-2πik/tw_n)` for `k < tw_n/2` with
/// `tw_n ≥ re.len()` (a table for the larger plane dimension serves
/// both row and column passes). `inverse` conjugates the twiddles; the
/// caller applies the `1/N` scale.
fn fft_inplace(
    re: &mut [f32],
    im: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
    tw_n: usize,
    inverse: bool,
) {
    let n = re.len();
    if n <= 1 {
        return;
    }
    bit_reverse_permute(re, im);
    let mut m = 2;
    while m <= n {
        let half = m / 2;
        let stride = tw_n / m;
        for base in (0..n).step_by(m) {
            for k in 0..half {
                let wr = tw_re[k * stride];
                let wi = if inverse {
                    -tw_im[k * stride]
                } else {
                    tw_im[k * stride]
                };
                let i0 = base + k;
                let i1 = base + k + half;
                let tr = re[i1] * wr - im[i1] * wi;
                let ti = re[i1] * wi + im[i1] * wr;
                re[i1] = re[i0] - tr;
                im[i1] = im[i0] - ti;
                re[i0] += tr;
                im[i0] += ti;
            }
        }
        m <<= 1;
    }
}

fn transpose_into(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Forward 2-D FFT of a natural-order `ph×pw` plane. On return `re/im`
/// hold the spectrum in **transposed** (`pw×ph`) order — the pointwise
/// product is elementwise, so every plane staying in the same
/// transposed convention saves one transpose per transform.
#[allow(clippy::too_many_arguments)]
fn fft2d_forward(
    re: &mut [f32],
    im: &mut [f32],
    ph: usize,
    pw: usize,
    tmp_re: &mut [f32],
    tmp_im: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
    tw_n: usize,
) {
    for r in 0..ph {
        fft_inplace(
            &mut re[r * pw..(r + 1) * pw],
            &mut im[r * pw..(r + 1) * pw],
            tw_re,
            tw_im,
            tw_n,
            false,
        );
    }
    transpose_into(re, tmp_re, ph, pw);
    transpose_into(im, tmp_im, ph, pw);
    for r in 0..pw {
        fft_inplace(
            &mut tmp_re[r * ph..(r + 1) * ph],
            &mut tmp_im[r * ph..(r + 1) * ph],
            tw_re,
            tw_im,
            tw_n,
            false,
        );
    }
    re.copy_from_slice(tmp_re);
    im.copy_from_slice(tmp_im);
}

/// Inverse 2-D FFT of a transposed-order (`pw×ph`) spectrum back to a
/// natural-order `ph×pw` plane, including the `1/(ph·pw)` scale.
#[allow(clippy::too_many_arguments)]
fn fft2d_inverse(
    re: &mut [f32],
    im: &mut [f32],
    ph: usize,
    pw: usize,
    tmp_re: &mut [f32],
    tmp_im: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
    tw_n: usize,
) {
    for r in 0..pw {
        fft_inplace(
            &mut re[r * ph..(r + 1) * ph],
            &mut im[r * ph..(r + 1) * ph],
            tw_re,
            tw_im,
            tw_n,
            true,
        );
    }
    transpose_into(re, tmp_re, pw, ph);
    transpose_into(im, tmp_im, pw, ph);
    for r in 0..ph {
        fft_inplace(
            &mut tmp_re[r * pw..(r + 1) * pw],
            &mut tmp_im[r * pw..(r + 1) * pw],
            tw_re,
            tw_im,
            tw_n,
            true,
        );
    }
    let scale = 1.0 / (ph * pw) as f32;
    for (d, s) in re.iter_mut().zip(tmp_re.iter()) {
        *d = s * scale;
    }
    for (d, s) in im.iter_mut().zip(tmp_im.iter()) {
        *d = s * scale;
    }
}

/// Hermitian unpack of one packed forward transform: `z = fft(a + i·b)`
/// for real planes `a`, `b` splits into the two real-input spectra via
/// `A[k] = (Z[k] + conj(Z[−k]))/2`, `B[k] = (Z[k] − conj(Z[−k]))/(2i)`.
/// Indices are taken modulo the (transposed) `rows×cols` grid.
#[allow(clippy::too_many_arguments)]
fn unpack_pair(
    zr: &[f32],
    zi: &[f32],
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    rows: usize,
    cols: usize,
) {
    for r in 0..rows {
        let pr = (rows - r) % rows;
        for c in 0..cols {
            let pc = (cols - c) % cols;
            let k = r * cols + c;
            let pk = pr * cols + pc;
            ar[k] = 0.5 * (zr[k] + zr[pk]);
            ai[k] = 0.5 * (zi[k] - zi[pk]);
            br[k] = 0.5 * (zi[k] + zi[pk]);
            bi[k] = 0.5 * (zr[pk] - zr[k]);
        }
    }
}

/// FFT convolution (CNN cross-correlation) over raw NCHW slices,
/// writing the `[n, out_c, out_h, out_w]` result into `out` using
/// caller-provided scratch (at least [`fft_conv_scratch_elems`]
/// floats).
///
/// The geometry's stride and padding are honoured: the dense
/// correlation is computed at stride 1 in the frequency domain and
/// subsampled at extraction.
///
/// # Errors
///
/// Returns [`KernelError`] on mismatched buffer lengths, bias length,
/// or undersized scratch.
#[allow(clippy::too_many_arguments)]
pub fn fft_conv2d_into(
    input: &[f32],
    n: usize,
    geom: &Conv2dGeometry,
    weights: &[f32],
    out_channels: usize,
    bias: Option<&[f32]>,
    out: &mut [f32],
    scratch: &mut [f32],
) -> Result<(), KernelError> {
    let in_c = geom.in_channels;
    let (h, w) = (geom.in_h, geom.in_w);
    let (k_h, k_w) = (geom.k_h, geom.k_w);
    if input.len() != n * in_c * h * w {
        return Err(KernelError::BufferSize {
            what: "input",
            expected: n * in_c * h * w,
            got: input.len(),
        });
    }
    if weights.len() != out_channels * in_c * k_h * k_w {
        return Err(KernelError::BufferSize {
            what: "weights",
            expected: out_channels * in_c * k_h * k_w,
            got: weights.len(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_channels {
            return Err(KernelError::BiasLength {
                expected: out_channels,
                got: b.len(),
            });
        }
    }
    let (out_h, out_w) = (geom.out_h, geom.out_w);
    if out.len() != n * out_channels * out_h * out_w {
        return Err(KernelError::BufferSize {
            what: "output",
            expected: n * out_channels * out_h * out_w,
            got: out.len(),
        });
    }
    let needed = fft_conv_scratch_elems(geom, out_channels);
    if scratch.len() < needed {
        return Err(KernelError::ScratchTooSmall {
            needed,
            got: scratch.len(),
        });
    }

    let (ph, pw) = fft_plane_dims(geom);
    let ps = ph * pw;
    let tw_n = ph.max(pw);
    let pad = geom.padding;

    // Carve the scratch into named regions (layout documented in
    // `fft_conv_scratch_elems`).
    let (tw, rest) = scratch.split_at_mut(tw_n);
    let (tw_re, tw_im) = tw.split_at_mut(tw_n / 2);
    let (tmp, rest) = rest.split_at_mut(2 * ps);
    let (tmp_re, tmp_im) = tmp.split_at_mut(ps);
    let (stage, rest) = rest.split_at_mut(2 * ps);
    let (stage_re, stage_im) = stage.split_at_mut(ps);
    let (acc, rest) = rest.split_at_mut(4 * ps);
    let (acc0, acc1) = acc.split_at_mut(2 * ps);
    let (acc0_re, acc0_im) = acc0.split_at_mut(ps);
    let (acc1_re, acc1_im) = acc1.split_at_mut(ps);
    let (x_bank, w_bank) = rest.split_at_mut(2 * ps * in_c);

    fill_twiddles(tw_n, tw_re, tw_im);
    let mut plane_transforms: u64 = 0;

    // Filter spectra for every (o, c), conjugate-pair packed along the
    // input-channel axis. Filters enter flipped (cross-correlation =
    // linear convolution with the 180°-rotated kernel) at the plane
    // origin.
    let load_filter = |dst: &mut [f32], o: usize, c: usize| {
        dst.fill(0.0);
        let f = &weights[(o * in_c + c) * k_h * k_w..(o * in_c + c + 1) * k_h * k_w];
        for i in 0..k_h {
            for j in 0..k_w {
                dst[i * pw + j] = f[(k_h - 1 - i) * k_w + (k_w - 1 - j)];
            }
        }
    };
    for o in 0..out_channels {
        let mut c = 0;
        while c < in_c {
            load_filter(stage_re, o, c);
            if c + 1 < in_c {
                load_filter(stage_im, o, c + 1);
            } else {
                stage_im.fill(0.0);
            }
            fft2d_forward(
                stage_re, stage_im, ph, pw, tmp_re, tmp_im, tw_re, tw_im, tw_n,
            );
            plane_transforms += 1;
            let (wa, wrest) = w_bank[2 * ps * (o * in_c + c)..].split_at_mut(2 * ps);
            let (wa_re, wa_im) = wa.split_at_mut(ps);
            if c + 1 < in_c {
                let (wb, _) = wrest.split_at_mut(2 * ps);
                let (wb_re, wb_im) = wb.split_at_mut(ps);
                unpack_pair(stage_re, stage_im, wa_re, wa_im, wb_re, wb_im, pw, ph);
            } else {
                // Odd tail: the packed imaginary half was zero, so the
                // transform already *is* the single spectrum.
                wa_re.copy_from_slice(stage_re);
                wa_im.copy_from_slice(stage_im);
            }
            c += 2;
        }
    }

    let in_img = in_c * h * w;
    let out_img = out_channels * out_h * out_w;
    for img in 0..n {
        // Input spectra per channel, pair-packed. The image plane is
        // embedded at offset (pad, pad) so the zero padding is part of
        // the transform.
        let load_input = |dst: &mut [f32], c: usize| {
            dst.fill(0.0);
            let x = &input[img * in_img + c * h * w..img * in_img + (c + 1) * h * w];
            for y in 0..h {
                dst[(y + pad) * pw + pad..(y + pad) * pw + pad + w]
                    .copy_from_slice(&x[y * w..(y + 1) * w]);
            }
        };
        let mut c = 0;
        while c < in_c {
            load_input(stage_re, c);
            if c + 1 < in_c {
                load_input(stage_im, c + 1);
            } else {
                stage_im.fill(0.0);
            }
            fft2d_forward(
                stage_re, stage_im, ph, pw, tmp_re, tmp_im, tw_re, tw_im, tw_n,
            );
            plane_transforms += 1;
            let (xa, xrest) = x_bank[2 * ps * c..].split_at_mut(2 * ps);
            let (xa_re, xa_im) = xa.split_at_mut(ps);
            if c + 1 < in_c {
                let (xb, _) = xrest.split_at_mut(2 * ps);
                let (xb_re, xb_im) = xb.split_at_mut(ps);
                unpack_pair(stage_re, stage_im, xa_re, xa_im, xb_re, xb_im, pw, ph);
            } else {
                xa_re.copy_from_slice(stage_re);
                xa_im.copy_from_slice(stage_im);
            }
            c += 2;
        }

        // Frequency-domain multiply-accumulate over input channels,
        // two output channels at a time so one inverse transform
        // yields both real results (packed as acc0 + i·acc1).
        let mut o = 0;
        while o < out_channels {
            acc0_re.fill(0.0);
            acc0_im.fill(0.0);
            acc1_re.fill(0.0);
            acc1_im.fill(0.0);
            for c in 0..in_c {
                let x = &x_bank[2 * ps * c..2 * ps * (c + 1)];
                let (x_re, x_im) = x.split_at(ps);
                let wf = &w_bank[2 * ps * (o * in_c + c)..2 * ps * (o * in_c + c + 1)];
                let (w_re, w_im) = wf.split_at(ps);
                for k in 0..ps {
                    acc0_re[k] += x_re[k] * w_re[k] - x_im[k] * w_im[k];
                    acc0_im[k] += x_re[k] * w_im[k] + x_im[k] * w_re[k];
                }
                if o + 1 < out_channels {
                    let wf =
                        &w_bank[2 * ps * ((o + 1) * in_c + c)..2 * ps * ((o + 1) * in_c + c + 1)];
                    let (w_re, w_im) = wf.split_at(ps);
                    for k in 0..ps {
                        acc1_re[k] += x_re[k] * w_re[k] - x_im[k] * w_im[k];
                        acc1_im[k] += x_re[k] * w_im[k] + x_im[k] * w_re[k];
                    }
                }
            }
            // Pack the two real-output spectra as one complex plane:
            // C = S0 + i·S1.
            for k in 0..ps {
                let s0r = acc0_re[k];
                let s0i = acc0_im[k];
                acc0_re[k] = s0r - acc1_im[k];
                acc0_im[k] = s0i + acc1_re[k];
            }
            fft2d_inverse(acc0_re, acc0_im, ph, pw, tmp_re, tmp_im, tw_re, tw_im, tw_n);
            plane_transforms += 1;
            // Extract the valid correlation region at offset (k−1),
            // subsampling by the stride.
            for (lane, oc) in [(0usize, o), (1usize, o + 1)] {
                if oc >= out_channels {
                    continue;
                }
                let src: &[f32] = if lane == 0 { acc0_re } else { acc0_im };
                let b = bias.map_or(0.0, |b| b[oc]);
                let dst = &mut out
                    [img * out_img + oc * out_h * out_w..img * out_img + (oc + 1) * out_h * out_w];
                for y in 0..out_h {
                    let sy = y * geom.stride + k_h - 1;
                    for x in 0..out_w {
                        let sx = x * geom.stride + k_w - 1;
                        dst[y * out_w + x] = src[sy * pw + sx] + b;
                    }
                }
            }
            o += 2;
        }
    }

    obs::with_current(|ob| {
        let m = ob.metrics();
        m.add(Metric::FftConvCalls, 1);
        m.add(Metric::FftPlaneTransforms, plane_transforms);
        m.add(
            Metric::FftPointwiseMacs,
            (n * out_channels * in_c * ps) as u64,
        );
    });
    Ok(())
}

/// Allocating wrapper over [`fft_conv2d_into`] for tensor arguments:
/// FFT convolution of a `[n, c, h, w]` input with
/// `[out_c, c, k_h, k_w]` filters.
///
/// # Errors
///
/// Returns [`KernelError`] if the weight tensor is not rank-4, the
/// channels disagree, or the bias length is wrong.
pub fn fft_conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    padding: usize,
) -> Result<Tensor, KernelError> {
    let (n, in_c, h, w) = input.shape().nchw();
    let wd = weights.shape().dims();
    if wd.len() != 4 {
        return Err(KernelError::WeightRank {
            expected: 4,
            got: wd.len(),
        });
    }
    if wd[1] != in_c {
        return Err(KernelError::ChannelMismatch {
            weights: wd[1],
            input: in_c,
        });
    }
    let (out_c, k_h, k_w) = (wd[0], wd[2], wd[3]);
    if h + 2 * padding < k_h || w + 2 * padding < k_w {
        return Err(KernelError::InputTooSmall {
            padded_h: h + 2 * padding,
            padded_w: w + 2 * padding,
            k_h,
            k_w,
        });
    }
    let geom = Conv2dGeometry::new(in_c, h, w, k_h, k_w, stride, padding);
    let mut out = Tensor::zeros([n, out_c, geom.out_h, geom.out_w]);
    let mut scratch = vec![0.0f32; fft_conv_scratch_elems(&geom, out_c)];
    fft_conv2d_into(
        input.data(),
        n,
        &geom,
        weights.data(),
        out_c,
        bias,
        out.data_mut(),
        &mut scratch,
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    /// Naive direct cross-correlation reference.
    fn reference(
        input: &Tensor,
        weights: &Tensor,
        bias: Option<&[f32]>,
        stride: usize,
        padding: usize,
    ) -> Tensor {
        let (n, in_c, h, w) = input.shape().nchw();
        let wd = weights.shape().dims();
        let (out_c, k_h, k_w) = (wd[0], wd[2], wd[3]);
        let out_h = (h + 2 * padding - k_h) / stride + 1;
        let out_w = (w + 2 * padding - k_w) / stride + 1;
        let mut out = Tensor::zeros([n, out_c, out_h, out_w]);
        let od = out.data_mut();
        for img in 0..n {
            for o in 0..out_c {
                for y in 0..out_h {
                    for x in 0..out_w {
                        let mut acc = bias.map_or(0.0, |b| b[o]);
                        for c in 0..in_c {
                            for i in 0..k_h {
                                let iy = (y * stride + i) as isize - padding as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for j in 0..k_w {
                                    let ix = (x * stride + j) as isize - padding as isize;
                                    if ix < 0 || ix as usize >= w {
                                        continue;
                                    }
                                    acc += input.data()
                                        [((img * in_c + c) * h + iy as usize) * w + ix as usize]
                                        * weights.data()[((o * in_c + c) * k_h + i) * k_w + j];
                                }
                            }
                        }
                        od[((img * out_c + o) * out_h + y) * out_w + x] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn fft_1d_roundtrip_recovers_signal() {
        let n = 16;
        let mut re: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut im = vec![0.0f32; n];
        let orig = re.clone();
        let mut tw_re = vec![0.0f32; n / 2];
        let mut tw_im = vec![0.0f32; n / 2];
        fill_twiddles(n, &mut tw_re, &mut tw_im);
        fft_inplace(&mut re, &mut im, &tw_re, &tw_im, n, false);
        fft_inplace(&mut re, &mut im, &tw_re, &tw_im, n, true);
        for (got, want) in re.iter().zip(orig.iter()) {
            assert!((got / n as f32 - want).abs() < 1e-5);
        }
    }

    #[test]
    fn hermitian_unpack_recovers_individual_spectra() {
        // fft(a) and fft(b) recovered from one packed fft(a + i·b)
        // must match the spectra computed separately.
        let (ph, pw) = (8, 4);
        let ps = ph * pw;
        let tw_n = ph.max(pw);
        let mut tw_re = vec![0.0f32; tw_n / 2];
        let mut tw_im = vec![0.0f32; tw_n / 2];
        fill_twiddles(tw_n, &mut tw_re, &mut tw_im);
        let mut tmp_re = vec![0.0f32; ps];
        let mut tmp_im = vec![0.0f32; ps];

        let a: Vec<f32> = (0..ps).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..ps).map(|i| ((i * 5 + 1) % 13) as f32 - 6.0).collect();

        let mut za = a.clone();
        let mut za_im = vec![0.0f32; ps];
        fft2d_forward(
            &mut za,
            &mut za_im,
            ph,
            pw,
            &mut tmp_re,
            &mut tmp_im,
            &tw_re,
            &tw_im,
            tw_n,
        );
        let mut zb = b.clone();
        let mut zb_im = vec![0.0f32; ps];
        fft2d_forward(
            &mut zb,
            &mut zb_im,
            ph,
            pw,
            &mut tmp_re,
            &mut tmp_im,
            &tw_re,
            &tw_im,
            tw_n,
        );

        let mut pr = a.clone();
        let mut pi = b.clone();
        fft2d_forward(
            &mut pr,
            &mut pi,
            ph,
            pw,
            &mut tmp_re,
            &mut tmp_im,
            &tw_re,
            &tw_im,
            tw_n,
        );
        let mut ar = vec![0.0f32; ps];
        let mut ai = vec![0.0f32; ps];
        let mut br = vec![0.0f32; ps];
        let mut bi = vec![0.0f32; ps];
        // Spectra are stored transposed: pw rows of ph columns.
        unpack_pair(&pr, &pi, &mut ar, &mut ai, &mut br, &mut bi, pw, ph);

        for k in 0..ps {
            assert!((ar[k] - za[k]).abs() < 1e-3, "a re at {k}");
            assert!((ai[k] - za_im[k]).abs() < 1e-3, "a im at {k}");
            assert!((br[k] - zb[k]).abs() < 1e-3, "b re at {k}");
            assert!((bi[k] - zb_im[k]).abs() < 1e-3, "b im at {k}");
        }
    }

    #[test]
    fn matches_direct_small() {
        let input = random([2, 3, 9, 7], 1);
        let weights = random([4, 3, 3, 3], 2);
        let bias = vec![0.3f32, -0.1, 0.7, 0.0];
        let want = reference(&input, &weights, Some(&bias), 1, 1);
        let got = fft_conv2d(&input, &weights, Some(&bias), 1, 1).unwrap();
        assert_eq!(got.shape().dims(), want.shape().dims());
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn matches_direct_strided_and_large_kernel() {
        let input = random([1, 2, 16, 16], 3);
        let weights = random([3, 2, 7, 7], 4);
        let want = reference(&input, &weights, None, 2, 3);
        let got = fft_conv2d(&input, &weights, None, 2, 3).unwrap();
        assert_eq!(got.shape().dims(), want.shape().dims());
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn matches_direct_non_square_kernel_and_plane() {
        let input = random([1, 3, 10, 6], 5);
        let weights = random([2, 3, 5, 3], 6);
        let want = reference(&input, &weights, None, 1, 0);
        let got = fft_conv2d(&input, &weights, None, 1, 0).unwrap();
        assert_eq!(got.shape().dims(), want.shape().dims());
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn pointwise_1x1_and_single_channel() {
        let input = random([1, 1, 5, 5], 7);
        let weights = random([2, 1, 1, 1], 8);
        let want = reference(&input, &weights, None, 1, 0);
        let got = fft_conv2d(&input, &weights, None, 1, 0).unwrap();
        assert!(want.allclose(&got, 1e-4));
    }

    #[test]
    fn odd_channel_counts_use_the_unpaired_tail() {
        // 3 input channels, 3 output channels: both pair loops hit the
        // odd tail.
        let input = random([1, 3, 6, 6], 9);
        let weights = random([3, 3, 3, 3], 10);
        let want = reference(&input, &weights, None, 1, 1);
        let got = fft_conv2d(&input, &weights, None, 1, 1).unwrap();
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn rejects_undersized_scratch() {
        let geom = Conv2dGeometry::new(2, 6, 6, 3, 3, 1, 1);
        let input = vec![0.0f32; 2 * 6 * 6];
        let weights = vec![0.0f32; 3 * 2 * 9];
        let mut out = vec![0.0f32; 3 * 6 * 6];
        let mut scratch = vec![0.0f32; 16];
        let err = fft_conv2d_into(&input, 1, &geom, &weights, 3, None, &mut out, &mut scratch)
            .unwrap_err();
        assert!(matches!(err, KernelError::ScratchTooSmall { .. }), "{err}");
    }

    #[test]
    fn rejects_channel_mismatch() {
        let err = fft_conv2d(
            &Tensor::zeros([1, 2, 8, 8]),
            &Tensor::zeros([4, 3, 3, 3]),
            None,
            1,
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            KernelError::ChannelMismatch {
                weights: 3,
                input: 2
            }
        );
    }
}
