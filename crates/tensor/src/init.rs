//! Weight initialisation schemes.
//!
//! The paper trains all three networks from scratch (§IV-A); faithful
//! reproduction of that pipeline needs the standard initialisers used by
//! the reference implementations: Kaiming/He normal for convolutions
//! feeding ReLUs, and Xavier/Glorot uniform for the final classifier.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An initialisation scheme for a weight tensor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// All zeros (biases, batch-norm shift).
    Zeros,
    /// All ones (batch-norm scale).
    Ones,
    /// Kaiming/He normal: `N(0, sqrt(2 / fan_in))`, for ReLU networks.
    KaimingNormal,
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Uniform on a caller-supplied symmetric interval.
    Uniform(f32),
}

/// Fan-in/fan-out of a weight shape.
///
/// For rank-4 `[out_c, in_c, k_h, k_w]` filters the fans include the
/// receptive-field size; for rank-2 `[out, in]` matrices they are the
/// matrix extents.
///
/// # Panics
///
/// Panics if the shape rank is not 2 or 4.
pub fn fans(shape: &Shape) -> (usize, usize) {
    match shape.rank() {
        2 => {
            let (out, inp) = shape.matrix();
            (inp, out)
        }
        4 => {
            let d = shape.dims();
            let receptive = d[2] * d[3];
            (d[1] * receptive, d[0] * receptive)
        }
        r => panic!("fan computation requires rank 2 or 4, got rank {r}"),
    }
}

/// Creates a tensor of `shape` initialised according to `init`, using a
/// deterministic stream seeded by `seed` (reproducible experiments are a
/// hard requirement of the benchmark harness).
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::init::{initialise, Init};
///
/// let w = initialise([64, 3, 3, 3], Init::KaimingNormal, 0);
/// assert_eq!(w.len(), 64 * 27);
/// let w2 = initialise([64, 3, 3, 3], Init::KaimingNormal, 0);
/// assert_eq!(w, w2); // deterministic
/// ```
pub fn initialise(shape: impl Into<Shape>, init: Init, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match init {
        Init::Zeros => Tensor::zeros(shape),
        Init::Ones => Tensor::ones(shape),
        Init::KaimingNormal => {
            let (fan_in, _) = fans(&shape);
            let std = (2.0 / fan_in as f32).sqrt();
            Tensor::from_fn(shape, |_| normal_sample(&mut rng) * std)
        }
        Init::XavierUniform => {
            let (fan_in, fan_out) = fans(&shape);
            let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
            Tensor::from_fn(shape, |_| rng.gen_range(-a..a))
        }
        Init::Uniform(a) => {
            assert!(a > 0.0, "uniform bound must be positive");
            Tensor::from_fn(shape, |_| rng.gen_range(-a..a))
        }
    }
}

/// One standard-normal sample via Box–Muller (avoids a distribution-crate
/// dependency).
fn normal_sample(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fans_for_conv_and_linear() {
        assert_eq!(fans(&Shape::new([64, 3, 3, 3])), (27, 576));
        assert_eq!(fans(&Shape::new([10, 512])), (512, 10));
    }

    #[test]
    #[should_panic(expected = "rank 2 or 4")]
    fn fans_rejects_rank3() {
        let _ = fans(&Shape::new([2, 3, 4]));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = initialise([32, 16, 3, 3], Init::KaimingNormal, 7);
        let b = initialise([32, 16, 3, 3], Init::KaimingNormal, 7);
        let c = initialise([32, 16, 3, 3], Init::KaimingNormal, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kaiming_std_is_plausible() {
        let w = initialise([128, 64, 3, 3], Init::KaimingNormal, 0);
        let n = w.len() as f32;
        let mean = w.sum() / n;
        let var = w.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let want = 2.0 / (64.0 * 9.0);
        assert!((var / want - 1.0).abs() < 0.1, "var {var} vs want {want}");
        assert!(mean.abs() < 0.005);
    }

    #[test]
    fn xavier_bounds_respected() {
        let w = initialise([100, 200], Init::XavierUniform, 3);
        let a = (6.0f32 / 300.0).sqrt();
        assert!(w.max() <= a && w.min() >= -a);
    }

    #[test]
    fn zeros_and_ones() {
        assert_eq!(initialise([4], Init::Zeros, 0).sum(), 0.0);
        assert_eq!(initialise([4], Init::Ones, 0).sum(), 4.0);
    }

    #[test]
    fn uniform_custom_bound() {
        let w = initialise([1000], Init::Uniform(0.5), 1);
        assert!(w.max() <= 0.5 && w.min() >= -0.5);
        assert!(w.max() > 0.3); // actually fills the range
    }
}
