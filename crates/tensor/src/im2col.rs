//! The `im2col`/`col2im` data-layout transformation.
//!
//! `im2col` rearranges image patches into matrix columns so that a
//! convolution becomes a single GEMM (§IV-D of the paper: "the CLBlast
//! library ... requires ... the im2col operation, which rearranges image
//! blocks to columns"). Its inverse, `col2im`, scatter-adds columns back
//! into an image and is the core of the convolution backward pass.

use crate::shape::Shape;
use crate::tensor::Tensor;
use cnn_stack_obs::{self as obs, Metric};

/// Static geometry of a 2-D convolution: input/kernel extents, stride and
/// padding, plus the derived output extents.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::Conv2dGeometry;
///
/// // A CIFAR-10 3x3 "same" convolution.
/// let g = Conv2dGeometry::new(3, 32, 32, 3, 3, 1, 1);
/// assert_eq!((g.out_h, g.out_w), (32, 32));
/// assert_eq!(g.patch_len(), 3 * 3 * 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on all four sides).
    pub padding: usize,
    /// Output height, derived.
    pub out_h: usize,
    /// Output width, derived.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes the geometry for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the stride is zero or the kernel (after padding) does not
    /// fit inside the input.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        assert!(
            in_h + 2 * padding >= k_h && in_w + 2 * padding >= k_w,
            "kernel {k_h}x{k_w} larger than padded input {}x{}",
            in_h + 2 * padding,
            in_w + 2 * padding
        );
        let out_h = (in_h + 2 * padding - k_h) / stride + 1;
        let out_w = (in_w + 2 * padding - k_w) / stride + 1;
        Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            padding,
            out_h,
            out_w,
        }
    }

    /// Length of one flattened patch: `in_channels * k_h * k_w`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Number of output spatial positions: `out_h * out_w`.
    pub fn out_positions(&self) -> usize {
        self.out_h * self.out_w
    }

    /// True when the im2col matrix of this geometry **is** the input
    /// image: a pointwise (1×1) kernel with stride 1 and no padding maps
    /// patch row `c` / output column `p` straight to `image[c][p]`, so
    /// the `[patch_len, out_positions]` column matrix and the `C×H·W`
    /// image are the same row-major buffer. Callers use this to skip the
    /// im2col gather and feed the image directly to the GEMM packer.
    pub fn is_pointwise_identity(&self) -> bool {
        self.k_h == 1 && self.k_w == 1 && self.stride == 1 && self.padding == 0
    }
}

/// Rearranges one NCHW image (`[1, C, H, W]` or `[C, H, W]` worth of data)
/// into the im2col matrix of shape `[patch_len, out_h * out_w]`.
///
/// Out-of-bounds taps read as zero (zero padding).
///
/// # Panics
///
/// Panics if `image.len() != C * H * W` for the geometry.
pub fn im2col(image: &[f32], geom: &Conv2dGeometry) -> Tensor {
    let rows = geom.patch_len();
    let cols = geom.out_positions();
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(image, geom, &mut out);
    Tensor::from_vec(Shape::new([rows, cols]), out)
}

/// Allocation-free [`im2col`]: writes the `[patch_len, out_h * out_w]`
/// matrix into `out`, which must hold exactly
/// `patch_len() * out_positions()` floats. Every element is overwritten,
/// so `out` may hold stale data (the engine reuses one scratch arena
/// across layers).
///
/// # Panics
///
/// Panics if `image` or `out` lengths do not match the geometry.
pub fn im2col_into(image: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    assert_eq!(
        image.len(),
        geom.in_channels * geom.in_h * geom.in_w,
        "image length does not match geometry"
    );
    let cols = geom.out_positions();
    assert_eq!(
        out.len(),
        geom.patch_len() * cols,
        "output length does not match geometry"
    );
    let mut row = 0;
    for c in 0..geom.in_channels {
        let plane = &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                gather_row_segment(
                    &mut out[row * cols..(row + 1) * cols],
                    plane,
                    geom,
                    kh,
                    kw,
                    0,
                );
                row += 1;
            }
        }
    }
    obs::with_current(|o| {
        o.metrics().add(Metric::Im2colCalls, 1);
        o.metrics().add(
            Metric::Im2colBytesLowered,
            std::mem::size_of_val(out) as u64,
        );
    });
}

/// Fused im2col → pack-B: writes the NR-column GEMM panels of the im2col
/// matrix directly from the NCHW image, without materialising the
/// `[patch_len, out_positions]` column matrix in between.
///
/// The output layout is identical to
/// [`pack_b_into`](crate::gemm::pack_b_into) applied to the [`im2col`]
/// matrix with `k = patch_len()` and `n = out_positions()`: panel `jp`
/// holds output positions `[jp·NR, jp·NR+NR)` at
/// `buf[jp·NR·k + p·NR + c]`, with out-of-range positions zero-filled.
/// Out-of-bounds image taps read as zero (zero padding). Every element
/// of the panel region is written, so `buf` may hold arbitrary scratch
/// garbage on entry.
///
/// # Panics
///
/// Panics if `image` or `buf` lengths do not match the geometry.
/// Fills `d` with im2col row `(c, kh, kw)` values for the output-position
/// range `[pos0, pos0 + d.len())` of one input-channel plane.
///
/// The hot path of both packers: positions sharing an output row map to
/// *contiguous* input columns when `stride == 1`, so the run splits into
/// a zero prefix (left padding), one `copy_from_slice` of the interior,
/// and a zero suffix (right padding) — no per-element bounds arithmetic.
/// Strided geometries keep the per-element gather.
fn gather_row_segment(
    d: &mut [f32],
    plane: &[f32],
    geom: &Conv2dGeometry,
    kh: usize,
    kw: usize,
    pos0: usize,
) {
    let len = d.len();
    let mut ci = 0;
    while ci < len {
        let pos = pos0 + ci;
        let oh = pos / geom.out_w;
        let ow0 = pos % geom.out_w;
        let run = (geom.out_w - ow0).min(len - ci);
        let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
        let seg = &mut d[ci..ci + run];
        if ih < 0 || ih as usize >= geom.in_h {
            seg.fill(0.0);
        } else {
            let xrow = &plane[ih as usize * geom.in_w..(ih as usize + 1) * geom.in_w];
            if geom.stride == 1 {
                // iw = start + i over the run; clip to [0, in_w).
                let start = (ow0 + kw) as isize - geom.padding as isize;
                let lo = (-start).clamp(0, run as isize) as usize;
                let hi = (geom.in_w as isize - start).clamp(lo as isize, run as isize) as usize;
                seg[..lo].fill(0.0);
                if hi > lo {
                    let s0 = (start + lo as isize) as usize;
                    seg[lo..hi].copy_from_slice(&xrow[s0..s0 + (hi - lo)]);
                }
                seg[hi..].fill(0.0);
            } else {
                for (i, v) in seg.iter_mut().enumerate() {
                    let iw = ((ow0 + i) * geom.stride + kw) as isize - geom.padding as isize;
                    *v = if iw >= 0 && (iw as usize) < geom.in_w {
                        xrow[iw as usize]
                    } else {
                        0.0
                    };
                }
            }
        }
        ci += run;
    }
}

pub fn pack_b_im2col_into(image: &[f32], geom: &Conv2dGeometry, buf: &mut [f32]) {
    use crate::gemm::NR;
    assert_eq!(
        image.len(),
        geom.in_channels * geom.in_h * geom.in_w,
        "image length does not match geometry"
    );
    let k = geom.patch_len();
    let n = geom.out_positions();
    let n_panels = n.div_ceil(NR);
    assert!(
        buf.len() >= n_panels * NR * k,
        "packed-B buffer does not match geometry"
    );
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let dst = &mut buf[jp * NR * k..(jp + 1) * NR * k];
        let mut row = 0;
        for c in 0..geom.in_channels {
            let plane = &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
            for kh in 0..geom.k_h {
                for kw in 0..geom.k_w {
                    let d = &mut dst[row * NR..row * NR + NR];
                    gather_row_segment(&mut d[..cols], plane, geom, kh, kw, j0);
                    d[cols..].fill(0.0);
                    row += 1;
                }
            }
        }
    }
    // The fused path both lowers (im2col) and packs (B panels) in one
    // sweep, so it feeds both instrument families.
    obs::with_current(|o| {
        let bytes = (n_panels * NR * k * std::mem::size_of::<f32>()) as u64;
        o.metrics().add(Metric::Im2colCalls, 1);
        o.metrics().add(Metric::Im2colBytesLowered, bytes);
        o.metrics().add(Metric::GemmBytesPacked, bytes);
    });
}

/// Batch-merged [`pack_b_im2col_into`]: packs the im2col matrices of `n`
/// NCHW images side by side into one NR-column panel buffer, as if the
/// per-image `[patch_len, out_positions]` column matrices had been
/// concatenated along the column axis into a single
/// `[patch_len, n · out_positions]` matrix and packed with
/// [`pack_b_into`](crate::gemm::pack_b_into).
///
/// Merged column `c` maps to image `c / out_positions`, output position
/// `c % out_positions`. Because the reduction extent (`patch_len`) and
/// therefore the `kc` blocking are unchanged, a GEMM over the merged
/// panels accumulates every output value in exactly the same order as
/// the per-image product — the batched path is bit-identical, it just
/// amortises the A-panel traffic and fills the NR-column panels that a
/// small per-image `out_positions` would leave zero-padded (the deep
/// VGG layers at CIFAR extent have 4 output positions against `NR = 16`:
/// three quarters of every micro-kernel tile is wasted un-merged).
///
/// # Panics
///
/// Panics if `images` is not `n` images of the geometry's extent or
/// `buf` is shorter than the merged panel region.
pub fn pack_b_im2col_batch_into(images: &[f32], n: usize, geom: &Conv2dGeometry, buf: &mut [f32]) {
    use crate::gemm::NR;
    let in_img = geom.in_channels * geom.in_h * geom.in_w;
    assert_eq!(
        images.len(),
        n * in_img,
        "images length does not match geometry × batch"
    );
    let k = geom.patch_len();
    let plane = geom.out_positions();
    let total = n * plane;
    let n_panels = total.div_ceil(NR);
    assert!(
        buf.len() >= n_panels * NR * k,
        "packed-B buffer does not match geometry × batch"
    );
    let pointwise = geom.is_pointwise_identity();
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let cols = NR.min(total - j0);
        let dst = &mut buf[jp * NR * k..(jp + 1) * NR * k];
        let mut row = 0;
        for c in 0..geom.in_channels {
            for kh in 0..geom.k_h {
                for kw in 0..geom.k_w {
                    let d = &mut dst[row * NR..row * NR + NR];
                    // Walk the panel's columns in per-image runs: a panel
                    // can straddle image boundaries when `plane % NR != 0`
                    // (merged columns are image-major), so decode the image
                    // once per run, not once per element.
                    let mut ci = 0;
                    while ci < cols {
                        let col = j0 + ci;
                        let img = col / plane;
                        let pos0 = col % plane;
                        let run = (plane - pos0).min(cols - ci);
                        let image = &images[img * in_img..(img + 1) * in_img];
                        if pointwise {
                            // 1×1/s1/p0: the im2col matrix is the image —
                            // row `c` of image `img` is contiguous.
                            d[ci..ci + run]
                                .copy_from_slice(&image[c * plane + pos0..c * plane + pos0 + run]);
                        } else {
                            let plane_data =
                                &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
                            gather_row_segment(
                                &mut d[ci..ci + run],
                                plane_data,
                                geom,
                                kh,
                                kw,
                                pos0,
                            );
                        }
                        ci += run;
                    }
                    d[cols..].fill(0.0);
                    row += 1;
                }
            }
        }
    }
    obs::with_current(|o| {
        let bytes = (n_panels * NR * k * std::mem::size_of::<f32>()) as u64;
        o.metrics().add(Metric::Im2colCalls, n as u64);
        o.metrics().add(Metric::Im2colBytesLowered, bytes);
        o.metrics().add(Metric::GemmBytesPacked, bytes);
    });
}

/// Inverse of [`im2col`]: scatter-adds a `[patch_len, out_h*out_w]` matrix
/// back into a `C*H*W` image buffer. Overlapping patches accumulate, which
/// is exactly the gradient flow required by the convolution backward pass.
///
/// # Panics
///
/// Panics if the matrix or image extents do not match the geometry.
pub fn col2im(cols_mat: &Tensor, geom: &Conv2dGeometry, image: &mut [f32]) {
    let (rows, cols) = cols_mat.shape().matrix();
    assert_eq!(rows, geom.patch_len(), "col matrix row mismatch");
    assert_eq!(cols, geom.out_positions(), "col matrix column mismatch");
    assert_eq!(
        image.len(),
        geom.in_channels * geom.in_h * geom.in_w,
        "image length does not match geometry"
    );
    let data = cols_mat.data();
    let mut row = 0;
    for c in 0..geom.in_channels {
        for kh in 0..geom.k_h {
            for kw in 0..geom.k_w {
                for oh in 0..geom.out_h {
                    let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                    if ih < 0 || ih as usize >= geom.in_h {
                        continue;
                    }
                    for ow in 0..geom.out_w {
                        let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                        if iw < 0 || iw as usize >= geom.in_w {
                            continue;
                        }
                        let col = oh * geom.out_w + ow;
                        image[(c * geom.in_h + ih as usize) * geom.in_w + iw as usize] +=
                            data[row * cols + col];
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(3, 32, 32, 3, 3, 1, 1);
        assert_eq!((g.out_h, g.out_w), (32, 32));
        assert_eq!(g.patch_len(), 27);
        assert_eq!(g.out_positions(), 1024);
    }

    #[test]
    fn geometry_stride_two() {
        let g = Conv2dGeometry::new(16, 32, 32, 3, 3, 2, 1);
        assert_eq!((g.out_h, g.out_w), (16, 16));
    }

    #[test]
    fn geometry_pointwise() {
        let g = Conv2dGeometry::new(64, 8, 8, 1, 1, 1, 0);
        assert_eq!((g.out_h, g.out_w), (8, 8));
        assert_eq!(g.patch_len(), 64);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = Conv2dGeometry::new(1, 4, 4, 3, 3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_rejected() {
        let _ = Conv2dGeometry::new(1, 2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, no padding: im2col is just a reshape.
        let g = Conv2dGeometry::new(2, 3, 3, 1, 1, 1, 0);
        let image: Vec<f32> = (0..18).map(|v| v as f32).collect();
        let m = im2col(&image, &g);
        assert_eq!(m.shape().dims(), &[2, 9]);
        assert_eq!(m.data(), image.as_slice());
    }

    #[test]
    fn im2col_3x3_values() {
        // Single channel 3x3 image, 3x3 kernel, pad 1 -> 9 patches.
        let g = Conv2dGeometry::new(1, 3, 3, 3, 3, 1, 1);
        let image: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let m = im2col(&image, &g);
        assert_eq!(m.shape().dims(), &[9, 9]);
        // Patch centred at (0,0): top-left tap is padding (0), centre tap
        // row (index 4 of patch) at column 0 must equal image[0] = 1.
        assert_eq!(m[[0, 0]], 0.0);
        assert_eq!(m[[4, 0]], 1.0);
        // Centre patch (column 4) sees the whole image in order.
        for (k, want) in (1..=9).enumerate() {
            assert_eq!(m[[k, 4]], want as f32);
        }
    }

    #[test]
    fn im2col_into_matches_allocating_and_overwrites_stale() {
        let g = Conv2dGeometry::new(2, 5, 5, 3, 3, 1, 1);
        let image: Vec<f32> = (0..50).map(|v| (v as f32).sin()).collect();
        let reference = im2col(&image, &g);
        let mut buf = vec![f32::NAN; g.patch_len() * g.out_positions()];
        im2col_into(&image, &g, &mut buf);
        assert_eq!(buf.as_slice(), reference.data());
    }

    #[test]
    fn col2im_roundtrip_counts_overlap() {
        // col2im(im2col(x)) multiplies each pixel by the number of patches
        // covering it. For a 3x3 kernel, pad 1, stride 1 over 3x3, the
        // centre pixel is covered 9 times and the corners 4 times.
        let g = Conv2dGeometry::new(1, 3, 3, 3, 3, 1, 1);
        let image = vec![1.0f32; 9];
        let m = im2col(&image, &g);
        let mut back = vec![0.0f32; 9];
        col2im(&m, &g, &mut back);
        assert_eq!(back[4], 9.0);
        assert_eq!(back[0], 4.0);
        assert_eq!(back[1], 6.0);
    }

    #[test]
    fn fused_pack_matches_im2col_then_pack() {
        use crate::gemm::{pack_b_into, GemmPlan};
        for (geom, name) in [
            (Conv2dGeometry::new(3, 8, 8, 3, 3, 1, 1), "same-3x3"),
            (Conv2dGeometry::new(2, 9, 7, 3, 3, 2, 1), "stride-2"),
            (Conv2dGeometry::new(4, 5, 5, 1, 1, 1, 0), "pointwise"),
            (Conv2dGeometry::new(1, 4, 4, 2, 2, 1, 0), "2x2-nopad"),
        ] {
            let len = geom.in_channels * geom.in_h * geom.in_w;
            let image: Vec<f32> = (0..len).map(|v| (v as f32 * 0.7).sin()).collect();
            let cols_mat = im2col(&image, &geom);
            let plan = GemmPlan::new(1, geom.patch_len(), geom.out_positions());
            let mut via_matrix = vec![f32::NAN; plan.packed_b_elems()];
            pack_b_into(&plan, cols_mat.data(), &mut via_matrix);
            let mut fused = vec![f32::NAN; plan.packed_b_elems()];
            pack_b_im2col_into(&image, &geom, &mut fused);
            assert_eq!(fused, via_matrix, "{name}");
        }
    }

    #[test]
    fn conv_via_im2col_matches_manual() {
        // 1-channel 4x4 image, 2x2 kernel of ones, stride 1, no pad:
        // each output = sum of a 2x2 window.
        let g = Conv2dGeometry::new(1, 4, 4, 2, 2, 1, 0);
        let image: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let m = im2col(&image, &g);
        let w = Tensor::ones([1, 4]);
        let out = crate::gemm::matmul(&w, &m);
        assert_eq!(out.shape().dims(), &[1, 9]);
        // Window at (0,0): 0+1+4+5 = 10.
        assert_eq!(out.data()[0], 10.0);
        // Window at (2,2): 10+11+14+15 = 50.
        assert_eq!(out.data()[8], 50.0);
    }
}
