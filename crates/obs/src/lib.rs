//! Cross-stack observability: metrics, spans, exporters.
//!
//! The paper's methodology is *measurement across stack layers* — every
//! conclusion in §V/§VI comes from instrumenting each layer (model,
//! format, algorithm, systems, hardware) and cross-comparing. This
//! crate gives the reproduction the same capability at runtime:
//!
//! * a **zero-alloc metrics registry** ([`MetricsRegistry`]): every
//!   instrument is pre-registered in the [`Metric`] enum, so the hot
//!   path is a single relaxed `fetch_add` into a fixed atomic slot —
//!   counters for the GEMM engine (calls, FLOPs, panels, kernel
//!   dispatch, bytes packed), the im2col lowering, the thread pool
//!   (tasks queued/run, worker busy-ns, panics contained) and the
//!   guard ladder (scans, trips, retries, demotions), plus gauges and
//!   log₂-bucketed histograms;
//! * a **span/event tracer** ([`Observer`], [`Collector`],
//!   [`RingCollector`]): names interned at plan-build time, events
//!   recorded into a bounded lock-free ring as three relaxed stores;
//! * **exporters**: Chrome `trace_event` JSON ([`chrome_trace_json`],
//!   loads in `chrome://tracing`/Perfetto) and a deterministic text
//!   format ([`text_trace`]; stable ordering, no timestamps) built for
//!   golden-file testing;
//! * a **thread-local current observer** ([`install`], [`count`],
//!   [`with_current`]) so leaf crates record without threading a
//!   handle through every kernel signature. When nothing is installed
//!   anywhere, each instrument costs one relaxed atomic load.
//!
//! This crate is a dependency-free leaf: every other crate in the
//! workspace may depend on it.
//!
//! # Example
//!
//! ```
//! use cnn_stack_obs::{self as obs, Metric, Observer, ObsLevel};
//!
//! let observer = Observer::for_level(ObsLevel::Trace).unwrap();
//! let name = observer.intern("conv1 [span 1]");
//! {
//!     let _guard = obs::install(observer.clone());
//!     obs::count(Metric::GemmCalls, 1); // what a kernel would do
//!     observer.span(name, 0, 1_000, 0);
//! }
//! assert_eq!(observer.metrics().counter(Metric::GemmCalls), 1);
//! assert!(cnn_stack_obs::text_trace(&observer).contains("conv1"));
//! ```

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{chrome_trace_json, text_trace};
pub use metrics::{
    Histogram, HistogramSnapshot, Metric, MetricKind, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use trace::{
    count, current, enabled, gauge, install, observe, with_current, Collector, EventKind, NameId,
    ObsGuard, ObsLevel, Observer, RingCollector, TraceEvent,
};
