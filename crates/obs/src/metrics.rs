//! Zero-alloc-in-steady-state metrics registry.
//!
//! Every instrument the stack can emit is pre-registered in the
//! [`Metric`] enum, so the registry is a fixed block of atomics sized at
//! compile time: recording a sample is one `fetch_add` (plus one more
//! for the histogram sum), never an allocation or a lock. Snapshots
//! ([`MetricsRegistry::snapshot`]) allocate, but only on the cold
//! reporting path.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The shape of an instrument: monotonic counter, point-in-time gauge,
/// or log₂-bucketed histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-written `i64` level.
    Gauge,
    /// Power-of-two bucketed distribution of `u64` samples.
    Histogram,
}

macro_rules! metrics {
    ($( $variant:ident => ($name:literal, $kind:ident) ),+ $(,)?) => {
        /// Every named instrument in the stack, pre-registered so the
        /// hot path indexes a fixed atomic slot by enum discriminant.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Metric {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl Metric {
            /// All instruments, in declaration (= snapshot) order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant),+];

            /// The instrument's dotted wire name, e.g. `gemm.flops`.
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$variant => $name),+
                }
            }

            /// The instrument's shape.
            pub fn kind(self) -> MetricKind {
                match self {
                    $(Metric::$variant => MetricKind::$kind),+
                }
            }
        }
    };
}

metrics! {
    // GEMM engine (tensor::gemm): one record per packed-GEMM call.
    GemmCalls => ("gemm.calls", Counter),
    GemmFlops => ("gemm.flops", Counter),
    GemmPanels => ("gemm.panels", Counter),
    GemmKernelAvx2 => ("gemm.kernel.avx2", Counter),
    GemmKernelScalar => ("gemm.kernel.scalar", Counter),
    GemmKernelTernary => ("gemm.kernel.ternary", Counter),
    GemmKernelInt8 => ("gemm.kernel.int8", Counter),
    GemmBytesPacked => ("gemm.bytes_packed", Counter),
    // im2col lowering (tensor::im2col), incl. the fused im2col→pack path.
    Im2colCalls => ("im2col.calls", Counter),
    Im2colBytesLowered => ("im2col.bytes_lowered", Counter),
    // Transform-domain convolution kernels (tensor::winograd, tensor::fft).
    WinogradTiles => ("conv.winograd.tiles", Counter),
    FftConvCalls => ("conv.fft.calls", Counter),
    FftPlaneTransforms => ("conv.fft.plane_transforms", Counter),
    FftPointwiseMacs => ("conv.fft.pointwise_macs", Counter),
    // Thread pool (parallel::ThreadPool).
    PoolTasksQueued => ("pool.tasks_queued", Counter),
    PoolTasksRun => ("pool.tasks_run", Counter),
    PoolWorkerBusyNs => ("pool.worker_busy_ns", Counter),
    PoolPanicsContained => ("pool.panics_contained", Counter),
    PoolWorkers => ("pool.workers", Gauge),
    PoolTaskNs => ("pool.task_ns", Histogram),
    // Guarded execution (nn::engine + nn::guard).
    GuardScans => ("guard.scans", Counter),
    GuardTrips => ("guard.trips", Counter),
    GuardRetries => ("guard.retries", Counter),
    GuardDemotions => ("guard.demotions", Counter),
    // Session engine.
    StepsExecuted => ("engine.steps_executed", Counter),
    RunsCompleted => ("engine.runs_completed", Counter),
    ArenaBytes => ("engine.arena_bytes", Gauge),
    PlanPeakBytes => ("plan.peak_bytes", Gauge),
    ArenaReuseBytes => ("engine.arena_reuse_bytes", Gauge),
    StepNs => ("engine.step_ns", Histogram),
    // Serving layer (serve::Server): admission, batching, shedding.
    ServeSubmitted => ("serve.submitted", Counter),
    ServeServed => ("serve.served", Counter),
    ServeShedQueueFull => ("serve.shed_queue_full", Counter),
    ServeShedDeadline => ("serve.shed_deadline", Counter),
    ServeFailed => ("serve.failed", Counter),
    ServeBatches => ("serve.batches", Counter),
    ServeQueueDepth => ("serve.queue_depth", Gauge),
    ServeBatchOccupancy => ("serve.batch_occupancy", Histogram),
    ServeQueueWaitNs => ("serve.queue_wait_ns", Histogram),
    ServeLatencyNs => ("serve.latency_ns", Histogram),
    // Serving supervisor (serve::supervisor): worker self-healing.
    ServeWorkerCrashes => ("serve.supervisor.crashes", Counter),
    ServeRespawns => ("serve.supervisor.respawns", Counter),
    ServeHungBatches => ("serve.supervisor.hung_batches", Counter),
    // Brownout circuit breaker (serve::breaker). State gauge encodes
    // 0 = closed, 1 = half-open, 2 = open.
    ServeBreakerTrips => ("serve.breaker.trips", Counter),
    ServeBreakerState => ("serve.breaker.state", Gauge),
    ServeDegradedBatches => ("serve.breaker.degraded_batches", Counter),
}

/// Number of log₂ buckets per histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros), so 64 buckets cover the
/// whole `u64` range with no configuration.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// One log₂-bucketed histogram: fixed buckets, atomics only.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the log₂ bucket for `v`: 0 for 0, else `floor(log2 v) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v).min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// The fixed block of instruments. One registry lives in each
/// [`Observer`](crate::Observer); nothing about it allocates after
/// construction.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Vec<AtomicU64>,
    gauges: Vec<AtomicI64>,
    histograms: Vec<Histogram>,
    // Metric discriminant -> slot in its kind's array.
    slots: [usize; Metric::ALL.len()],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Builds the registry with every [`Metric`] registered and zeroed.
    pub fn new() -> Self {
        let mut slots = [0usize; Metric::ALL.len()];
        let (mut nc, mut ng, mut nh) = (0, 0, 0);
        for &m in Metric::ALL {
            let slot = match m.kind() {
                MetricKind::Counter => &mut nc,
                MetricKind::Gauge => &mut ng,
                MetricKind::Histogram => &mut nh,
            };
            slots[m as usize] = *slot;
            *slot += 1;
        }
        MetricsRegistry {
            counters: (0..nc).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..ng).map(|_| AtomicI64::new(0)).collect(),
            histograms: (0..nh).map(|_| Histogram::default()).collect(),
            slots,
        }
    }

    /// Adds `n` to a counter. Debug-asserts the instrument is a counter.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        debug_assert_eq!(
            m.kind(),
            MetricKind::Counter,
            "{} is not a counter",
            m.name()
        );
        self.counters[self.slots[m as usize]].fetch_add(n, Ordering::Relaxed);
    }

    /// Sets a gauge to `v`. Debug-asserts the instrument is a gauge.
    #[inline]
    pub fn set(&self, m: Metric, v: i64) {
        debug_assert_eq!(m.kind(), MetricKind::Gauge, "{} is not a gauge", m.name());
        self.gauges[self.slots[m as usize]].store(v, Ordering::Relaxed);
    }

    /// Records one histogram sample. Debug-asserts the instrument is a
    /// histogram.
    #[inline]
    pub fn observe(&self, m: Metric, v: u64) {
        debug_assert_eq!(
            m.kind(),
            MetricKind::Histogram,
            "{} is not a histogram",
            m.name()
        );
        self.histograms[self.slots[m as usize]].observe(v);
    }

    /// Current value of a counter.
    pub fn counter(&self, m: Metric) -> u64 {
        assert_eq!(
            m.kind(),
            MetricKind::Counter,
            "{} is not a counter",
            m.name()
        );
        self.counters[self.slots[m as usize]].load(Ordering::Relaxed)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, m: Metric) -> i64 {
        assert_eq!(m.kind(), MetricKind::Gauge, "{} is not a gauge", m.name());
        self.gauges[self.slots[m as usize]].load(Ordering::Relaxed)
    }

    /// Copies every instrument into an owned, comparable snapshot
    /// (allocates; reporting path only).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for &m in Metric::ALL {
            match m.kind() {
                MetricKind::Counter => counters.push((m.name(), self.counter(m))),
                MetricKind::Gauge => gauges.push((m.name(), self.gauge(m))),
                MetricKind::Histogram => {
                    let h = &self.histograms[self.slots[m as usize]];
                    let buckets = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then(|| (bucket_upper_bound(i), n))
                        })
                        .collect();
                    histograms.push(HistogramSnapshot {
                        name: m.name(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                    });
                }
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Exclusive upper bound of log₂ bucket `i`: bucket 0 holds zeros
/// (`[0, 1)`), bucket `i ≥ 1` holds `[2^(i-1), 2^i)`; the last bucket
/// saturates at `u64::MAX`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// One histogram, frozen: total count, sum, and the non-empty log₂
/// buckets as `(exclusive_upper_bound, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Instrument wire name.
    pub name: &'static str,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty buckets: `(exclusive upper bound, sample count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A frozen copy of every instrument, cheap to clone and compare —
/// this is what [`CellResult`](../../stack) carries per evaluated cell.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Metric::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(&'static str, i64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks a counter up by wire name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Looks a gauge up by wire name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Multi-line human-readable rendering (non-zero instruments only).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &(name, v) in &self.counters {
            if v != 0 {
                let _ = writeln!(out, "{name} = {v}");
            }
        }
        for &(name, v) in &self.gauges {
            if v != 0 {
                let _ = writeln!(out, "{name} = {v}");
            }
        }
        for h in &self.histograms {
            if h.count != 0 {
                let _ = writeln!(
                    out,
                    "{} = {{count: {}, sum: {}, mean: {:.1}}}",
                    h.name,
                    h.count,
                    h.sum,
                    h.mean()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.add(Metric::GemmCalls, 2);
        r.add(Metric::GemmCalls, 3);
        assert_eq!(r.counter(Metric::GemmCalls), 5);
        assert_eq!(r.counter(Metric::GemmFlops), 0);
    }

    #[test]
    fn gauges_store_last_value() {
        let r = MetricsRegistry::new();
        r.set(Metric::PoolWorkers, 4);
        r.set(Metric::PoolWorkers, 2);
        assert_eq!(r.gauge(Metric::PoolWorkers), 2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let r = MetricsRegistry::new();
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            r.observe(Metric::StepNs, v);
        }
        let snap = r.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "engine.step_ns")
            .unwrap();
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1011);
        // 0 -> [0,1); 1,1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8); 1000 -> [512,1024).
        assert_eq!(h.buckets, vec![(1, 1), (2, 2), (4, 2), (8, 1), (1024, 1)]);
    }

    #[test]
    fn snapshot_lookup_by_name() {
        let r = MetricsRegistry::new();
        r.add(Metric::GuardTrips, 7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("guard.trips"), Some(7));
        assert_eq!(snap.counter("no.such"), None);
        assert_eq!(snap.gauge("pool.workers"), Some(0));
    }

    #[test]
    fn every_metric_has_unique_name() {
        for (i, a) in Metric::ALL.iter().enumerate() {
            for b in &Metric::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
