//! Span/event tracer: a Dapper-style collector with a bounded,
//! lock-free ring recorder.
//!
//! Names are interned up front (at plan build), so recording an event
//! on the hot path is three relaxed atomic stores into a fixed ring —
//! no allocation, no lock. The thread-local *current observer* makes
//! the instruments reachable from leaf crates (`tensor`, `parallel`)
//! without threading a handle through every kernel signature: the
//! session installs its observer for the duration of a run (including
//! inside pool worker tasks) and uninstalls it on scope exit.

use crate::metrics::{Metric, MetricsRegistry, MetricsSnapshot};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much the stack records. `Copy`, so it rides along inside
/// `ExecConfig`/`StackConfig` without breaking their by-value idiom.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ObsLevel {
    /// No observer: the hot path pays one relaxed atomic load.
    #[default]
    Off,
    /// Metrics registry only (counters/gauges/histograms).
    Metrics,
    /// Metrics plus span/event recording into the ring collector.
    Trace,
}

impl ObsLevel {
    /// True for any level that creates an observer.
    pub fn is_on(self) -> bool {
        self != ObsLevel::Off
    }
}

/// An interned span/event name (index into the observer's name table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: `[ts_ns, ts_ns + dur_ns)` (Chrome `ph:"X"`).
    Span,
    /// A point in time (Chrome `ph:"i"`).
    Instant,
}

/// One recorded event. Fixed-size and `Copy`, so the ring never
/// allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned name.
    pub name: NameId,
    /// Span or instant.
    pub kind: EventKind,
    /// Start, nanoseconds since the observer's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Logical track: 0 = the calling thread, 1.. = batch chunks.
    pub tid: u32,
}

/// An event sink. Implementations must be cheap and panic-free: the
/// engine calls [`Collector::record`] from kernel hot paths and pool
/// workers.
pub trait Collector: Send + Sync {
    /// Records one event (may drop under pressure, must not block).
    fn record(&self, ev: TraceEvent);
    /// Returns the retained events in chronological record order.
    fn events(&self) -> Vec<TraceEvent>;
    /// Number of events dropped/overwritten since creation.
    fn dropped(&self) -> u64;
}

/// Bounded lock-free ring recorder: the default [`Collector`].
///
/// Writers claim a slot with one `fetch_add` and write the event as
/// three relaxed `u64` stores; when the ring wraps, the oldest events
/// are overwritten (counted in [`Collector::dropped`]). Reads are meant
/// for quiescent points (after a run, when the pool has joined); a read
/// racing a wrapping writer can observe a torn event, never undefined
/// behaviour.
pub struct RingCollector {
    // Each slot is 3 words: [name | kind<<32 | tid<<40], ts_ns, dur_ns.
    slots: Box<[AtomicU64]>,
    head: AtomicUsize,
    capacity: usize,
}

impl RingCollector {
    /// Default ring capacity (events).
    pub const DEFAULT_CAPACITY: usize = 64 * 1024;

    /// Creates a ring holding `capacity` events (rounded up to a power
    /// of two, minimum 16).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(16).next_power_of_two();
        RingCollector {
            slots: (0..capacity * 3).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
            capacity,
        }
    }

    fn encode(ev: &TraceEvent) -> [u64; 3] {
        let kind = match ev.kind {
            EventKind::Span => 0u64,
            EventKind::Instant => 1u64,
        };
        [
            ev.name.0 as u64 | kind << 32 | (ev.tid as u64) << 40,
            ev.ts_ns,
            ev.dur_ns,
        ]
    }

    fn decode(w0: u64, ts_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            name: NameId((w0 & 0xFFFF_FFFF) as u32),
            kind: if w0 >> 32 & 0xFF == 0 {
                EventKind::Span
            } else {
                EventKind::Instant
            },
            ts_ns,
            dur_ns,
            tid: (w0 >> 40) as u32,
        }
    }
}

impl Default for RingCollector {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl Collector for RingCollector {
    fn record(&self, ev: TraceEvent) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) & (self.capacity - 1);
        let [w0, w1, w2] = Self::encode(&ev);
        self.slots[idx * 3].store(w0, Ordering::Relaxed);
        self.slots[idx * 3 + 1].store(w1, Ordering::Relaxed);
        self.slots[idx * 3 + 2].store(w2, Ordering::Release);
    }

    fn events(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(self.capacity);
        let first = if head > self.capacity {
            head & (self.capacity - 1)
        } else {
            0
        };
        (0..n)
            .map(|i| {
                let idx = (first + i) & (self.capacity - 1);
                Self::decode(
                    self.slots[idx * 3].load(Ordering::Relaxed),
                    self.slots[idx * 3 + 1].load(Ordering::Relaxed),
                    self.slots[idx * 3 + 2].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    fn dropped(&self) -> u64 {
        self.head
            .load(Ordering::Relaxed)
            .saturating_sub(self.capacity) as u64
    }
}

/// The per-session observability hub: one metrics registry, an optional
/// event collector, and the interned name table.
pub struct Observer {
    level: ObsLevel,
    metrics: MetricsRegistry,
    collector: Option<Box<dyn Collector>>,
    names: Mutex<Vec<String>>,
    epoch: Instant,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("level", &self.level)
            .field("names", &self.names.lock().expect("name table lock").len())
            .finish_non_exhaustive()
    }
}

impl Observer {
    /// Builds an observer for `level`; [`ObsLevel::Trace`] attaches a
    /// default-capacity [`RingCollector`]. Returns `None` for
    /// [`ObsLevel::Off`].
    pub fn for_level(level: ObsLevel) -> Option<Arc<Observer>> {
        match level {
            ObsLevel::Off => None,
            ObsLevel::Metrics => Some(Arc::new(Observer::build(level, None))),
            ObsLevel::Trace => Some(Arc::new(Observer::build(
                level,
                Some(Box::new(RingCollector::default()) as Box<dyn Collector>),
            ))),
        }
    }

    /// Builds a tracing observer with a caller-supplied collector.
    pub fn with_collector(collector: Box<dyn Collector>) -> Arc<Observer> {
        Arc::new(Observer::build(ObsLevel::Trace, Some(collector)))
    }

    fn build(level: ObsLevel, collector: Option<Box<dyn Collector>>) -> Observer {
        Observer {
            level,
            metrics: MetricsRegistry::new(),
            collector,
            names: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// The observer's recording level.
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Snapshots every instrument (cold path; allocates).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Interns `name`, returning a stable id; repeated calls with the
    /// same string return the same id. Cold path (plan build, demotion).
    pub fn intern(&self, name: &str) -> NameId {
        let mut names = self.names.lock().expect("name table lock");
        if let Some(i) = names.iter().position(|n| n == name) {
            return NameId(i as u32);
        }
        names.push(name.to_string());
        NameId((names.len() - 1) as u32)
    }

    /// The interned name table, in id order.
    pub fn names(&self) -> Vec<String> {
        self.names.lock().expect("name table lock").clone()
    }

    /// Nanoseconds since the observer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a span `[ts_ns, ts_ns + dur_ns)` on track `tid`.
    /// No-op unless a collector is attached.
    #[inline]
    pub fn span(&self, name: NameId, ts_ns: u64, dur_ns: u64, tid: u32) {
        if let Some(c) = &self.collector {
            c.record(TraceEvent {
                name,
                kind: EventKind::Span,
                ts_ns,
                dur_ns,
                tid,
            });
        }
    }

    /// Records an instant event at `ts_ns` on track `tid`.
    #[inline]
    pub fn instant(&self, name: NameId, ts_ns: u64, tid: u32) {
        if let Some(c) = &self.collector {
            c.record(TraceEvent {
                name,
                kind: EventKind::Instant,
                ts_ns,
                dur_ns: 0,
                tid,
            });
        }
    }

    /// The recorded events, chronological. Empty without a collector.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.collector
            .as_ref()
            .map(|c| c.events())
            .unwrap_or_default()
    }

    /// Events dropped by the collector (ring overwrites).
    pub fn dropped(&self) -> u64 {
        self.collector.as_ref().map(|c| c.dropped()).unwrap_or(0)
    }
}

// Process-wide count of installed observer guards: lets the disabled
// hot path bail on one relaxed load without touching TLS.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<Arc<Observer>>> = const { RefCell::new(None) };
}

/// Installs `obs` as this thread's current observer until the returned
/// guard drops (restoring whatever was installed before).
pub fn install(obs: Arc<Observer>) -> ObsGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(obs));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    ObsGuard { prev }
}

/// Uninstall-on-drop guard returned by [`install`].
pub struct ObsGuard {
    prev: Option<Arc<Observer>>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// True when any thread currently has an observer installed. One
/// relaxed load; this is the whole cost of a disabled instrument.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Runs `f` against this thread's current observer, if any.
#[inline]
pub fn with_current<R>(f: impl FnOnce(&Observer) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(|o| f(o)))
}

/// Clones this thread's current observer handle (for handing to worker
/// closures).
pub fn current() -> Option<Arc<Observer>> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Adds `n` to counter `m` on the current observer, if any.
#[inline]
pub fn count(m: Metric, n: u64) {
    with_current(|o| o.metrics.add(m, n));
}

/// Sets gauge `m` on the current observer, if any.
#[inline]
pub fn gauge(m: Metric, v: i64) {
    with_current(|o| o.metrics.set(m, v));
}

/// Records one histogram sample on the current observer, if any.
#[inline]
pub fn observe(m: Metric, v: u64) {
    with_current(|o| o.metrics.observe(m, v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_latest_events_in_order() {
        let ring = RingCollector::with_capacity(16);
        for i in 0..20u64 {
            ring.record(TraceEvent {
                name: NameId(i as u32),
                kind: EventKind::Span,
                ts_ns: i,
                dur_ns: 1,
                tid: 0,
            });
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 16);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(evs.first().unwrap().ts_ns, 4);
        assert_eq!(evs.last().unwrap().ts_ns, 19);
        assert!(evs.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ev = TraceEvent {
            name: NameId(123_456),
            kind: EventKind::Instant,
            ts_ns: u64::MAX / 3,
            dur_ns: 42,
            tid: 7,
        };
        let ring = RingCollector::with_capacity(16);
        ring.record(ev);
        assert_eq!(ring.events(), vec![ev]);
    }

    #[test]
    fn interning_dedups() {
        let obs = Observer::for_level(ObsLevel::Trace).unwrap();
        let a = obs.intern("step one");
        let b = obs.intern("step two");
        let again = obs.intern("step one");
        assert_eq!(a, again);
        assert_ne!(a, b);
        assert_eq!(obs.names(), vec!["step one".to_string(), "step two".into()]);
    }

    #[test]
    fn install_scopes_and_nests() {
        assert!(current().is_none());
        let outer = Observer::for_level(ObsLevel::Metrics).unwrap();
        {
            let _g = install(outer.clone());
            count(Metric::GemmCalls, 1);
            let inner = Observer::for_level(ObsLevel::Metrics).unwrap();
            {
                let _g2 = install(inner.clone());
                count(Metric::GemmCalls, 10);
            }
            count(Metric::GemmCalls, 1);
            assert_eq!(inner.metrics().counter(Metric::GemmCalls), 10);
        }
        assert_eq!(outer.metrics().counter(Metric::GemmCalls), 2);
        assert!(current().is_none());
    }

    #[test]
    fn metrics_level_records_no_events() {
        let obs = Observer::for_level(ObsLevel::Metrics).unwrap();
        let id = obs.intern("x");
        obs.span(id, 0, 10, 0);
        assert!(obs.events().is_empty());
        assert_eq!(obs.dropped(), 0);
    }
}
