//! Trace exporters: Chrome `trace_event` JSON for humans (load in
//! `chrome://tracing` or Perfetto) and a deterministic text format for
//! golden-file tests (stable ordering, no timestamps, no thread ids).

use crate::trace::{EventKind, Observer, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the observer's recorded events as Chrome `trace_event` JSON
/// (the "JSON object" flavour: `{"traceEvents": [...]}`).
///
/// Spans become complete events (`ph:"X"`), instants `ph:"i"`;
/// timestamps are microseconds with nanosecond precision, one `pid`,
/// and the event's logical track as `tid` (0 = calling thread,
/// 1.. = batch chunks).
pub fn chrome_trace_json(obs: &Observer) -> String {
    use std::fmt::Write as _;
    let names = obs.names();
    let name_of = |ev: &TraceEvent| {
        names
            .get(ev.name.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    };
    let mut out = String::from("{\"traceEvents\": [\n");
    let events = obs.events();
    for (i, ev) in events.iter().enumerate() {
        let name = json_escape(name_of(ev));
        let ts = ev.ts_ns as f64 / 1_000.0;
        match ev.kind {
            EventKind::Span => {
                let dur = ev.dur_ns as f64 / 1_000.0;
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"cat\": \"cnn-stack\", \"ph\": \"X\", \
                     \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": 1, \"tid\": {}}}",
                    ev.tid
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"cat\": \"cnn-stack\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts:.3}, \"pid\": 1, \"tid\": {}}}",
                    ev.tid
                );
            }
        }
        out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Renders the observer's recorded events as the deterministic golden
/// text format: one line per event, nesting shown by indentation,
/// **no timestamps and no thread ids**, ordered by span start (ties:
/// longer span first, then name), so a serial run produces the same
/// bytes every time.
///
/// ```text
/// trace-text v1
/// span session.run
///   span conv3x3(3->16) [span 3] Im2col/Packed +relu
///   span maxpool2
/// mark guard.trip
/// ```
pub fn text_trace(obs: &Observer) -> String {
    let names = obs.names();
    let mut events = obs.events();
    events.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.name.0.cmp(&b.name.0))
    });
    let mut out = String::from("trace-text v1\n");
    // Stack of span end-times drives the indentation depth.
    let mut open_ends: Vec<u64> = Vec::new();
    for ev in &events {
        while let Some(&end) = open_ends.last() {
            if ev.ts_ns >= end {
                open_ends.pop();
            } else {
                break;
            }
        }
        for _ in 0..open_ends.len() {
            out.push_str("  ");
        }
        let name = names
            .get(ev.name.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>");
        match ev.kind {
            EventKind::Span => {
                out.push_str("span ");
                out.push_str(name);
                out.push('\n');
                open_ends.push(ev.ts_ns + ev.dur_ns);
            }
            EventKind::Instant => {
                out.push_str("mark ");
                out.push_str(name);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NameId, ObsLevel};

    fn demo_observer() -> std::sync::Arc<Observer> {
        let obs = Observer::for_level(ObsLevel::Trace).unwrap();
        let run = obs.intern("session.run");
        let s1 = obs.intern("conv [span 1]");
        let s2 = obs.intern("relu [span 1]");
        let trip = obs.intern("guard.trip");
        // Children recorded before the parent (spans are recorded at
        // their *end*), exporters must still nest them correctly.
        obs.span(s1, 10, 50, 0);
        obs.instant(trip, 40, 0);
        obs.span(s2, 60, 30, 0);
        obs.span(run, 0, 100, 0);
        obs
    }

    #[test]
    fn text_trace_nests_and_orders() {
        let obs = demo_observer();
        let text = text_trace(&obs);
        assert_eq!(
            text,
            "trace-text v1\n\
             span session.run\n\
             \x20 span conv [span 1]\n\
             \x20   mark guard.trip\n\
             \x20 span relu [span 1]\n"
        );
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let obs = demo_observer();
        let json = chrome_trace_json(&obs);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\": \"ms\"}"));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\": \"i\"").count(), 1);
        assert!(json.contains("\"name\": \"session.run\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        let obs = Observer::for_level(ObsLevel::Trace).unwrap();
        let id = obs.intern("a\"b\\c\nd");
        obs.span(id, 0, 1, 0);
        let json = chrome_trace_json(&obs);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn unknown_name_id_does_not_panic() {
        let obs = Observer::for_level(ObsLevel::Trace).unwrap();
        obs.span(NameId(999), 0, 1, 0);
        assert!(text_trace(&obs).contains("<unknown>"));
    }
}
