//! The analytic timing model: prices a forward pass per layer on a
//! [`Platform`] from the network's [`LayerDescriptor`]s.
//!
//! The model is a roofline with explicit systems overheads. Per layer:
//!
//! ```text
//! work      = macs                                        (dense)
//!           = macs · min(penalty · density, saturation)   (CSR)
//! intensity = work / bytes_touched
//! eff(T)    = 1 / (1 + contention·(T-1)·(intensity_ref/intensity)²)
//! compute   = min(work / (aggregate_rate(T) · eff(T)),
//!                 serial · (1 + thrash·(T-1)))
//! memory    = bytes_touched / bandwidth
//! overhead  = spawn·T + grains·dispatch·(1 + sched·(T-1))   (T > 1)
//! time      = max(compute, memory) + overhead
//! ```
//!
//! Every headline effect of the paper emerges from this structure rather
//! than per-experiment tuning: CSR's failure to speed up inference
//! (`min(penalty·density, saturation) ≥ 1` until extreme sparsity),
//! channel pruning's clean win (dense `macs` genuinely shrink),
//! MobileNet's refusal to scale (low arithmetic intensity → `eff`
//! collapses with threads while dense work is already small), and the
//! sparse models' *relative* improvement under threading (the penalty
//! inflates `work`, restoring intensity and hence efficiency).

use crate::platform::Platform;
use cnn_stack_nn::memory::layer_weight_bytes;
use cnn_stack_nn::{LayerDescriptor, LayerKind, WeightFormat};

/// Which systems backend executes the network (§IV-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// OpenMP-style CPU threading of each layer's outer loop.
    #[default]
    OpenMp,
    /// Hand-tuned OpenCL kernels on the platform GPU (4×4 work-groups,
    /// 16-wide vectors — §V-F).
    OpenClHandTuned,
    /// CLBlast im2col + GEMM pipeline on the platform GPU.
    OpenClClblast,
}

/// Simulation configuration for one measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// CPU thread count (ignored by the GPU backends).
    pub threads: usize,
    /// Execution backend.
    pub backend: Backend,
    /// Whether CPU convolutions run through im2col (adds the lowering
    /// traffic to the memory term).
    pub im2col: bool,
}

impl SimConfig {
    /// Single-threaded CPU execution with direct convolutions.
    pub fn serial() -> Self {
        SimConfig {
            threads: 1,
            backend: Backend::OpenMp,
            im2col: false,
        }
    }

    /// CPU execution on `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn cpu(threads: usize) -> Self {
        assert!(threads > 0, "at least one thread required");
        SimConfig {
            threads,
            ..SimConfig::serial()
        }
    }

    /// GPU execution with the given backend.
    pub fn gpu(backend: Backend) -> Self {
        SimConfig {
            threads: 1,
            backend,
            im2col: matches!(backend, Backend::OpenClClblast),
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::serial()
    }
}

/// Per-layer modelled time, decomposed.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerTime {
    /// Layer name (from the descriptor).
    pub name: String,
    /// Compute-bound term, seconds.
    pub compute_s: f64,
    /// Memory-bound term, seconds.
    pub memory_s: f64,
    /// Threading/launch overhead, seconds.
    pub overhead_s: f64,
}

impl LayerTime {
    /// The layer's modelled wall-clock contribution.
    pub fn seconds(&self) -> f64 {
        self.compute_s.max(self.memory_s) + self.overhead_s
    }
}

/// Whether the paper's implementation parallelises this layer's outer
/// loop (convolutions and the fully connected layers; §IV-D).
fn is_parallelised(kind: &LayerKind) -> bool {
    matches!(
        kind,
        LayerKind::Conv { .. } | LayerKind::DepthwiseConv { .. } | LayerKind::Linear { .. }
    )
}

/// Effective compute work in MAC-equivalents, applying the CSR penalty
/// (see the module docs).
fn effective_work(platform: &Platform, desc: &LayerDescriptor) -> f64 {
    match desc.format {
        // The quantised kernels run the same dense MAC grid (the codes
        // decode to full-rate FMA operands), so their compute work is
        // dense work — the win is on the memory side.
        WeightFormat::Dense | WeightFormat::Ternary | WeightFormat::Int8 => desc.macs as f64,
        WeightFormat::Csr => {
            let density = if desc.weight_elems == 0 {
                1.0
            } else {
                desc.weight_nnz as f64 / desc.weight_elems as f64
            };
            desc.macs as f64 * (platform.sparse_penalty * density).min(platform.sparse_saturation)
        }
    }
}

/// Bytes the layer touches: activations in/out, weights in their storage
/// format, plus im2col lowering traffic when enabled.
/// Weight bytes actually streamed by the kernels: dense arrays, or the
/// compact CSR triple. (The *footprint* tables use the paper's
/// per-filter CSR layout via `cnn_stack_nn::memory`; the kernels stream
/// the compact arrays.)
fn streamed_weight_bytes(desc: &LayerDescriptor) -> f64 {
    match desc.format {
        WeightFormat::Dense => desc.weight_elems as f64 * 4.0,
        WeightFormat::Csr => desc.weight_nnz as f64 * 8.0 + (desc.parallel_grains + 1) as f64 * 8.0,
        // 2-bit codes / 1-byte elements plus the per-layer scales.
        WeightFormat::Ternary => desc.weight_elems as f64 / 4.0 + 8.0,
        WeightFormat::Int8 => desc.weight_elems as f64 + 4.0,
    }
}

fn bytes_touched(desc: &LayerDescriptor, im2col: bool) -> f64 {
    let mut bytes = (desc.input_elems + desc.output_elems) as f64 * 4.0;
    bytes += streamed_weight_bytes(desc);
    if im2col {
        if let LayerKind::Conv { geom, .. } = &desc.kind {
            // Write + read of the lowered patch matrix.
            bytes += 2.0 * (geom.patch_len() * geom.out_positions()) as f64 * 4.0;
        }
    }
    bytes
}

/// Models one layer on the CPU (OpenMP backend).
fn cpu_layer_time(platform: &Platform, desc: &LayerDescriptor, cfg: &SimConfig) -> LayerTime {
    let work = effective_work(platform, desc);
    let bytes = bytes_touched(desc, cfg.im2col);
    let parallel = is_parallelised(&desc.kind) && cfg.threads > 1;

    let (compute_s, overhead_s) = if parallel {
        let t = cfg.threads;
        // CSR kernels gather input planes tap by tap with poor cache-line
        // utilisation, so however small their weight arrays get, their
        // *effective* arithmetic intensity saturates: the memory system
        // sees work-proportional gather traffic. This keeps the sparse
        // formats from out-scaling dense on the compute-heavy models (the
        // paper's VGG/ResNet observation) while the reduced absolute work
        // still lets the highly sparse MobileNet variants win.
        const CSR_INTENSITY_CAP: f64 = 4.0;
        let intensity = match desc.format {
            WeightFormat::Csr => (work / bytes).clamp(1e-6, CSR_INTENSITY_CAP),
            _ => (work / bytes).max(1e-6),
        };
        let ratio = platform.intensity_ref / intensity;
        let eff = 1.0 / (1.0 + platform.mem_contention * (t - 1) as f64 * ratio * ratio);
        // A thread team degenerates to near-serial execution at worst; it
        // never livelocks (see `Platform::parallel_thrash`).
        let serial_floor =
            work / platform.single_core_rate() * (1.0 + platform.parallel_thrash * (t - 1) as f64);
        let compute = (work / (platform.aggregate_rate(t) * eff)).min(serial_floor);
        let dispatch = desc.parallel_grains as f64
            * platform.dispatch_s
            * (1.0 + platform.sched_contention * (t - 1) as f64);
        let overhead = platform.thread_spawn_s * t as f64 + dispatch;
        (compute, overhead)
    } else {
        (work / platform.single_core_rate(), 0.0)
    };

    LayerTime {
        name: desc.name.clone(),
        compute_s,
        memory_s: bytes / platform.mem_bytes_per_sec,
        overhead_s,
    }
}

/// Models one layer on the GPU.
///
/// # Panics
///
/// Panics if the platform has no GPU.
fn gpu_layer_time(platform: &Platform, desc: &LayerDescriptor, backend: Backend) -> LayerTime {
    let gpu = platform
        .gpu
        .as_ref()
        .expect("platform has no GPU for an OpenCL backend");
    let macs = desc.macs as f64;
    let is_conv = matches!(
        desc.kind,
        LayerKind::Conv { .. } | LayerKind::DepthwiseConv { .. }
    );
    let (compute_s, overhead_s) = match backend {
        Backend::OpenClHandTuned => (macs / gpu.hand_tuned_macs_per_sec, gpu.kernel_launch_s),
        Backend::OpenClClblast if is_conv => {
            // im2col + GEMM: efficiency saturates with per-call MACs.
            let util =
                (macs / (macs + gpu.gemm_half_saturation_macs)).max(gpu.gemm_min_utilisation);
            let rate = (gpu.gemm_peak_macs_per_sec * util).max(1e3);
            // The im2col transform streams the patch matrix on-device.
            let lower_s = if let LayerKind::Conv { geom, .. } = &desc.kind {
                2.0 * (geom.patch_len() * geom.out_positions()) as f64 * 4.0
                    / gpu.transfer_bytes_per_sec
            } else {
                0.0
            };
            (
                macs / rate + lower_s,
                gpu.gemm_call_overhead_s + gpu.kernel_launch_s,
            )
        }
        // Non-convolution layers run as plain hand-written kernels even
        // under the CLBlast pipeline.
        _ => (macs / gpu.hand_tuned_macs_per_sec, gpu.kernel_launch_s),
    };
    LayerTime {
        name: desc.name.clone(),
        compute_s,
        // On-device activation traffic.
        memory_s: (desc.input_elems + desc.output_elems) as f64 * 4.0 / gpu.transfer_bytes_per_sec,
        overhead_s,
    }
}

/// Models one layer under `cfg`.
///
/// # Panics
///
/// Panics if a GPU backend is requested on a platform without a GPU.
pub fn layer_time(platform: &Platform, desc: &LayerDescriptor, cfg: &SimConfig) -> LayerTime {
    match cfg.backend {
        Backend::OpenMp => cpu_layer_time(platform, desc, cfg),
        Backend::OpenClHandTuned | Backend::OpenClClblast => {
            gpu_layer_time(platform, desc, cfg.backend)
        }
    }
}

/// Models a full forward pass: returns `(total_seconds, per_layer)`.
///
/// GPU backends additionally pay the one-time host→device transfer of the
/// input image and all weights, and the device→host transfer of the
/// output — the paper's "arrays … passed through the buffers … at the
/// start of the program" (§IV-D).
///
/// # Panics
///
/// Panics if a GPU backend is requested on a platform without a GPU.
pub fn network_time(
    platform: &Platform,
    descs: &[LayerDescriptor],
    cfg: &SimConfig,
) -> (f64, Vec<LayerTime>) {
    let per_layer: Vec<LayerTime> = descs.iter().map(|d| layer_time(platform, d, cfg)).collect();
    let mut total: f64 = per_layer.iter().map(LayerTime::seconds).sum();
    if matches!(
        cfg.backend,
        Backend::OpenClHandTuned | Backend::OpenClClblast
    ) {
        let gpu = platform.gpu.as_ref().expect("platform has no GPU");
        let weight_bytes: usize = descs.iter().map(layer_weight_bytes).sum();
        let input_bytes = descs.first().map_or(0, |d| d.input_elems * 4);
        let output_bytes = descs.last().map_or(0, |d| d.output_elems * 4);
        total += (weight_bytes + input_bytes + output_bytes) as f64 / gpu.transfer_bytes_per_sec;
    }
    // When an observer is installed, lay the modelled per-layer times
    // out as spans on a dedicated "modelled" track: the trace then shows
    // the analytic prediction next to the measured host spans.
    cnn_stack_obs::with_current(|o| {
        let mut t_ns = 0u64;
        for lt in &per_layer {
            let dur = ((lt.seconds() * 1e9) as u64).max(1);
            let id = o.intern(&format!("model:{}", lt.name));
            o.span(id, t_ns, dur, MODELLED_TRACK);
            t_ns += dur;
        }
        let id = o.intern("model:network");
        o.span(id, 0, t_ns.max(1), MODELLED_TRACK);
    });
    (total, per_layer)
}

/// Trace track (`tid`) that modelled spans are recorded on, keeping the
/// analytic timeline visually separate from measured host spans
/// (track 0) and batch chunks (1..).
pub const MODELLED_TRACK: u32 = 90;

/// The paper's Fig. 1 "expected" time: the measured dense baseline scaled
/// by the surviving fraction of MACs.
pub fn expected_time(dense_total_s: f64, descs: &[LayerDescriptor]) -> f64 {
    let macs: u64 = descs.iter().map(|d| d.macs).sum();
    let effective: u64 = descs.iter().map(|d| d.effective_macs()).sum();
    if macs == 0 {
        return dense_total_s;
    }
    dense_total_s * effective as f64 / macs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{intel_i7, odroid_xu4};
    use cnn_stack_models::{mobilenet, resnet18, vgg16, ModelKind};
    use cnn_stack_nn::network::set_network_format;

    fn descs(kind: ModelKind, csr: bool) -> Vec<LayerDescriptor> {
        let mut model = kind.build(10);
        if csr {
            set_network_format(&mut model.network, WeightFormat::Csr);
        }
        model.network.descriptors(&[1, 3, 32, 32])
    }

    #[test]
    fn vgg_single_thread_times_are_in_the_papers_range() {
        let odroid = odroid_xu4();
        let i7 = intel_i7();
        let d = descs(ModelKind::Vgg16, false);
        let (t_odroid, _) = network_time(&odroid, &d, &SimConfig::serial());
        let (t_i7, _) = network_time(&i7, &d, &SimConfig::serial());
        // Paper Fig. 4(a)/(b): ~4 s and ~1.3 s.
        assert!(t_odroid > 2.5 && t_odroid < 6.0, "odroid {t_odroid}");
        assert!(t_i7 > 0.8 && t_i7 < 2.0, "i7 {t_i7}");
    }

    #[test]
    fn vgg_and_resnet_scale_with_threads() {
        for platform in [odroid_xu4(), intel_i7()] {
            for kind in [ModelKind::Vgg16, ModelKind::ResNet18] {
                let d = descs(kind, false);
                let counts = platform.paper_thread_counts();
                let times: Vec<f64> = counts
                    .iter()
                    .map(|&t| network_time(&platform, &d, &SimConfig::cpu(t)).0)
                    .collect();
                for w in times.windows(2) {
                    assert!(
                        w[1] < w[0],
                        "{kind} on {} did not speed up: {times:?}",
                        platform.name
                    );
                }
            }
        }
    }

    #[test]
    fn mobilenet_does_not_benefit_from_threads() {
        // §V-D: "MobileNet is the least suitable for parallelisation,
        // achieving no speedup on the two platforms".
        for platform in [odroid_xu4(), intel_i7()] {
            let d = descs(ModelKind::MobileNet, false);
            let t1 = network_time(&platform, &d, &SimConfig::cpu(1)).0;
            let tmax = network_time(&platform, &d, &SimConfig::cpu(platform.max_threads())).0;
            assert!(
                tmax > t1 * 0.9,
                "MobileNet speedup too large on {}: {t1} -> {tmax}",
                platform.name
            );
        }
    }

    #[test]
    fn sparse_formats_hurt_vgg_and_resnet() {
        // §V-D: "the sparse methods fail to provide any speedup and do in
        // fact hurt the performance".
        for platform in [odroid_xu4(), intel_i7()] {
            for kind in [ModelKind::Vgg16, ModelKind::ResNet18] {
                let dense = descs(kind, false);
                let sparse = descs(kind, true); // 0% pruned CSR: worst case
                for &t in &platform.paper_thread_counts() {
                    let td = network_time(&platform, &dense, &SimConfig::cpu(t)).0;
                    let ts = network_time(&platform, &sparse, &SimConfig::cpu(t)).0;
                    assert!(
                        ts > td,
                        "{kind} CSR should be slower on {} at {t} threads",
                        platform.name
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_work_saturates_not_explodes() {
        // At moderate density the CSR work multiplier is the saturation
        // constant, not penalty × density.
        let p = intel_i7();
        let desc = LayerDescriptor {
            name: "conv".into(),
            kind: LayerKind::Conv {
                geom: cnn_stack_tensor::Conv2dGeometry::new(64, 32, 32, 3, 3, 1, 1),
                out_channels: 64,
            },
            macs: 1_000_000,
            weight_elems: 1000,
            weight_nnz: 500, // 50% density
            format: WeightFormat::Csr,
            input_elems: 0,
            output_elems: 0,
            output_shape: vec![1],
            scratch_elems: 0,
            parallel_grains: 64,
        };
        let w = effective_work(&p, &desc);
        assert!((w - 1_000_000.0 * p.sparse_saturation).abs() < 1.0);
    }

    #[test]
    fn high_sparsity_eventually_wins() {
        let p = intel_i7();
        let mut desc = LayerDescriptor {
            name: "conv".into(),
            kind: LayerKind::Conv {
                geom: cnn_stack_tensor::Conv2dGeometry::new(64, 32, 32, 3, 3, 1, 1),
                out_channels: 64,
            },
            macs: 1_000_000,
            weight_elems: 1000,
            weight_nnz: 50, // 95% sparse
            format: WeightFormat::Csr,
            input_elems: 0,
            output_elems: 0,
            output_shape: vec![1],
            scratch_elems: 0,
            parallel_grains: 64,
        };
        let w_sparse = effective_work(&p, &desc);
        desc.format = WeightFormat::Dense;
        let w_dense = effective_work(&p, &desc);
        assert!(w_sparse < w_dense);
    }

    #[test]
    fn mobilenet_sparse_beats_dense_at_high_threads() {
        // §V-D: "the sparse methods outperform the original model when
        // increasing the number of threads" for MobileNet. Use the
        // quantised operating point (92.13% sparsity) as in Fig. 4(e).
        let platform = odroid_xu4();
        let mut model = mobilenet(10);
        // Sparsify to the Table III quantisation sparsity.
        cnn_stack_compress::magnitude::prune_network(&mut model.network, 0.9213);
        set_network_format(&mut model.network, WeightFormat::Csr);
        let sparse = model.network.descriptors(&[1, 3, 32, 32]);
        let dense = descs(ModelKind::MobileNet, false);
        let t8_dense = network_time(&platform, &dense, &SimConfig::cpu(8)).0;
        let t8_sparse = network_time(&platform, &sparse, &SimConfig::cpu(8)).0;
        assert!(
            t8_sparse < t8_dense,
            "sparse {t8_sparse} should beat dense {t8_dense} at 8 threads"
        );
    }

    #[test]
    fn gpu_hand_tuned_beats_openmp_for_plain_models() {
        // Fig. 6: "the hand-tuned OpenCL versions outperform the OpenMP
        // implementations".
        let platform = odroid_xu4();
        for kind in ModelKind::all() {
            let d = descs(kind, false);
            let omp = network_time(&platform, &d, &SimConfig::cpu(8)).0;
            let ocl = network_time(&platform, &d, &SimConfig::gpu(Backend::OpenClHandTuned)).0;
            assert!(ocl < omp, "{kind}: OpenCL {ocl} vs OpenMP {omp}");
        }
    }

    #[test]
    fn clblast_collapses_on_cifar_but_wins_at_imagenet_scale() {
        let platform = odroid_xu4();
        // CIFAR ResNet-18: CLBlast suffers up to ~10x vs hand-tuned.
        let d = descs(ModelKind::ResNet18, false);
        let hand = network_time(&platform, &d, &SimConfig::gpu(Backend::OpenClHandTuned)).0;
        let blast = network_time(&platform, &d, &SimConfig::gpu(Backend::OpenClClblast)).0;
        let ratio = blast / hand;
        assert!(ratio > 4.0, "CLBlast/hand ratio {ratio} too small");
        // ImageNet-scale VGG (224x224): CLBlast beats 8-thread OpenMP
        // (§V-F).
        let mut vgg = vgg16(1000);
        let d224 = vgg.network.descriptors(&[1, 3, 224, 224]);
        let _ = &mut vgg;
        let omp = network_time(&platform, &d224, &SimConfig::cpu(8)).0;
        let blast224 = network_time(&platform, &d224, &SimConfig::gpu(Backend::OpenClClblast)).0;
        assert!(
            blast224 < omp,
            "at 224x224 CLBlast ({blast224}) should beat OpenMP ({omp})"
        );
    }

    #[test]
    fn channel_pruning_wins_everywhere() {
        // §V-D headline: channel pruning beats weight pruning and
        // quantisation in every setup. Compare at the Table III points.
        let platform = intel_i7();
        let mut cp = vgg16(10);
        // Remove ~50% of channels from every group as a stand-in for the
        // 88.48% parameter compression.
        for g in 0..cp.plan.group_count() {
            let n = cp.plan.channels(&cp.network, g) / 2;
            for _ in 0..n {
                cp.plan.prune(&mut cp.network, g, 0);
            }
        }
        let cp_descs = cp.network.descriptors(&[1, 3, 32, 32]);
        let mut wp = vgg16(10);
        cnn_stack_compress::magnitude::prune_network(&mut wp.network, 0.7654);
        set_network_format(&mut wp.network, WeightFormat::Csr);
        let wp_descs = wp.network.descriptors(&[1, 3, 32, 32]);
        for &t in &platform.paper_thread_counts() {
            let t_cp = network_time(&platform, &cp_descs, &SimConfig::cpu(t)).0;
            let t_wp = network_time(&platform, &wp_descs, &SimConfig::cpu(t)).0;
            assert!(t_cp < t_wp, "channel pruning should win at {t} threads");
        }
    }

    #[test]
    fn expected_time_scales_with_sparsity() {
        let mut model = resnet18(10);
        cnn_stack_compress::magnitude::prune_network(&mut model.network, 0.8);
        let d = model.network.descriptors(&[1, 3, 32, 32]);
        let expected = expected_time(1.0, &d);
        assert!(expected > 0.15 && expected < 0.35, "expected {expected}");
    }

    #[test]
    #[should_panic(expected = "no GPU")]
    fn gpu_backend_requires_gpu() {
        let d = descs(ModelKind::Vgg16, false);
        let _ = network_time(&intel_i7(), &d, &SimConfig::gpu(Backend::OpenClHandTuned));
    }
}
