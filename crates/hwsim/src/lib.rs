//! Hardware layer of the stack: platform descriptors, the analytic
//! timing model, a simulated OpenCL device, and a CLBlast-style tuned
//! GEMM with a CLTune-style auto-tuner.
//!
//! The paper measures two physical platforms — an Odroid-XU4
//! (Cortex-A15/A7 big.LITTLE with a Mali-T628 GPU) and an Intel Core
//! i7-3820 —
//! neither of which exists in this environment. Following the
//! substitution policy (`DESIGN.md` §5), this crate provides:
//!
//! * [`platform`] — parametric descriptions of both machines (core
//!   counts, effective MAC rates, memory bandwidth, threading overheads,
//!   sparse-access penalties), calibrated so the *relative* behaviour of
//!   the paper's experiments is reproduced from first principles.
//! * [`timing`] — an analytic roofline-plus-overheads model that prices a
//!   network forward pass per layer from its
//!   [`LayerDescriptor`](cnn_stack_nn::LayerDescriptor)s: compute versus
//!   memory bounds, OpenMP fork/dispatch overheads, dynamic-scheduling
//!   contention, and the CSR per-nonzero penalty.
//! * [`ocl`] — a functional simulation of the paper's OpenCL pipeline:
//!   buffers, kernel launches and transfers execute real Rust kernels
//!   (bit-identical results) while a Mali-shaped cost model accumulates
//!   simulated time.
//! * [`clblast`] — a tiled GEMM exposing CLBlast's tuning surface and a
//!   random-search auto-tuner in the spirit of CLTune.
//! * [`energy`] — per-event energy costs (pJ/MAC, pJ/DRAM-byte, static
//!   power) turning the paper's §I energy motivation into numbers.

pub mod clblast;
pub mod energy;
pub mod ocl;
pub mod platform;
pub mod timing;

pub use clblast::{tune_gemm, TuneResult, TunedGemm};
pub use energy::{network_energy, EnergyBreakdown, EnergyModel};
pub use ocl::{OclDevice, OclRun};
pub use platform::{intel_i7, odroid_xu4, CpuCluster, GpuDevice, Platform};
pub use timing::{layer_time, network_time, Backend, LayerTime, SimConfig};
