//! A functional simulation of the paper's OpenCL pipeline (§IV-D).
//!
//! The paper's GPU path flattens every matrix to a 1-D array, copies it
//! into device buffers at program start, launches one kernel per layer,
//! and reads the final output back. [`OclDevice`] reproduces that
//! execution model: buffers hold real data, kernels execute real Rust
//! code (results are bit-identical to the CPU path), and a Mali-shaped
//! cost model accumulates *simulated* time for every transfer and launch.
//! Work-group shape and SIMD vector width affect the simulated kernel
//! efficiency, peaking at the paper's hand-tuned choice of 4×4
//! work-items with 16-wide vectors.

use crate::platform::GpuDevice;
use cnn_stack_tensor::{im2col, matmul, Conv2dGeometry, Tensor};

/// Handle to a device buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

/// Outcome of a device computation: the (exact) result plus the simulated
/// execution time.
#[derive(Clone, Debug, PartialEq)]
pub struct OclRun {
    /// Functionally computed output.
    pub output: Tensor,
    /// Simulated seconds consumed by the run.
    pub simulated_s: f64,
}

/// A simulated OpenCL device.
///
/// # Example
///
/// ```
/// use cnn_stack_hwsim::{odroid_xu4, OclDevice};
///
/// let gpu = odroid_xu4().gpu.unwrap();
/// let mut dev = OclDevice::new(gpu);
/// let buf = dev.write_buffer(&[1.0, 2.0, 3.0]);
/// assert_eq!(dev.read_buffer(buf), &[1.0, 2.0, 3.0]);
/// assert!(dev.elapsed_s() > 0.0); // transfers cost simulated time
/// ```
#[derive(Debug)]
pub struct OclDevice {
    gpu: GpuDevice,
    buffers: Vec<Vec<f32>>,
    elapsed_s: f64,
}

impl OclDevice {
    /// Creates a device from a GPU descriptor.
    pub fn new(gpu: GpuDevice) -> Self {
        OclDevice {
            gpu,
            buffers: Vec::new(),
            elapsed_s: 0.0,
        }
    }

    /// Total simulated seconds consumed so far.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Copies host data into a new device buffer (pays transfer time).
    pub fn write_buffer(&mut self, data: &[f32]) -> BufferId {
        self.elapsed_s += (data.len() * 4) as f64 / self.gpu.transfer_bytes_per_sec;
        self.buffers.push(data.to_vec());
        BufferId(self.buffers.len() - 1)
    }

    /// Reads a buffer back to the host (pays transfer time).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn read_buffer(&mut self, id: BufferId) -> &[f32] {
        let data = self.buffers.get(id.0).expect("stale buffer handle");
        self.elapsed_s += (data.len() * 4) as f64 / self.gpu.transfer_bytes_per_sec;
        data
    }

    /// Kernel-efficiency multiplier for a work-group shape and vector
    /// width: 1.0 at the paper's hand-tuned (4×4, 16) point, lower
    /// elsewhere.
    pub fn kernel_efficiency(workgroup: (usize, usize), vector_width: usize) -> f64 {
        let area = (workgroup.0 * workgroup.1).max(1) as f64;
        let wg_eff = 1.0 - 0.15 * (area / 16.0).log2().abs();
        let vec_eff = 1.0 - 0.10 * (vector_width.max(1) as f64 / 16.0).log2().abs();
        (wg_eff.max(0.1)) * (vec_eff.max(0.1))
    }

    /// Launches a direct-convolution kernel: `input` is a `c·h·w` image
    /// buffer, `weights` an `[out_c × (c·k·k)]` filter buffer. Returns
    /// the output buffer.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the geometry.
    pub fn launch_conv2d(
        &mut self,
        input: BufferId,
        weights: BufferId,
        geom: &Conv2dGeometry,
        out_channels: usize,
        workgroup: (usize, usize),
        vector_width: usize,
    ) -> BufferId {
        let image = self
            .buffers
            .get(input.0)
            .expect("stale input handle")
            .clone();
        let wdata = self
            .buffers
            .get(weights.0)
            .expect("stale weight handle")
            .clone();
        assert_eq!(
            image.len(),
            geom.in_channels * geom.in_h * geom.in_w,
            "input buffer does not match geometry"
        );
        assert_eq!(
            wdata.len(),
            out_channels * geom.patch_len(),
            "weight buffer does not match geometry"
        );
        // Functional execution (exact): im2col + GEMM.
        let cols = im2col(&image, geom);
        let w = Tensor::from_vec([out_channels, geom.patch_len()], wdata);
        let out = matmul(&w, &cols);
        // Timing: launch + MACs at the efficiency-scaled hand-tuned rate.
        let macs = (out_channels * geom.patch_len() * geom.out_positions()) as f64;
        let eff = Self::kernel_efficiency(workgroup, vector_width);
        self.elapsed_s +=
            self.gpu.kernel_launch_s + macs / (self.gpu.hand_tuned_macs_per_sec * eff);
        self.buffers.push(out.into_vec());
        BufferId(self.buffers.len() - 1)
    }

    /// Launches a CLBlast GEMM (`a[m×k] · b[k×n]`): functionally exact,
    /// priced with the library's size-dependent efficiency curve and
    /// fixed call overhead.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths do not match the dimensions.
    pub fn launch_gemm_clblast(
        &mut self,
        a: BufferId,
        b: BufferId,
        m: usize,
        k: usize,
        n: usize,
    ) -> BufferId {
        let adata = self.buffers.get(a.0).expect("stale A handle").clone();
        let bdata = self.buffers.get(b.0).expect("stale B handle").clone();
        assert_eq!(adata.len(), m * k, "A buffer length mismatch");
        assert_eq!(bdata.len(), k * n, "B buffer length mismatch");
        let at = Tensor::from_vec([m, k], adata);
        let bt = Tensor::from_vec([k, n], bdata);
        let out = matmul(&at, &bt);
        let macs = (m * k * n) as f64;
        let util =
            (macs / (macs + self.gpu.gemm_half_saturation_macs)).max(self.gpu.gemm_min_utilisation);
        let rate = (self.gpu.gemm_peak_macs_per_sec * util).max(1e3);
        self.elapsed_s += self.gpu.gemm_call_overhead_s + self.gpu.kernel_launch_s + macs / rate;
        self.buffers.push(out.into_vec());
        BufferId(self.buffers.len() - 1)
    }

    /// Runs a whole convolution on the device, end to end: write buffers,
    /// launch, read back.
    pub fn run_conv2d(
        &mut self,
        image: &[f32],
        weights: &Tensor,
        geom: &Conv2dGeometry,
        workgroup: (usize, usize),
        vector_width: usize,
    ) -> OclRun {
        let start = self.elapsed_s;
        let (out_c, _) = weights.shape().matrix();
        let ibuf = self.write_buffer(image);
        let wbuf = self.write_buffer(weights.data());
        let obuf = self.launch_conv2d(ibuf, wbuf, geom, out_c, workgroup, vector_width);
        let data = self.read_buffer(obuf).to_vec();
        OclRun {
            output: Tensor::from_vec([out_c, geom.out_positions()], data),
            simulated_s: self.elapsed_s - start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::odroid_xu4;

    fn device() -> OclDevice {
        OclDevice::new(odroid_xu4().gpu.expect("odroid has a gpu"))
    }

    #[test]
    fn buffers_roundtrip_and_cost_time() {
        let mut dev = device();
        let b = dev.write_buffer(&[1.0, -2.0, 3.5]);
        let t_after_write = dev.elapsed_s();
        assert!(t_after_write > 0.0);
        assert_eq!(dev.read_buffer(b), &[1.0, -2.0, 3.5]);
        assert!(dev.elapsed_s() > t_after_write);
    }

    #[test]
    fn conv_result_matches_cpu_path() {
        let geom = Conv2dGeometry::new(3, 8, 8, 3, 3, 1, 1);
        let image: Vec<f32> = (0..3 * 64).map(|i| (i as f32 * 0.37).sin()).collect();
        let weights = Tensor::from_fn([5, geom.patch_len()], |i| (i as f32 * 0.11).cos());
        let mut dev = device();
        let run = dev.run_conv2d(&image, &weights, &geom, (4, 4), 16);
        // Reference via the same lowering on the host.
        let cols = im2col(&image, &geom);
        let want = matmul(&weights, &cols);
        assert!(run.output.allclose(&want, 1e-4));
        assert!(run.simulated_s > 0.0);
    }

    #[test]
    fn hand_tuned_workgroup_is_the_efficiency_peak() {
        let best = OclDevice::kernel_efficiency((4, 4), 16);
        for wg in [(1, 1), (2, 2), (8, 8), (16, 16), (4, 2)] {
            for vw in [1usize, 2, 4, 8] {
                if wg == (4, 4) && vw == 16 {
                    continue;
                }
                assert!(
                    OclDevice::kernel_efficiency(wg, vw) <= best,
                    "({wg:?}, {vw}) beats the hand-tuned point"
                );
            }
        }
        assert!((best - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detuned_kernels_take_longer() {
        let geom = Conv2dGeometry::new(2, 8, 8, 3, 3, 1, 1);
        let image = vec![1.0f32; 2 * 64];
        let weights = Tensor::ones([4, geom.patch_len()]);
        let mut dev_good = device();
        let good = dev_good.run_conv2d(&image, &weights, &geom, (4, 4), 16);
        let mut dev_bad = device();
        let bad = dev_bad.run_conv2d(&image, &weights, &geom, (1, 1), 1);
        assert!(bad.simulated_s > good.simulated_s);
        assert!(bad.output.allclose(&good.output, 0.0)); // results identical
    }

    #[test]
    fn clblast_gemm_matches_reference_and_pays_overhead() {
        let mut dev = device();
        let a: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..6).map(|i| (i as f32) * 0.5).collect();
        let ab = dev.write_buffer(&a);
        let bb = dev.write_buffer(&b);
        let before = dev.elapsed_s();
        let cb = dev.launch_gemm_clblast(ab, bb, 2, 3, 2);
        let gemm_cost = dev.elapsed_s() - before;
        assert!(gemm_cost >= dev.gpu.gemm_call_overhead_s);
        let got = dev.read_buffer(cb).to_vec();
        let want = matmul(&Tensor::from_vec([2, 3], a), &Tensor::from_vec([3, 2], b));
        assert_eq!(got, want.data());
    }

    #[test]
    fn small_gemms_run_far_below_peak() {
        let gpu = odroid_xu4().gpu.unwrap();
        let mut dev = OclDevice::new(gpu.clone());
        let k = 64;
        let a = vec![1.0f32; 64 * k];
        let b = vec![1.0f32; k * 1024];
        let ab = dev.write_buffer(&a);
        let bb = dev.write_buffer(&b);
        let before = dev.elapsed_s();
        let _ = dev.launch_gemm_clblast(ab, bb, 64, k, 1024);
        let secs = dev.elapsed_s() - before - gpu.gemm_call_overhead_s - gpu.kernel_launch_s;
        let macs = (64 * k * 1024) as f64;
        let achieved = macs / secs;
        assert!(achieved < 0.05 * gpu.gemm_peak_macs_per_sec);
    }
}
