//! Energy estimation for inference.
//!
//! The paper motivates compression by "memory, compute time, and energy
//! consumption" and leans on its [12] citation that "the bottleneck for
//! inference computation was off-chip DRAM accesses, and that when the
//! memory requirements of a CNN are reduced, the energy consumption ...
//! [is] also reduced" (§I). This module turns that argument into
//! numbers: an event-cost model (pJ per MAC, pJ per DRAM byte, static
//! power over the modelled runtime) evaluated from the same layer
//! descriptors as the timing model, so every experiment can report
//! joules alongside seconds.
//!
//! Event costs follow the well-known Horowitz ISSCC'14 ballpark that the
//! Deep Compression line of work uses: a 32-bit float MAC is a few pJ,
//! while a 32-bit DRAM access costs ~two orders of magnitude more —
//! which is exactly why Table IV's *larger* CSR footprints are an energy
//! problem, not just a capacity one.

use crate::platform::Platform;
use crate::timing::{network_time, SimConfig};
use cnn_stack_nn::memory::layer_weight_bytes;
use cnn_stack_nn::LayerDescriptor;

/// Per-event energy costs of a platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Energy per dense multiply-accumulate, picojoules.
    pub pj_per_mac: f64,
    /// Energy per byte moved to/from DRAM, picojoules.
    pub pj_per_dram_byte: f64,
    /// Static (leakage + uncore) power burned for the whole runtime,
    /// watts.
    pub static_watts: f64,
}

impl EnergyModel {
    /// The Odroid-XU4's A15 cluster: ~28 nm mobile silicon.
    pub fn odroid_xu4() -> Self {
        EnergyModel {
            pj_per_mac: 8.0,
            pj_per_dram_byte: 170.0,
            static_watts: 1.2,
        }
    }

    /// The i7-3820: 32 nm desktop silicon, far higher static floor.
    pub fn intel_i7() -> Self {
        EnergyModel {
            pj_per_mac: 18.0,
            pj_per_dram_byte: 160.0,
            static_watts: 35.0,
        }
    }

    /// The energy model matching a [`Platform`] descriptor by name.
    pub fn for_platform(platform: &Platform) -> Self {
        if platform.name.contains("Odroid") {
            EnergyModel::odroid_xu4()
        } else {
            EnergyModel::intel_i7()
        }
    }
}

/// An energy estimate, decomposed by source.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Compute (MAC) energy, joules.
    pub compute_j: f64,
    /// DRAM traffic energy, joules.
    pub dram_j: f64,
    /// Static energy over the modelled runtime, joules.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.compute_j + self.dram_j + self.static_j
    }

    /// Average power over a runtime, watts.
    pub fn average_watts(&self, runtime_s: f64) -> f64 {
        if runtime_s <= 0.0 {
            0.0
        } else {
            self.total() / runtime_s
        }
    }
}

/// Estimates the energy of one forward pass: MAC events use the
/// *effective* (stored-non-zero) work, DRAM events use activations plus
/// format-dependent weight bytes, and static power integrates over the
/// timing model's runtime for the same configuration.
pub fn network_energy(
    platform: &Platform,
    model: &EnergyModel,
    descs: &[LayerDescriptor],
    cfg: &SimConfig,
) -> EnergyBreakdown {
    let macs: u64 = descs.iter().map(|d| d.effective_macs()).sum();
    let weight_bytes: usize = descs.iter().map(layer_weight_bytes).sum();
    let act_bytes: usize = descs
        .iter()
        .map(|d| (d.input_elems + d.output_elems) * 4)
        .sum();
    let (runtime_s, _) = network_time(platform, descs, cfg);
    EnergyBreakdown {
        compute_j: macs as f64 * model.pj_per_mac * 1e-12,
        dram_j: (weight_bytes + act_bytes) as f64 * model.pj_per_dram_byte * 1e-12,
        static_j: model.static_watts * runtime_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{intel_i7, odroid_xu4};
    use cnn_stack_models::ModelKind;
    use cnn_stack_nn::network::set_network_format;
    use cnn_stack_nn::WeightFormat;

    fn vgg_descs(csr: bool) -> Vec<LayerDescriptor> {
        let mut model = ModelKind::Vgg16.build(10);
        if csr {
            set_network_format(&mut model.network, WeightFormat::Csr);
        }
        model.network.descriptors(&[1, 3, 32, 32])
    }

    #[test]
    fn totals_are_positive_and_decomposed() {
        let platform = odroid_xu4();
        let model = EnergyModel::for_platform(&platform);
        let e = network_energy(&platform, &model, &vgg_descs(false), &SimConfig::cpu(4));
        assert!(e.compute_j > 0.0 && e.dram_j > 0.0 && e.static_j > 0.0);
        assert!((e.total() - (e.compute_j + e.dram_j + e.static_j)).abs() < 1e-12);
        // VGG on the Odroid: single-digit joules per inference is the
        // plausible embedded ballpark.
        assert!(e.total() > 0.05 && e.total() < 20.0, "total {}", e.total());
    }

    #[test]
    fn channel_pruning_saves_energy() {
        let platform = odroid_xu4();
        let em = EnergyModel::for_platform(&platform);
        let plain = network_energy(&platform, &em, &vgg_descs(false), &SimConfig::cpu(8));
        let mut pruned = ModelKind::Vgg16.build(10);
        for g in 0..pruned.plan.group_count() {
            let n = pruned.plan.channels(&pruned.network, g) / 2;
            for _ in 0..n {
                pruned.plan.prune(&mut pruned.network, g, 0);
            }
        }
        let descs = pruned.network.descriptors(&[1, 3, 32, 32]);
        let cp = network_energy(&platform, &em, &descs, &SimConfig::cpu(8));
        assert!(cp.total() < plain.total() * 0.6);
    }

    #[test]
    fn csr_footprint_costs_dram_energy_despite_fewer_macs() {
        // The §I argument inverted: an unpruned CSR model moves *more*
        // bytes (per-filter format overhead), so its DRAM energy rises
        // even though compute energy is unchanged.
        let platform = intel_i7();
        let em = EnergyModel::for_platform(&platform);
        let dense = network_energy(&platform, &em, &vgg_descs(false), &SimConfig::serial());
        let sparse = network_energy(&platform, &em, &vgg_descs(true), &SimConfig::serial());
        assert!(sparse.dram_j > dense.dram_j);
    }

    #[test]
    fn idle_desktop_burns_more_static_energy_than_odroid() {
        let descs = vgg_descs(false);
        let odroid = odroid_xu4();
        let i7 = intel_i7();
        let e_odroid = network_energy(
            &odroid,
            &EnergyModel::odroid_xu4(),
            &descs,
            &SimConfig::cpu(8),
        );
        let e_i7 = network_energy(&i7, &EnergyModel::intel_i7(), &descs, &SimConfig::cpu(4));
        // The i7 finishes faster but its 35 W floor dominates: static
        // energy per inference is still higher than the Odroid's.
        assert!(e_i7.static_j > e_odroid.static_j);
    }

    #[test]
    fn average_power_is_sane() {
        let platform = odroid_xu4();
        let em = EnergyModel::for_platform(&platform);
        let descs = vgg_descs(false);
        let cfg = SimConfig::cpu(8);
        let (runtime, _) = network_time(&platform, &descs, &cfg);
        let e = network_energy(&platform, &em, &descs, &cfg);
        let watts = e.average_watts(runtime);
        assert!(watts > 1.0 && watts < 15.0, "watts {watts}");
        assert_eq!(EnergyBreakdown::default().average_watts(0.0), 0.0);
    }
}
