//! A CLBlast-style tuned GEMM with a CLTune-style auto-tuner.
//!
//! CLBlast exposes a large tuning surface (work-group sizes, register
//! tiling, vector widths, unroll factors — "up to 14 parameters", §IV-D)
//! and ships CLTune to search it. This module reproduces the CPU-
//! meaningful subset of that surface — the [`TileConfig`] tile extents
//! and unroll factor of `cnn-stack-tensor`'s parameterised GEMM — and an
//! auto-tuner that searches it by *measuring real executions*, exactly
//! how CLTune works.

use cnn_stack_tensor::{gemm, TileConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// A GEMM specialised to one tile configuration.
///
/// # Example
///
/// ```
/// use cnn_stack_hwsim::TunedGemm;
/// use cnn_stack_tensor::{TileConfig, Tensor};
///
/// let gemm = TunedGemm::new(TileConfig::new(16, 16, 16, 4));
/// let a = Tensor::ones([4, 8]);
/// let b = Tensor::ones([8, 4]);
/// assert_eq!(gemm.matmul(&a, &b).data()[0], 8.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunedGemm {
    config: TileConfig,
}

impl TunedGemm {
    /// Wraps a tile configuration.
    pub fn new(config: TileConfig) -> Self {
        TunedGemm { config }
    }

    /// The configuration.
    pub fn config(&self) -> TileConfig {
        self.config
    }

    /// Runs `A · B` with this tiling.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not rank-2 with matching inner
    /// dimensions.
    pub fn matmul(
        &self,
        a: &cnn_stack_tensor::Tensor,
        b: &cnn_stack_tensor::Tensor,
    ) -> cnn_stack_tensor::Tensor {
        gemm::matmul_with(a, b, gemm::GemmAlgorithm::Tiled(self.config))
    }
}

/// Result of an auto-tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneResult {
    /// The best configuration found.
    pub best: TileConfig,
    /// Its measured time in seconds (median of the repeats).
    pub best_seconds: f64,
    /// All `(config, seconds)` measurements, in evaluation order.
    pub evaluated: Vec<(TileConfig, f64)>,
}

/// The candidate grid the tuner samples (CLTune-style exhaustive grid,
/// randomly ordered).
fn candidate_grid() -> Vec<TileConfig> {
    let mut out = Vec::new();
    for &tm in &[8usize, 16, 32, 64, 128] {
        for &tn in &[8usize, 16, 32, 64, 128] {
            for &tk in &[8usize, 16, 32, 64] {
                for &u in &[1usize, 2, 4, 8] {
                    out.push(TileConfig::new(tm, tn, tk, u));
                }
            }
        }
    }
    out
}

/// Auto-tunes the tiled GEMM for an `m × k · k × n` product by measuring
/// up to `budget` random candidates (`repeats` timed runs each, median
/// taken). Deterministic for a given `seed` up to timer noise.
///
/// # Panics
///
/// Panics if any dimension, `budget` or `repeats` is zero.
pub fn tune_gemm(
    m: usize,
    k: usize,
    n: usize,
    budget: usize,
    repeats: usize,
    seed: u64,
) -> TuneResult {
    assert!(m > 0 && k > 0 && n > 0, "dimensions must be non-zero");
    assert!(
        budget > 0 && repeats > 0,
        "budget and repeats must be non-zero"
    );
    let a = cnn_stack_tensor::Tensor::from_fn([m, k], |i| ((i % 17) as f32) * 0.1 - 0.8);
    let b = cnn_stack_tensor::Tensor::from_fn([k, n], |i| ((i % 13) as f32) * 0.1 - 0.6);

    let mut grid = candidate_grid();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    grid.shuffle(&mut rng);
    grid.truncate(budget);

    let mut evaluated = Vec::with_capacity(grid.len());
    for cfg in grid {
        let mut times = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let start = Instant::now();
            let c = gemm::matmul_with(&a, &b, gemm::GemmAlgorithm::Tiled(cfg));
            // Keep the result alive so the computation cannot be elided.
            std::hint::black_box(c.data()[0]);
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(|x, y| x.partial_cmp(y).expect("finite times"));
        evaluated.push((cfg, times[times.len() / 2]));
    }
    let (best, best_seconds) = evaluated
        .iter()
        .cloned()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
        .expect("budget > 0");
    TuneResult {
        best,
        best_seconds,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_tensor::{matmul, Tensor};

    #[test]
    fn tuned_gemm_is_correct_for_every_grid_config() {
        let a = Tensor::from_fn([33, 47], |i| (i as f32).sin());
        let b = Tensor::from_fn([47, 29], |i| (i as f32).cos());
        let want = matmul(&a, &b);
        for cfg in candidate_grid().into_iter().step_by(37) {
            let got = TunedGemm::new(cfg).matmul(&a, &b);
            assert!(want.allclose(&got, 1e-3), "config {cfg:?} wrong");
        }
    }

    #[test]
    fn tuner_returns_budgeted_measurements() {
        let r = tune_gemm(48, 48, 48, 6, 1, 0);
        assert_eq!(r.evaluated.len(), 6);
        assert!(r.best_seconds > 0.0);
        // The best is genuinely the minimum of the evaluations.
        let min = r
            .evaluated
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(r.best_seconds, min);
    }

    #[test]
    fn tuner_is_deterministic_in_candidate_order() {
        let r1 = tune_gemm(32, 32, 32, 5, 1, 9);
        let r2 = tune_gemm(32, 32, 32, 5, 1, 9);
        let c1: Vec<_> = r1.evaluated.iter().map(|(c, _)| *c).collect();
        let c2: Vec<_> = r2.evaluated.iter().map(|(c, _)| *c).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_rejected() {
        let _ = tune_gemm(8, 8, 8, 0, 1, 0);
    }
}
