//! Parametric platform descriptors for the paper's two machines (§IV-E).
//!
//! Parameters are *effective* rates for the paper's plain C kernels, not
//! peak datasheet numbers: they were calibrated so that the model's
//! absolute times land in the same range as the paper's Fig. 4 curves
//! (e.g. single-thread dense VGG-16 ≈ 4 s on the Odroid's A15 and
//! ≈ 1.3 s on the i7) and all relative effects follow from the model
//! structure rather than per-experiment fudging.

/// A homogeneous group of CPU cores.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuCluster {
    /// Cluster name, e.g. `"Cortex-A15"`.
    pub name: String,
    /// Core count.
    pub cores: usize,
    /// Effective dense multiply-accumulates per second per core for the
    /// paper's direct-convolution C code.
    pub macs_per_sec: f64,
}

/// A GPU as the paper's OpenCL backend sees it.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuDevice {
    /// Device name, e.g. `"Mali-T628 MP6"`.
    pub name: String,
    /// Effective MACs/s achieved by the paper's hand-tuned OpenCL kernels
    /// (4×4 work-groups, 16-wide vectors).
    pub hand_tuned_macs_per_sec: f64,
    /// Peak MACs/s a perfectly tuned large GEMM can reach (CLBlast's
    /// asymptote).
    pub gemm_peak_macs_per_sec: f64,
    /// GEMM efficiency half-saturation point: the per-call MAC count at
    /// which CLBlast reaches half its peak rate. Small CIFAR matrices sit
    /// far below this — the cause of Fig. 6's CLBlast collapse — while
    /// 224×224 ImageNet GEMMs sit above it (§V-F).
    pub gemm_half_saturation_macs: f64,
    /// Utilisation floor for CLBlast GEMM calls: even a tiny GEMM keeps a
    /// few compute units busy, so efficiency never falls below this.
    pub gemm_min_utilisation: f64,
    /// Host↔device buffer bandwidth, bytes/s.
    pub transfer_bytes_per_sec: f64,
    /// Fixed cost per kernel launch, seconds.
    pub kernel_launch_s: f64,
    /// Extra fixed cost per CLBlast GEMM call (library dispatch, padding,
    /// layout checks), seconds.
    pub gemm_call_overhead_s: f64,
}

/// A complete platform: CPU clusters, memory system, threading costs and
/// (optionally) a GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Platform name as the paper prints it.
    pub name: String,
    /// CPU clusters, fastest first (threads are assigned in this order,
    /// which is how a big.LITTLE governor places compute-bound work).
    pub clusters: Vec<CpuCluster>,
    /// Effective memory bandwidth for streaming activations, bytes/s.
    pub mem_bytes_per_sec: f64,
    /// Memory-system contention coefficient. Parallel efficiency of a
    /// layer with arithmetic intensity `I` (MACs/byte) is
    /// `1 / (1 + mem_contention·(T-1)·(intensity_ref/I)²)`: low-intensity
    /// layers collapse under threading (shared-bus contention), high-
    /// intensity layers scale. Also used to derate streaming bandwidth
    /// via [`Platform::effective_bandwidth`].
    pub mem_contention: f64,
    /// OpenMP fork/join cost per thread per parallel region, seconds.
    pub thread_spawn_s: f64,
    /// Cost of one dynamic-schedule chunk dispatch, seconds.
    pub dispatch_s: f64,
    /// Scheduler-contention growth per extra thread (atomic counter
    /// ping-pong): dispatch cost scales by `1 + contention·(T-1)`.
    pub sched_contention: f64,
    /// Parallel thrashing floor: even a hopelessly memory-bound layer is
    /// at worst `1 + parallel_thrash·(T-1)` times its serial time (the
    /// team degenerates to serialised bus access, it does not livelock).
    pub parallel_thrash: f64,
    /// Per-nonzero cost multiplier of the CSR kernels relative to one
    /// dense MAC (index decode + irregular gather; §V-D). The effective
    /// sparse work is `macs · min(sparse_penalty · density,
    /// sparse_saturation)`: per-nonzero costs dominate at high sparsity,
    /// while at moderate sparsity the per-tap plane sweeps saturate at a
    /// small constant factor over dense — which is why the paper's CSR
    /// models are never faster than dense until extreme sparsity.
    pub sparse_penalty: f64,
    /// Saturation of the sparse work multiplier (see `sparse_penalty`).
    pub sparse_saturation: f64,
    /// Arithmetic-intensity reference (MACs per byte): layers below this
    /// intensity lose parallel efficiency to memory contention as
    /// `1 / (1 + mem_contention·(T-1)·intensity_ref/intensity)` — the
    /// mechanism behind MobileNet's non-scaling (§V-D).
    pub intensity_ref: f64,
    /// GPU, if the platform has one the paper uses.
    pub gpu: Option<GpuDevice>,
    /// Installed RAM. Bounds the activation arena a deployed plan may
    /// claim — see [`Platform::arena_budget_bytes`].
    pub ram_bytes: u64,
}

impl Platform {
    /// Total cores.
    pub fn max_threads(&self) -> usize {
        self.clusters.iter().map(|c| c.cores).sum()
    }

    /// Aggregate dense MAC rate of the `threads` fastest cores.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn aggregate_rate(&self, threads: usize) -> f64 {
        assert!(threads > 0, "at least one thread required");
        let mut remaining = threads;
        let mut rate = 0.0;
        for cluster in &self.clusters {
            let used = remaining.min(cluster.cores);
            rate += used as f64 * cluster.macs_per_sec;
            remaining -= used;
            if remaining == 0 {
                break;
            }
        }
        // Threads beyond the physical cores add no rate (oversubscribed).
        rate
    }

    /// Rate of the single fastest core.
    pub fn single_core_rate(&self) -> f64 {
        self.clusters
            .first()
            .map(|c| c.macs_per_sec)
            .expect("platform has at least one cluster")
    }

    /// Effective memory bandwidth with `threads` active.
    pub fn effective_bandwidth(&self, threads: usize) -> f64 {
        self.mem_bytes_per_sec / (1.0 + self.mem_contention * (threads.saturating_sub(1)) as f64)
    }

    /// Default activation-arena budget for plans deployed on this
    /// platform: a quarter of installed RAM, leaving the rest for
    /// weights, the OS, and whatever else shares the board. The stack
    /// runner passes this as `ExecConfig::plan_budget` unless the
    /// experiment overrides it.
    pub fn arena_budget_bytes(&self) -> usize {
        (self.ram_bytes / 4) as usize
    }

    /// The thread counts the paper sweeps on this platform
    /// (Odroid: 1/2/4/8; i7: 1/2/4).
    pub fn paper_thread_counts(&self) -> Vec<usize> {
        let max = self.max_threads();
        [1usize, 2, 4, 8]
            .iter()
            .copied()
            .filter(|&t| t <= max)
            .collect()
    }
}

/// The Odroid-XU4: Cortex-A15 (4 × 2.0 GHz) + Cortex-A7 (4 × 1.4 GHz)
/// big.LITTLE, 2 GB shared LPDDR3, Mali-T628 MP6 (§IV-E.1).
pub fn odroid_xu4() -> Platform {
    Platform {
        name: "Odroid-XU4".into(),
        clusters: vec![
            CpuCluster {
                name: "Cortex-A15".into(),
                cores: 4,
                macs_per_sec: 80e6,
            },
            CpuCluster {
                name: "Cortex-A7".into(),
                cores: 4,
                macs_per_sec: 33e6,
            },
        ],
        mem_bytes_per_sec: 0.8e9,
        mem_contention: 0.03,
        thread_spawn_s: 1.0e-3,
        dispatch_s: 1.6e-6,
        sched_contention: 0.30,
        sparse_penalty: 10.0,
        sparse_saturation: 1.25,
        parallel_thrash: 0.03,
        intensity_ref: 8.0,
        gpu: Some(GpuDevice {
            name: "Mali-T628 MP6".into(),
            hand_tuned_macs_per_sec: 0.55e9,
            gemm_peak_macs_per_sec: 3.2e9,
            gemm_half_saturation_macs: 2.0e9,
            gemm_min_utilisation: 0.01,
            transfer_bytes_per_sec: 1.2e9,
            kernel_launch_s: 60e-6,
            gemm_call_overhead_s: 4.0e-3,
        }),
        ram_bytes: 2 * 1024 * 1024 * 1024,
    }
}

/// The Intel Core i7-3820 (4 cores @ 3.6 GHz, 16 GB DDR2) desktop
/// (§IV-E.2). No OpenCL GPU is used on this platform in the paper.
pub fn intel_i7() -> Platform {
    Platform {
        name: "Intel Core i7".into(),
        clusters: vec![CpuCluster {
            name: "i7-3820".into(),
            cores: 4,
            macs_per_sec: 260e6,
        }],
        mem_bytes_per_sec: 4.0e9,
        mem_contention: 0.13,
        thread_spawn_s: 0.9e-3,
        dispatch_s: 0.35e-6,
        sched_contention: 0.12,
        sparse_penalty: 10.0,
        sparse_saturation: 1.20,
        parallel_thrash: 0.03,
        intensity_ref: 8.0,
        gpu: None,
        ram_bytes: 16 * 1024 * 1024 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odroid_has_eight_heterogeneous_cores() {
        let p = odroid_xu4();
        assert_eq!(p.max_threads(), 8);
        assert_eq!(p.paper_thread_counts(), vec![1, 2, 4, 8]);
        // big cores are listed first and are faster.
        assert!(p.clusters[0].macs_per_sec > p.clusters[1].macs_per_sec);
    }

    #[test]
    fn i7_has_four_homogeneous_cores() {
        let p = intel_i7();
        assert_eq!(p.max_threads(), 4);
        assert_eq!(p.paper_thread_counts(), vec![1, 2, 4]);
        assert!(p.gpu.is_none());
    }

    #[test]
    fn aggregate_rate_uses_fastest_cores_first() {
        let p = odroid_xu4();
        assert_eq!(p.aggregate_rate(1), 80e6);
        assert_eq!(p.aggregate_rate(4), 320e6);
        assert_eq!(p.aggregate_rate(8), 320e6 + 4.0 * 33e6);
        // Oversubscription adds nothing.
        assert_eq!(p.aggregate_rate(16), p.aggregate_rate(8));
    }

    #[test]
    fn bandwidth_contention_reduces_effective_bw() {
        let p = odroid_xu4();
        assert!(p.effective_bandwidth(8) < p.effective_bandwidth(1));
        assert_eq!(p.effective_bandwidth(1), p.mem_bytes_per_sec);
    }

    #[test]
    fn i7_is_faster_per_core_than_odroid() {
        assert!(intel_i7().single_core_rate() > odroid_xu4().single_core_rate() * 2.0);
    }

    #[test]
    fn arena_budget_is_a_quarter_of_ram() {
        // 2 GB board → 512 MB arena; 16 GB desktop → 4 GB arena.
        assert_eq!(odroid_xu4().arena_budget_bytes(), 512 << 20);
        assert_eq!(intel_i7().arena_budget_bytes(), 4 << 30);
    }

    #[test]
    fn debug_representation_is_descriptive() {
        let repr = format!("{:?}", odroid_xu4());
        assert!(repr.contains("Mali") && repr.contains("Cortex-A15"));
    }
}
