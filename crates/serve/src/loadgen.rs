//! Open-loop synthetic load generation.
//!
//! Open-loop means arrivals follow a fixed schedule regardless of how
//! the server keeps up — the generator never waits for a response
//! before submitting the next request, so an overloaded server shows up
//! as shed requests and climbing latency instead of (closed-loop style)
//! silently throttled offered load. This is the traffic model behind
//! `BENCH_serve.json`'s QPS/latency numbers.

use crate::server::Server;
use crate::ticket::{Outcome, ShedReason, Ticket};
use cnn_stack_tensor::Tensor;
use std::time::{Duration, Instant};

/// One open-loop run: fixed-rate arrivals for a fixed request count.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Offered arrival rate, requests per second.
    pub qps: f64,
    /// Total requests to submit.
    pub requests: usize,
    /// Per-request deadline budget; `None` uses the server default.
    pub deadline: Option<Duration>,
}

/// What an open-loop run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The offered rate the generator was asked for.
    pub offered_qps: f64,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed at admission (queue full).
    pub shed_queue_full: usize,
    /// Requests shed because their deadline expired in the queue.
    pub shed_deadline: usize,
    /// Requests that resolved to [`Outcome::Failed`].
    pub failed: usize,
    /// Fraction of submitted requests that did not complete within the
    /// deadline: every shed (queue-full or expired — a shed request
    /// never completes) plus served-past-deadline.
    pub deadline_miss_rate: f64,
    /// Median served latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile served latency, milliseconds.
    pub p99_ms: f64,
    /// Served requests per second of wall time (first submit to last
    /// response).
    pub served_qps: f64,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Mean co-batched request count over served requests.
    pub mean_batch: f64,
}

/// Latency percentile (nearest-rank) over served requests, in ms.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Drives `server` with `spec`'s open-loop schedule, building request
/// `i`'s input via `make_input(i)`, and waits for every outcome.
///
/// # Panics
///
/// Panics if a submission is rejected for shape mismatch — the
/// generator's inputs are a caller contract, not a load condition.
pub fn run_open_loop(
    server: &Server,
    spec: &LoadSpec,
    make_input: impl Fn(usize) -> Tensor,
) -> LoadReport {
    assert!(spec.qps > 0.0, "offered load must be positive");
    let interval = Duration::from_secs_f64(1.0 / spec.qps);
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(spec.requests);
    for i in 0..spec.requests {
        // Fixed schedule: sleep to the i-th arrival instant, never
        // to "interval after the previous submit returned".
        let due = interval * i as u32;
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        let input = make_input(i);
        let ticket = match spec.deadline {
            Some(d) => server.submit_with_deadline(input, d),
            None => server.submit(input),
        }
        .expect("load generator submitted a mis-shaped input");
        tickets.push(ticket);
    }

    let mut served = 0usize;
    let mut shed_queue_full = 0usize;
    let mut shed_deadline = 0usize;
    let mut failed = 0usize;
    let mut late = 0usize;
    let mut latencies: Vec<Duration> = Vec::new();
    let mut batch_sum = 0usize;
    for ticket in tickets {
        match ticket.wait().outcome {
            Outcome::Served(s) => {
                served += 1;
                batch_sum += s.batch_size;
                if spec.deadline.is_some_and(|d| s.latency > d) {
                    late += 1;
                }
                latencies.push(s.latency);
            }
            Outcome::Shed(ShedReason::QueueFull) => shed_queue_full += 1,
            Outcome::Shed(ShedReason::DeadlineExpired) => shed_deadline += 1,
            Outcome::Shed(ShedReason::ShuttingDown) => failed += 1,
            Outcome::Failed(_) => failed += 1,
        }
    }
    let wall = start.elapsed();
    latencies.sort_unstable();
    LoadReport {
        offered_qps: spec.qps,
        submitted: spec.requests,
        served,
        shed_queue_full,
        shed_deadline,
        failed,
        deadline_miss_rate: (shed_queue_full + shed_deadline + late) as f64
            / spec.requests.max(1) as f64,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        served_qps: served as f64 / wall.as_secs_f64(),
        wall_ms: wall.as_secs_f64() * 1e3,
        mean_batch: if served > 0 {
            batch_sum as f64 / served as f64
        } else {
            0.0
        },
    }
}
