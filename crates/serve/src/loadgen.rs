//! Open-loop synthetic load generation.
//!
//! Open-loop means arrivals follow a fixed schedule regardless of how
//! the server keeps up — the generator never waits for a response
//! before submitting the next request, so an overloaded server shows up
//! as shed requests and climbing latency instead of (closed-loop style)
//! silently throttled offered load. This is the traffic model behind
//! `BENCH_serve.json`'s QPS/latency numbers.
//!
//! Optionally ([`LoadSpec::retry`]), queue-full sheds are retried with
//! jittered exponential backoff — modelling a client that backs off
//! under admission-control pushback instead of giving up. Retries are
//! a bounded, deliberate departure from pure open-loop arrivals and
//! are reported separately in the [`LoadReport`].

use crate::server::Server;
use crate::ticket::{Outcome, ShedReason, Ticket};
use cnn_stack_tensor::Tensor;
use std::time::{Duration, Instant};

/// Bounded retry-with-backoff for queue-full sheds.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Resubmissions allowed per request beyond the first attempt.
    pub max_retries: u32,
    /// Wait before the first retry; doubles on each further attempt.
    pub backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each wait is stretched by up to
    /// this fraction, using a deterministic per-(request, attempt)
    /// hash so runs are reproducible.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The jittered wait before retry number `attempt` (1-based) of
    /// request `i`: `backoff × 2^(attempt-1) × (1 + jitter × u)` with
    /// deterministic `u ∈ [0, 1)`.
    fn wait(&self, i: usize, attempt: u32) -> Duration {
        let hash = (i as u64)
            .wrapping_mul(2654435761)
            .wrapping_add((attempt as u64).wrapping_mul(40503))
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (hash >> 33) as f64 / (1u64 << 31) as f64;
        let exp = 1u64 << (attempt.saturating_sub(1)).min(20);
        self.backoff
            .mul_f64(exp as f64 * (1.0 + self.jitter.clamp(0.0, 1.0) * u))
    }
}

/// One open-loop run: fixed-rate arrivals for a fixed request count.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Offered arrival rate, requests per second.
    pub qps: f64,
    /// Total requests to submit.
    pub requests: usize,
    /// Per-request deadline budget; `None` uses the server default.
    pub deadline: Option<Duration>,
    /// Retry queue-full sheds with jittered backoff; `None` (pure
    /// open-loop) takes the shed as the request's final outcome.
    pub retry: Option<RetryPolicy>,
}

/// What an open-loop run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The offered rate the generator was asked for.
    pub offered_qps: f64,
    /// Requests submitted (excluding retry resubmissions).
    pub submitted: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed at admission (queue full) as their final outcome.
    pub shed_queue_full: usize,
    /// Requests shed because their deadline expired in the queue.
    pub shed_deadline: usize,
    /// Requests that resolved to [`Outcome::Failed`].
    pub failed: usize,
    /// Queue-full resubmissions performed under [`LoadSpec::retry`].
    pub retries: usize,
    /// Requests still shed queue-full after exhausting their retries.
    pub retry_exhausted: usize,
    /// Fraction of submitted requests that did not complete within the
    /// deadline: every shed (queue-full or expired — a shed request
    /// never completes) plus served-past-deadline.
    pub deadline_miss_rate: f64,
    /// Median served latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile served latency, milliseconds.
    pub p99_ms: f64,
    /// Served requests per second of wall time (first submit to last
    /// response).
    pub served_qps: f64,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Mean co-batched request count over served requests.
    pub mean_batch: f64,
}

/// A request's state at the end of the submission loop.
enum Slot {
    Pending(Ticket),
    Done(Outcome),
}

/// Latency percentile (nearest-rank) over served requests, in ms.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Drives `server` with `spec`'s open-loop schedule, building request
/// `i`'s input via `make_input(i)`, and waits for every outcome.
///
/// # Panics
///
/// Panics if a submission is rejected for shape mismatch — the
/// generator's inputs are a caller contract, not a load condition.
pub fn run_open_loop(
    server: &Server,
    spec: &LoadSpec,
    make_input: impl Fn(usize) -> Tensor,
) -> LoadReport {
    assert!(spec.qps > 0.0, "offered load must be positive");
    let interval = Duration::from_secs_f64(1.0 / spec.qps);
    let start = Instant::now();
    let mut retries = 0usize;
    let mut retry_exhausted = 0usize;
    let mut slots: Vec<Slot> = Vec::with_capacity(spec.requests);
    for i in 0..spec.requests {
        // Fixed schedule: sleep to the i-th arrival instant, never
        // to "interval after the previous submit returned".
        let due = interval * i as u32;
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        let mut attempt = 0u32;
        let slot = loop {
            let input = make_input(i);
            let ticket = match spec.deadline {
                Some(d) => server.submit_with_deadline(input, d),
                None => server.submit(input),
            }
            .expect("load generator submitted a mis-shaped input");
            let Some(policy) = &spec.retry else {
                break Slot::Pending(ticket);
            };
            // A queue-full shed resolves synchronously at submit, so
            // one poll is enough to see it.
            match ticket.try_wait() {
                Some(resp) if matches!(resp.outcome, Outcome::Shed(ShedReason::QueueFull)) => {
                    if attempt >= policy.max_retries {
                        retry_exhausted += 1;
                        break Slot::Done(resp.outcome);
                    }
                    attempt += 1;
                    retries += 1;
                    std::thread::sleep(policy.wait(i, attempt));
                }
                Some(resp) => break Slot::Done(resp.outcome),
                None => break Slot::Pending(ticket),
            }
        };
        slots.push(slot);
    }

    let mut served = 0usize;
    let mut shed_queue_full = 0usize;
    let mut shed_deadline = 0usize;
    let mut failed = 0usize;
    let mut late = 0usize;
    let mut latencies: Vec<Duration> = Vec::new();
    let mut batch_sum = 0usize;
    for slot in slots {
        let outcome = match slot {
            Slot::Pending(ticket) => ticket.wait().outcome,
            Slot::Done(outcome) => outcome,
        };
        match outcome {
            Outcome::Served(s) => {
                served += 1;
                batch_sum += s.batch_size;
                if spec.deadline.is_some_and(|d| s.latency > d) {
                    late += 1;
                }
                latencies.push(s.latency);
            }
            Outcome::Shed(ShedReason::QueueFull) => shed_queue_full += 1,
            Outcome::Shed(ShedReason::DeadlineExpired) => shed_deadline += 1,
            Outcome::Shed(ShedReason::ShuttingDown) => failed += 1,
            Outcome::Failed(_) => failed += 1,
        }
    }
    let wall = start.elapsed();
    latencies.sort_unstable();
    LoadReport {
        offered_qps: spec.qps,
        submitted: spec.requests,
        served,
        shed_queue_full,
        shed_deadline,
        failed,
        retries,
        retry_exhausted,
        deadline_miss_rate: (shed_queue_full + shed_deadline + late) as f64
            / spec.requests.max(1) as f64,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        served_qps: served as f64 / wall.as_secs_f64(),
        wall_ms: wall.as_secs_f64() * 1e3,
        mean_batch: if served > 0 {
            batch_sum as f64 / served as f64
        } else {
            0.0
        },
    }
}
