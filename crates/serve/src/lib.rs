//! Multi-tenant CNN inference serving: a bounded request queue feeding
//! a dynamic batcher that coalesces concurrent requests into one
//! batched session run.
//!
//! The paper's batching result (throughput grows with batch size until
//! cache pressure bites) only pays off in a *serving* context if
//! independent requests can actually share a batch. This crate is that
//! missing layer:
//!
//! ```text
//!   submit() ──try_send──▶ [bounded queue] ──▶ Batcher ──▶ SessionLadder
//!      │   full? Shed(QueueFull)   │  max_batch / max_delay │  smallest rung ≥ n
//!      ▼                           ▼                        ▼
//!   Ticket ◀──────── Response {Served | Shed | Failed} ◀────┘
//! ```
//!
//! * **Admission control** — the queue is a `sync_channel` of
//!   [`ServeConfig::queue_depth`] slots; a full queue sheds at submit
//!   time with [`ShedReason::QueueFull`] instead of queueing unbounded
//!   work.
//! * **Dynamic batching** — a worker takes one request, then holds the
//!   batch open up to [`BatchPolicy::max_delay`] (or until
//!   [`BatchPolicy::max_batch`]) so concurrent submitters share one
//!   forward pass. `max_batch == 1` never opens a window, so
//!   single-request serving pays no added latency.
//! * **Deadline shedding** — a request still queued past its deadline
//!   is shed ([`ShedReason::DeadlineExpired`]) when its batch is
//!   assembled, rather than burning batch capacity on an answer nobody
//!   is waiting for.
//! * **Compile once, serve many** — each worker owns a quarter-stepped
//!   ladder of pre-warmed [`cnn_stack_nn::InferenceSession`]s; all
//!   sessions in the pool share one set of `Arc`'d prepacked weight
//!   panels, so replica count scales activation memory, not weights.
//! * **Typed outcomes** — every accepted [`Ticket`] resolves to exactly
//!   one [`Outcome`]; shutdown resolves stragglers to
//!   [`ShedReason::ShuttingDown`]. [`Ticket::wait`] never hangs.
//! * **Observability** — queue depth, wait, occupancy, latency, and
//!   shed counters land in the `serve.*` instruments of
//!   [`cnn_stack_obs`]; [`Server::health`] aggregates per-worker
//!   [`WorkerHealth`] (including engine guard/demotion reports).
//!
//! # Example
//!
//! ```
//! use cnn_stack_serve::{Outcome, ServeConfig, Server};
//! use cnn_stack_tensor::Tensor;
//!
//! let cfg = ServeConfig::builder([3, 32, 32]).max_batch(4).build().unwrap();
//! let server = Server::start(cfg, || {
//!     cnn_stack_models::mobilenet_width(10, 0.25).network
//! })
//! .unwrap();
//! let ticket = server.submit(Tensor::zeros(vec![3, 32, 32])).unwrap();
//! match ticket.wait().outcome {
//!     Outcome::Served(s) => assert!(s.output.len() > 0),
//!     other => panic!("not served: {other:?}"),
//! }
//! let health = server.shutdown();
//! assert_eq!(health.served, 1);
//! ```
//!
//! Deterministic tests replace the wall clock with a [`ManualClock`]
//! and run the server in manual-pump mode (`workers(0)` +
//! [`Server::pump`]); see `tests/serve_batching.rs` at the workspace
//! root.

mod batcher;
mod clock;
mod config;
mod error;
mod health;
mod loadgen;
mod pool;
mod server;
mod ticket;

pub use batcher::BatchPolicy;
pub use clock::{Clock, ManualClock, MonotonicClock, WaitError};
pub use config::{ServeConfig, ServeConfigBuilder};
pub use error::ServeError;
pub use health::{ServerHealth, WorkerHealth};
pub use loadgen::{run_open_loop, LoadReport, LoadSpec};
pub use server::Server;
pub use ticket::{Outcome, Response, Served, ShedReason, Ticket};
