//! Multi-tenant CNN inference serving: a bounded request queue feeding
//! a dynamic batcher that coalesces concurrent requests into one
//! batched session run, under a self-healing supervision runtime.
//!
//! The paper's batching result (throughput grows with batch size until
//! cache pressure bites) only pays off in a *serving* context if
//! independent requests can actually share a batch. This crate is that
//! missing layer:
//!
//! ```text
//!   submit() ──try_send──▶ [bounded queue] ──▶ Batcher ──▶ SessionLadder
//!      │   full? Shed(QueueFull)   │  max_batch / max_delay │  smallest rung ≥ n
//!      ▼                           ▼                        ▼
//!   Ticket ◀──────── Response {Served | Shed | Failed} ◀────┘
//!                                        ▲
//!          supervisor / watchdog / breaker keep this edge alive
//! ```
//!
//! * **Admission control** — the queue is a `sync_channel` of
//!   [`ServeConfig::queue_depth`] slots; a full queue sheds at submit
//!   time with [`ShedReason::QueueFull`] instead of queueing unbounded
//!   work.
//! * **Dynamic batching** — a worker takes one request, then holds the
//!   batch open up to [`BatchPolicy::max_delay`] (or until
//!   [`BatchPolicy::max_batch`]) so concurrent submitters share one
//!   forward pass. `max_batch == 1` never opens a window, so
//!   single-request serving pays no added latency.
//! * **Deadline shedding** — a request still queued past its deadline
//!   is shed ([`ShedReason::DeadlineExpired`]) when its batch is
//!   assembled, rather than burning batch capacity on an answer nobody
//!   is waiting for.
//! * **Compile once, serve many** — each worker owns a quarter-stepped
//!   ladder of pre-warmed [`cnn_stack_nn::InferenceSession`]s; all
//!   sessions in the pool share one set of `Arc`'d prepacked weight
//!   panels, so replica count scales activation memory, not weights.
//! * **Typed outcomes** — every accepted [`Ticket`] resolves to exactly
//!   one [`Outcome`]; shutdown resolves stragglers to
//!   [`ShedReason::ShuttingDown`]. [`Ticket::wait`] never hangs.
//! * **Worker supervision** — a panicking worker's batch resolves as
//!   typed [`FailureCause::WorkerCrashed`] failures (never lost
//!   tickets); the worker respawns with a fresh session ladder rebuilt
//!   from the shared prepack, under capped exponential backoff
//!   ([`SupervisionPolicy`]).
//! * **Hung-batch watchdog** — a batch running past a configurable
//!   multiple of its rung's expected latency gets its worker deposed:
//!   in-flight tickets resolve as [`FailureCause::BatchHung`] and a
//!   replacement takes over the queue.
//! * **Brownout circuit breaker** — optionally
//!   ([`ServeConfigBuilder::breaker`]), a sliding window over
//!   deadline-miss/failure rate drives Closed → Open → HalfOpen; while
//!   open, workers swap onto a pre-compiled *degraded* plan ladder
//!   (throughput over fidelity: forced im2col+packed, fused ReLU,
//!   guards off) instead of shedding, then recover through a clean
//!   half-open probe window ([`BreakerPolicy`]).
//! * **Observability** — queue depth, wait, occupancy, latency, shed,
//!   crash/respawn/hang and breaker counters land in the `serve.*`
//!   instruments of [`cnn_stack_obs`]; [`Server::health`] aggregates
//!   per-worker [`WorkerHealth`] (including engine guard/demotion
//!   reports).
//!
//! # Example
//!
//! ```
//! use cnn_stack_serve::{Outcome, ServeConfig, Server};
//! use cnn_stack_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ServeConfig::builder([3, 32, 32]).max_batch(4).build()?;
//! let server = Server::start(cfg, || {
//!     cnn_stack_models::mobilenet_width(10, 0.25).network
//! })?;
//! let ticket = server.submit(Tensor::zeros(vec![3, 32, 32]))?;
//! match ticket.wait().outcome {
//!     Outcome::Served(s) => assert!(s.output.len() > 0),
//!     other => panic!("not served: {other:?}"),
//! }
//! let health = server.shutdown();
//! assert_eq!(health.served, 1);
//! # Ok(())
//! # }
//! ```
//!
//! Deterministic tests replace the wall clock with a [`ManualClock`]
//! and run the server in manual-pump mode (`workers(0)` +
//! [`Server::pump`], with [`Server::supervise`] driving the watchdog);
//! see `tests/serve_batching.rs` and `tests/serve_supervision.rs` at
//! the workspace root.

mod batcher;
mod breaker;
mod clock;
mod config;
mod error;
mod health;
mod loadgen;
mod pool;
mod server;
mod supervisor;
mod ticket;

pub use batcher::BatchPolicy;
pub use breaker::{BreakerPolicy, BreakerSnapshot, BreakerState};
pub use clock::{Clock, ManualClock, MonotonicClock, WaitError};
pub use config::{ServeConfig, ServeConfigBuilder};
pub use error::ServeError;
pub use health::{ServerHealth, WorkerHealth};
pub use loadgen::{run_open_loop, LoadReport, LoadSpec, RetryPolicy};
pub use server::Server;
pub use supervisor::SupervisionPolicy;
pub use ticket::{FailureCause, Outcome, Response, Served, ShedReason, Ticket};
