//! Serving-layer errors.

use std::fmt;

/// Why the server could not be configured, built, or submitted to.
#[derive(Debug)]
pub enum ServeError {
    /// A configuration knob was out of range (message names it).
    InvalidConfig(String),
    /// Plan compilation or session construction failed.
    Engine(cnn_stack_nn::Error),
    /// A submitted input did not match the configured request shape.
    ShapeMismatch {
        /// The shape the server was built for.
        want: Vec<usize>,
        /// The shape that arrived.
        got: Vec<usize>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::ShapeMismatch { want, got } => {
                write!(f, "request shape {got:?} does not match served {want:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<cnn_stack_nn::Error> for ServeError {
    fn from(e: cnn_stack_nn::Error) -> Self {
        ServeError::Engine(e)
    }
}
