//! Worker supervision primitives: the per-worker liveness slot shared
//! between a batch worker, the hung-batch watchdog, and the respawn
//! path.
//!
//! The design splits a worker into two halves:
//!
//! * the **thread** (or the manual pump) — owns the session ladders,
//!   runs batches, and can die (panic) or wedge (hang);
//! * the **slot** ([`WorkerSlot`]) — an `Arc`'d bookkeeping record
//!   that *outlives* the thread: serving counters, the in-flight
//!   ticket registry, a liveness deadline, and a generation number.
//!
//! Because the slot holds a clone of every in-flight request's reply
//! sender, a dead or hung worker's tickets can always be resolved as
//! typed [`Outcome::Failed`](crate::Outcome::Failed) outcomes by
//! whoever notices — the worker's own panic handler or the watchdog —
//! instead of being dropped on the floor as spurious `ShuttingDown`
//! sheds. The generation number lets the watchdog *depose* a wedged
//! worker: the old thread discovers its generation is stale and exits
//! without responding, while a replacement thread (same slot, new
//! generation) takes over the queue.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use cnn_stack_nn::HealthReport;

use crate::health::WorkerHealth;
use crate::ticket::{FailureCause, Outcome, Request, Response};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Worker panics are *expected* under fault injection; letting poison
/// propagate would turn one injected crash into a panic cascade across
/// every other worker sharing the batcher. All serve-crate state
/// guarded this way is valid at every await-free lock release point,
/// so adopting a poisoned value is safe.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Sentinel for "no batch in flight" in [`WorkerSlot::busy_until_ns`].
const IDLE: u64 = u64::MAX;

/// Tuning for worker supervision: hang detection and crash-loop
/// backoff.
#[derive(Clone, Copy, Debug)]
pub struct SupervisionPolicy {
    /// A batch is declared hung once it has been running longer than
    /// `hang_multiplier ×` the rung's expected latency (measured at
    /// pre-warm), floored by [`hang_floor`](Self::hang_floor).
    pub hang_multiplier: f64,
    /// Minimum hang timeout. Keeps a near-zero expected latency (e.g.
    /// under `ManualClock`, whose pre-warm takes zero simulated time)
    /// from flagging every batch as hung.
    pub hang_floor: Duration,
    /// How often the background monitor thread sweeps for hung
    /// workers (threaded servers only; manual servers sweep on
    /// [`Server::supervise`](crate::Server::supervise)).
    pub monitor_interval: Duration,
    /// Backoff before the first respawn after a crash; doubles per
    /// consecutive crash.
    pub backoff_base: Duration,
    /// Cap on the respawn backoff.
    pub backoff_cap: Duration,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            hang_multiplier: 8.0,
            hang_floor: Duration::from_millis(100),
            monitor_interval: Duration::from_millis(5),
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

impl SupervisionPolicy {
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.hang_multiplier.is_nan() || self.hang_multiplier < 1.0 {
            return Err(format!(
                "supervision hang_multiplier must be >= 1, got {}",
                self.hang_multiplier
            ));
        }
        if self.hang_floor.is_zero() {
            return Err("supervision hang_floor must be non-zero".into());
        }
        if self.monitor_interval.is_zero() {
            return Err("supervision monitor_interval must be non-zero".into());
        }
        if self.backoff_base.is_zero() {
            return Err("supervision backoff_base must be non-zero".into());
        }
        if self.backoff_cap < self.backoff_base {
            return Err(format!(
                "supervision backoff_cap ({:?}) must be >= backoff_base ({:?})",
                self.backoff_cap, self.backoff_base
            ));
        }
        Ok(())
    }

    /// Hang timeout for a batch whose covering rung's expected latency
    /// is `expected_ns`.
    pub(crate) fn hang_timeout_ns(&self, expected_ns: u64) -> u64 {
        let scaled = (expected_ns as f64 * self.hang_multiplier) as u64;
        scaled.max(self.hang_floor.as_nanos() as u64)
    }
}

/// Per-worker bookkeeping that survives the worker thread.
///
/// Counters live here (not on the thread) so a respawn doesn't reset
/// the worker's history; [`WorkerHealth`] snapshots read straight from
/// the slot.
#[derive(Debug)]
pub(crate) struct WorkerSlot {
    pub(crate) index: usize,
    /// Bumped to depose the current thread (watchdog failover). A
    /// worker whose cached generation is stale must exit without
    /// responding — its batch has already been resolved.
    generation: AtomicU64,
    /// Watchdog deadline for the in-flight batch ([`IDLE`] when idle).
    busy_until_ns: AtomicU64,
    /// Crash-loop streak; cleared by a cleanly completed batch.
    consecutive_failures: AtomicU32,
    // Serving counters (see WorkerHealth for semantics).
    pub(crate) batches: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) shed_deadline: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) crashes: AtomicU64,
    pub(crate) respawns: AtomicU64,
    pub(crate) hung_batches: AtomicU64,
    pub(crate) degraded_batches: AtomicU64,
    /// Reply senders for the batch in flight, so a supervisor can
    /// resolve tickets on a dead worker's behalf.
    inflight: Mutex<Vec<(u64, Sender<Response>)>>,
    /// Engine health merged across the worker's ladders, published
    /// after each batch (and folded across respawns).
    engine: Mutex<HealthReport>,
}

impl WorkerSlot {
    pub(crate) fn new(index: usize) -> Self {
        WorkerSlot {
            index,
            generation: AtomicU64::new(0),
            busy_until_ns: AtomicU64::new(IDLE),
            consecutive_failures: AtomicU32::new(0),
            batches: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            hung_batches: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            inflight: Mutex::new(Vec::new()),
            engine: Mutex::new(HealthReport::default()),
        }
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Deposes the current thread: bumps the generation and returns
    /// the new value for the replacement to adopt.
    pub(crate) fn depose(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Registers a batch as in flight: remembers every ticket's reply
    /// sender and arms the watchdog deadline. Must run before any
    /// fallible work on the batch.
    pub(crate) fn begin_batch(&self, requests: &[Request], watchdog_deadline_ns: u64) {
        let mut inflight = lock_unpoisoned(&self.inflight);
        inflight.clear();
        inflight.extend(requests.iter().map(|r| (r.id, r.reply.clone())));
        drop(inflight);
        self.busy_until_ns
            .store(watchdog_deadline_ns, Ordering::Release);
    }

    /// Clears the in-flight registry and disarms the watchdog, but
    /// only if the armed deadline is still the one this caller set —
    /// a worker that was deposed mid-batch must not clobber the
    /// replacement's registration. Returns whether it disarmed.
    pub(crate) fn end_batch(&self, armed_deadline_ns: u64) -> bool {
        if self
            .busy_until_ns
            .compare_exchange(armed_deadline_ns, IDLE, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            lock_unpoisoned(&self.inflight).clear();
            true
        } else {
            false
        }
    }

    /// Unconditionally disarms the watchdog and clears the registry.
    /// Crash-path only: the thread is dead, no replacement can have
    /// registered yet.
    pub(crate) fn abort_batch(&self) {
        self.busy_until_ns.store(IDLE, Ordering::Release);
        lock_unpoisoned(&self.inflight).clear();
    }

    /// `true` once the in-flight batch has outlived its hang timeout.
    pub(crate) fn is_overdue(&self, now_ns: u64) -> bool {
        let deadline = self.busy_until_ns.load(Ordering::Acquire);
        deadline != IDLE && now_ns > deadline
    }

    /// Resolves every in-flight ticket as `Failed(cause)` and returns
    /// how many were resolved. Used by the panic handler (worker
    /// crashed) and the watchdog (batch hung).
    pub(crate) fn fail_inflight(&self, cause: FailureCause) -> u64 {
        let drained: Vec<_> = lock_unpoisoned(&self.inflight).drain(..).collect();
        let n = drained.len() as u64;
        for (id, reply) in drained {
            // A dropped ticket just means nobody is listening; fine.
            let _ = reply.send(Response {
                id,
                outcome: Outcome::Failed(cause.clone()),
            });
        }
        n
    }

    /// Extends the crash streak; returns the new streak length.
    pub(crate) fn note_failure(&self) -> u32 {
        self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// A batch completed cleanly: the crash streak resets.
    pub(crate) fn note_clean(&self) {
        self.consecutive_failures.store(0, Ordering::Release);
    }

    /// Capped exponential respawn backoff for the current crash
    /// streak: `backoff_base × 2^(streak-1)`, capped at `backoff_cap`.
    pub(crate) fn backoff(&self, policy: &SupervisionPolicy) -> Duration {
        let streak = self.consecutive_failures.load(Ordering::Acquire).max(1);
        let doublings = (streak - 1).min(20);
        let scaled = policy
            .backoff_base
            .saturating_mul(1u32.checked_shl(doublings).unwrap_or(u32::MAX));
        scaled.min(policy.backoff_cap)
    }

    pub(crate) fn publish_engine(&self, report: HealthReport) {
        *lock_unpoisoned(&self.engine) = report;
    }

    pub(crate) fn engine_health(&self) -> HealthReport {
        lock_unpoisoned(&self.engine).clone()
    }

    /// Snapshot for [`ServerHealth`](crate::health::ServerHealth).
    pub(crate) fn health(&self) -> WorkerHealth {
        WorkerHealth {
            worker: self.index,
            batches: self.batches.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            hung_batches: self.hung_batches.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            engine: self.engine_health(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let slot = WorkerSlot::new(0);
        let policy = SupervisionPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            ..SupervisionPolicy::default()
        };
        assert_eq!(slot.note_failure(), 1);
        assert_eq!(slot.backoff(&policy), Duration::from_millis(10));
        slot.note_failure();
        assert_eq!(slot.backoff(&policy), Duration::from_millis(20));
        slot.note_failure();
        assert_eq!(slot.backoff(&policy), Duration::from_millis(40));
        for _ in 0..10 {
            slot.note_failure();
        }
        assert_eq!(slot.backoff(&policy), Duration::from_millis(100));
        slot.note_clean();
        slot.note_failure();
        assert_eq!(slot.backoff(&policy), Duration::from_millis(10));
    }

    #[test]
    fn overdue_only_while_armed() {
        let slot = WorkerSlot::new(0);
        assert!(!slot.is_overdue(u64::MAX - 1));
        slot.begin_batch(&[], 1_000);
        assert!(!slot.is_overdue(1_000));
        assert!(slot.is_overdue(1_001));
        // A stale deadline doesn't disarm the current registration...
        assert!(!slot.end_batch(999));
        assert!(slot.is_overdue(1_001));
        // ...the armed one does.
        assert!(slot.end_batch(1_000));
        assert!(!slot.is_overdue(1_001));
    }

    #[test]
    fn hang_timeout_floors() {
        let policy = SupervisionPolicy {
            hang_multiplier: 4.0,
            hang_floor: Duration::from_millis(50),
            ..SupervisionPolicy::default()
        };
        // Expected latency 0 (ManualClock pre-warm): floor applies.
        assert_eq!(policy.hang_timeout_ns(0), 50_000_000);
        // Large expected latency: multiplier applies.
        assert_eq!(policy.hang_timeout_ns(100_000_000), 400_000_000);
    }
}
