//! Server-level health: per-worker reports aggregated into one
//! snapshot, extending the engine's [`HealthReport`] up the stack.

use cnn_stack_nn::HealthReport;

/// One batch worker's view: serving counters plus the merged engine
/// health of its session ladder.
#[derive(Clone, Debug, Default)]
pub struct WorkerHealth {
    /// Worker index (stable across snapshots).
    pub worker: usize,
    /// Batches executed.
    pub batches: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at batch assembly because their deadline passed.
    pub shed_deadline: u64,
    /// Requests that resolved to [`crate::Outcome::Failed`].
    pub failed: u64,
    /// Engine-level health merged across the worker's session ladder.
    pub engine: HealthReport,
}

/// The whole server's health at a point in time.
#[derive(Clone, Debug, Default)]
pub struct ServerHealth {
    /// Requests accepted by `submit` (includes later-shed ones).
    pub submitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission (queue full).
    pub shed_queue_full: u64,
    /// Requests shed at batch assembly (deadline expired).
    pub shed_deadline: u64,
    /// Requests that resolved to [`crate::Outcome::Failed`].
    pub failed: u64,
    /// Per-worker detail.
    pub workers: Vec<WorkerHealth>,
}

impl ServerHealth {
    /// `true` when nothing was shed or failed and every worker's
    /// engine health is clean.
    pub fn is_clean(&self) -> bool {
        self.shed_queue_full == 0
            && self.shed_deadline == 0
            && self.failed == 0
            && self.workers.iter().all(|w| w.engine.is_clean())
    }

    /// Total algorithm demotions across every worker's sessions.
    pub fn total_demotions(&self) -> usize {
        self.workers.iter().map(|w| w.engine.demotions.len()).sum()
    }
}
