//! Server-level health: per-worker reports aggregated into one
//! snapshot, extending the engine's [`HealthReport`] up the stack.

use cnn_stack_nn::HealthReport;

use crate::breaker::BreakerSnapshot;

/// One batch worker's view: serving counters plus the merged engine
/// health of its session ladder.
///
/// Counters live on the worker's supervision slot, not its thread, so
/// they persist across crash respawns and watchdog failovers.
#[derive(Clone, Debug, Default)]
pub struct WorkerHealth {
    /// Worker index (stable across snapshots and respawns).
    pub worker: usize,
    /// Batches assembled (including ones lost to a crash or hang).
    pub batches: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at batch assembly because their deadline passed.
    pub shed_deadline: u64,
    /// Requests that resolved to [`crate::Outcome::Failed`].
    pub failed: u64,
    /// Worker panics caught by the supervisor.
    pub crashes: u64,
    /// Times this worker was rebuilt with a fresh session ladder
    /// (after a crash or a watchdog failover).
    pub respawns: u64,
    /// Batches the hung-batch watchdog failed over.
    pub hung_batches: u64,
    /// Batches served on the breaker's degraded plan ladder.
    pub degraded_batches: u64,
    /// Engine-level health merged across the worker's session ladder.
    pub engine: HealthReport,
}

/// The whole server's health at a point in time.
#[derive(Clone, Debug, Default)]
pub struct ServerHealth {
    /// Requests accepted by `submit` (includes later-shed ones).
    pub submitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission (queue full).
    pub shed_queue_full: u64,
    /// Requests shed at batch assembly (deadline expired).
    pub shed_deadline: u64,
    /// Requests that resolved to [`crate::Outcome::Failed`].
    pub failed: u64,
    /// Worker respawns, summed across workers.
    pub respawns: u64,
    /// Watchdog failovers, summed across workers.
    pub hung_batches: u64,
    /// Degraded-ladder batches, summed across workers.
    pub degraded_batches: u64,
    /// Brownout breaker trips (0 when no breaker is configured).
    pub breaker_trips: u64,
    /// Breaker state machine snapshot, when a breaker is configured.
    pub breaker: Option<BreakerSnapshot>,
    /// Per-worker detail.
    pub workers: Vec<WorkerHealth>,
}

impl ServerHealth {
    /// `true` when nothing *faulted*: no failures, no worker crashes
    /// or respawns, no hung batches, and every worker's engine health
    /// is clean. Load shedding does **not** dirty this — shedding is
    /// the server working as designed under overload; use
    /// [`is_quiet`](Self::is_quiet) to additionally assert no sheds.
    pub fn is_clean(&self) -> bool {
        self.failed == 0
            && self.respawns == 0
            && self.hung_batches == 0
            && self
                .workers
                .iter()
                .all(|w| w.crashes == 0 && w.engine.is_clean())
    }

    /// [`is_clean`](Self::is_clean) *and* nothing was shed: the server
    /// ran every accepted request inside its deadline with queue
    /// headroom to spare.
    pub fn is_quiet(&self) -> bool {
        self.is_clean() && self.shed_queue_full == 0 && self.shed_deadline == 0
    }

    /// Total algorithm demotions across every worker's sessions.
    pub fn total_demotions(&self) -> usize {
        self.workers.iter().map(|w| w.engine.demotions.len()).sum()
    }
}
