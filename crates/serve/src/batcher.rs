//! Dynamic batching: coalesce queued requests into one session run.

use crate::clock::{Clock, WaitError};
use crate::ticket::Request;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// When to close a batch: at `max_batch` requests, or `max_delay` after
/// the batch was opened, whichever comes first.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Largest batch one session run carries.
    pub max_batch: usize,
    /// Longest the first request in a batch waits for company.
    pub max_delay: Duration,
}

/// Pulls requests off the shared queue and shapes them into batches.
#[derive(Debug)]
pub(crate) struct Batcher {
    rx: Receiver<Request>,
    clock: Arc<dyn Clock>,
    policy: BatchPolicy,
}

/// Why `next_batch` returned no batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchEnd {
    /// Non-blocking call found the queue empty.
    Empty,
    /// All submitters are gone and the queue is drained.
    Disconnected,
}

impl Batcher {
    pub(crate) fn new(rx: Receiver<Request>, clock: Arc<dyn Clock>, policy: BatchPolicy) -> Self {
        Batcher { rx, clock, policy }
    }

    /// Assembles the next batch: takes one request (blocking for it
    /// when `block`), then keeps the batch open until it is full or the
    /// policy's delay window — measured on the server clock from the
    /// moment the batch opened — runs out. A `max_batch` of 1 never
    /// opens a window at all, so batch-size-1 serving pays no added
    /// latency.
    pub(crate) fn next_batch(&mut self, block: bool) -> Result<Vec<Request>, BatchEnd> {
        let first = if block {
            self.rx.recv().map_err(|_| BatchEnd::Disconnected)?
        } else {
            self.rx.try_recv().map_err(|e| match e {
                TryRecvError::Empty => BatchEnd::Empty,
                TryRecvError::Disconnected => BatchEnd::Disconnected,
            })?
        };
        let mut batch = vec![first];
        if self.policy.max_batch <= 1 {
            return Ok(batch);
        }
        let opened = self.clock.now_ns();
        let deadline = opened.saturating_add(self.policy.max_delay.as_nanos() as u64);
        while batch.len() < self.policy.max_batch {
            match self.clock.recv_deadline(&self.rx, deadline) {
                Ok(r) => batch.push(r),
                Err(WaitError::Timeout) | Err(WaitError::Disconnected) => break,
            }
        }
        Ok(batch)
    }
}
