//! Brownout circuit breaker: plan-level degradation under overload.
//!
//! The breaker watches a sliding window of per-request outcomes (met
//! deadline vs. missed/failed/shed) and drives a three-state machine:
//!
//! ```text
//!            miss rate ≥ trip_miss_rate
//!   Closed ──────────────────────────────▶ Open
//!      ▲                                    │ cooldown elapses
//!      │  probe_requests clean              ▼
//!      └──────────────────────────────  HalfOpen
//!                  (any miss while half-open re-trips to Open)
//! ```
//!
//! While **Open**, batch workers route traffic onto a pre-compiled
//! *degraded* plan ladder — compiled by `PlanCompiler::degraded()` for
//! throughput over fidelity (forced im2col+packed GEMM, fused ReLU, no
//! guard scans) — trading the paper's fidelity knobs for latency
//! headroom instead of shedding outright. **HalfOpen** sends probe
//! traffic back through the primary ladder; a clean probe window closes
//! the breaker, any miss re-opens it.
//!
//! All timeline decisions take a caller-supplied `now_ns` from the
//! server's [`Clock`](crate::clock::Clock), so the state machine is
//! deterministically testable under `ManualClock`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::supervisor::lock_unpoisoned;

/// Tuning for the brownout circuit breaker.
///
/// Attached to a server via
/// [`ServeConfigBuilder::breaker`](crate::config::ServeConfigBuilder::breaker);
/// without it the server never degrades.
#[derive(Clone, Copy, Debug)]
pub struct BreakerPolicy {
    /// Sliding-window length in requests over which the miss rate is
    /// measured.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip;
    /// prevents one early miss from reading as a 100% miss rate.
    pub min_samples: usize,
    /// Miss-rate threshold in `(0, 1]` at which the breaker opens.
    pub trip_miss_rate: f64,
    /// How long the breaker stays open (serving degraded) before
    /// probing the primary ladder again.
    pub cooldown: Duration,
    /// Consecutive clean half-open outcomes required to close.
    pub probe_requests: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            window: 64,
            min_samples: 16,
            trip_miss_rate: 0.5,
            cooldown: Duration::from_millis(250),
            probe_requests: 8,
        }
    }
}

impl BreakerPolicy {
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("breaker window must be at least 1".into());
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(format!(
                "breaker min_samples must be in 1..={} (the window), got {}",
                self.window, self.min_samples
            ));
        }
        if !(self.trip_miss_rate > 0.0 && self.trip_miss_rate <= 1.0) {
            return Err(format!(
                "breaker trip_miss_rate must be in (0, 1], got {}",
                self.trip_miss_rate
            ));
        }
        if self.cooldown.is_zero() {
            return Err("breaker cooldown must be non-zero".into());
        }
        if self.probe_requests == 0 {
            return Err("breaker probe_requests must be at least 1".into());
        }
        Ok(())
    }
}

/// Externally visible breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic runs the primary (full-fidelity) ladder.
    Closed,
    /// Browned out: traffic runs the degraded ladder until the
    /// cooldown expires.
    Open,
    /// Probing: traffic runs the primary ladder; a clean probe window
    /// closes the breaker, any miss re-opens it.
    HalfOpen,
}

/// Point-in-time view of the breaker, embedded in
/// [`ServerHealth`](crate::health::ServerHealth).
#[derive(Clone, Copy, Debug)]
pub struct BreakerSnapshot {
    /// Current state of the state machine.
    pub state: BreakerState,
    /// Closed→Open transitions since the server started (including
    /// HalfOpen→Open re-trips).
    pub trips: u64,
    /// Batches served on the degraded ladder.
    pub degraded_batches: u64,
}

/// Which ladder the next batch should run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Route {
    Primary,
    Degraded,
}

#[derive(Clone, Copy, Debug)]
enum CoreState {
    Closed,
    Open { until_ns: u64 },
    HalfOpen { clean: u32 },
}

struct BreakerCore {
    state: CoreState,
    /// Ring buffer of recent outcomes; `true` = miss.
    ring: Vec<bool>,
    head: usize,
    len: usize,
}

impl BreakerCore {
    fn push(&mut self, miss: bool) {
        let cap = self.ring.capacity();
        if self.ring.len() < cap {
            self.ring.push(miss);
        } else {
            self.ring[self.head] = miss;
        }
        self.head = (self.head + 1) % cap;
        self.len = self.len.saturating_add(1).min(cap);
    }

    fn miss_rate(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let misses = self.ring.iter().filter(|&&m| m).count();
        misses as f64 / self.len as f64
    }

    fn clear_window(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.len = 0;
    }
}

/// Sliding-window health tracker plus the Closed/Open/HalfOpen state
/// machine. Shared (`Arc`) between all batch workers and the submit
/// path; every transition happens under one mutex so workers observe a
/// consistent state.
pub(crate) struct CircuitBreaker {
    policy: BreakerPolicy,
    core: Mutex<BreakerCore>,
    trips: AtomicU64,
    degraded_batches: AtomicU64,
}

impl CircuitBreaker {
    pub(crate) fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            core: Mutex::new(BreakerCore {
                state: CoreState::Closed,
                ring: Vec::with_capacity(policy.window),
                head: 0,
                len: 0,
            }),
            trips: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
        }
    }

    fn trip(&self, core: &mut BreakerCore, now_ns: u64) {
        core.state = CoreState::Open {
            until_ns: now_ns.saturating_add(self.policy.cooldown.as_nanos() as u64),
        };
        // A stale window must not instantly re-trip after recovery.
        core.clear_window();
        self.trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one terminal request outcome. `ok` means the request was
    /// served within its deadline; sheds, failures and deadline misses
    /// all count as misses. Returns `true` when this outcome tripped
    /// the breaker (so the caller can bump the trip metric).
    pub(crate) fn record(&self, now_ns: u64, ok: bool) -> bool {
        let mut core = lock_unpoisoned(&self.core);
        match core.state {
            CoreState::Closed => {
                core.push(!ok);
                if core.len >= self.policy.min_samples
                    && core.miss_rate() >= self.policy.trip_miss_rate
                {
                    self.trip(&mut core, now_ns);
                    return true;
                }
                false
            }
            CoreState::HalfOpen { clean } => {
                if ok {
                    if clean + 1 >= self.policy.probe_requests {
                        core.state = CoreState::Closed;
                        core.clear_window();
                    } else {
                        core.state = CoreState::HalfOpen { clean: clean + 1 };
                    }
                    false
                } else {
                    self.trip(&mut core, now_ns);
                    true
                }
            }
            // Outcomes while open (degraded traffic, queue sheds) don't
            // extend the cooldown; recovery is time-driven.
            CoreState::Open { .. } => false,
        }
    }

    /// Picks the ladder for the next batch, performing the time-driven
    /// Open→HalfOpen transition when the cooldown has elapsed.
    pub(crate) fn route(&self, now_ns: u64) -> Route {
        let mut core = lock_unpoisoned(&self.core);
        match core.state {
            CoreState::Closed | CoreState::HalfOpen { .. } => Route::Primary,
            CoreState::Open { until_ns } => {
                if now_ns >= until_ns {
                    core.state = CoreState::HalfOpen { clean: 0 };
                    Route::Primary
                } else {
                    Route::Degraded
                }
            }
        }
    }

    pub(crate) fn note_degraded_batch(&self) {
        self.degraded_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> BreakerSnapshot {
        let state = match lock_unpoisoned(&self.core).state {
            CoreState::Closed => BreakerState::Closed,
            CoreState::Open { .. } => BreakerState::Open,
            CoreState::HalfOpen { .. } => BreakerState::HalfOpen,
        };
        BreakerSnapshot {
            state,
            trips: self.trips.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
        }
    }

    /// Gauge encoding for `serve.breaker.state`: 0 closed, 1 half-open,
    /// 2 open.
    pub(crate) fn state_gauge(&self) -> i64 {
        match lock_unpoisoned(&self.core).state {
            CoreState::Closed => 0,
            CoreState::HalfOpen { .. } => 1,
            CoreState::Open { .. } => 2,
        }
    }
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("CircuitBreaker")
            .field("state", &snap.state)
            .field("trips", &snap.trips)
            .field("degraded_batches", &snap.degraded_batches)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            window: 8,
            min_samples: 4,
            trip_miss_rate: 0.5,
            cooldown: Duration::from_millis(100),
            probe_requests: 3,
        }
    }

    #[test]
    fn trips_only_after_min_samples() {
        let b = CircuitBreaker::new(policy());
        // Three straight misses: under min_samples, stays closed.
        for _ in 0..3 {
            b.record(0, false);
        }
        assert_eq!(b.snapshot().state, BreakerState::Closed);
        // Fourth miss reaches min_samples at 100% miss rate: trips.
        b.record(0, false);
        assert_eq!(b.snapshot().state, BreakerState::Open);
        assert_eq!(b.snapshot().trips, 1);
    }

    #[test]
    fn open_routes_degraded_until_cooldown() {
        let b = CircuitBreaker::new(policy());
        for _ in 0..4 {
            b.record(1_000, false);
        }
        assert_eq!(b.route(1_000), Route::Degraded);
        // Still inside the 100ms cooldown.
        assert_eq!(b.route(1_000 + 50_000_000), Route::Degraded);
        // Cooldown elapsed: half-open, probes go primary.
        assert_eq!(b.route(1_000 + 100_000_000), Route::Primary);
        assert_eq!(b.snapshot().state, BreakerState::HalfOpen);
    }

    #[test]
    fn clean_probe_window_closes() {
        let b = CircuitBreaker::new(policy());
        for _ in 0..4 {
            b.record(0, false);
        }
        let after = 200_000_000;
        assert_eq!(b.route(after), Route::Primary);
        b.record(after, true);
        b.record(after, true);
        assert_eq!(b.snapshot().state, BreakerState::HalfOpen);
        b.record(after, true);
        assert_eq!(b.snapshot().state, BreakerState::Closed);
        // The cleared window means one fresh miss can't instantly re-trip.
        b.record(after, false);
        assert_eq!(b.snapshot().state, BreakerState::Closed);
    }

    #[test]
    fn half_open_miss_retrips() {
        let b = CircuitBreaker::new(policy());
        for _ in 0..4 {
            b.record(0, false);
        }
        assert_eq!(b.route(200_000_000), Route::Primary);
        b.record(200_000_000, false);
        assert_eq!(b.snapshot().state, BreakerState::Open);
        assert_eq!(b.snapshot().trips, 2);
        // And the new cooldown starts from the re-trip time.
        assert_eq!(b.route(200_000_000 + 50_000_000), Route::Degraded);
    }

    #[test]
    fn mixed_window_below_threshold_stays_closed() {
        let b = CircuitBreaker::new(policy());
        for i in 0..16 {
            // 25% miss rate.
            b.record(0, i % 4 != 0);
        }
        assert_eq!(b.snapshot().state, BreakerState::Closed);
        assert_eq!(b.snapshot().trips, 0);
    }
}
