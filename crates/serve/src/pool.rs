//! The pre-warmed session ladder: one owned [`InferenceSession`] per
//! ladder batch size, all sharing a single set of `Arc`'d prepacked
//! weight panels ("compile once, serve many").
//!
//! Each worker owns a ladder (sessions are not `Sync`). A batch of `n`
//! requests runs on the smallest ladder rung whose batch size covers
//! `n`, padding the tail with zero images whose outputs are discarded;
//! the quarter-stepped rung sizes (see
//! [`ServeConfig`](crate::ServeConfig)) bound that padding waste while
//! keeping weight-replica memory low.

use crate::clock::Clock;
use crate::config::ServeConfig;
use crate::error::ServeError;
use cnn_stack_nn::{
    adopt_packed_panels, adopt_quant_panels, GuardConfig, InferenceSession, Network, PlanCompiler,
    QuantPanels,
};
use cnn_stack_tensor::Tensor;
use std::sync::Arc;

/// Shared prepack exported from the first session built for a model:
/// the f32 packed weight panels plus any quantised (2-bit ternary /
/// int8) code panels — both `Arc`-shared, so every replica in a pool
/// reads one physical copy of each.
#[derive(Clone)]
pub(crate) struct PanelSet {
    packed: Vec<Option<Arc<Vec<f32>>>>,
    quant: Vec<Option<QuantPanels>>,
}

/// Which plan pipeline a ladder compiles with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LadderKind {
    /// Full fidelity: `PlanCompiler::standard()` plus the configured
    /// guard policy.
    Primary,
    /// The brownout breaker's fallback: `PlanCompiler::degraded()`
    /// (forced im2col+packed GEMM, fused ReLU) with guards off —
    /// throughput over fidelity while the breaker is open.
    Degraded,
}

/// One rung: a pre-warmed session at a fixed batch size plus its
/// pre-allocated input/output staging tensors (runs are allocation-free).
struct Rung {
    batch: usize,
    session: InferenceSession<'static>,
    input: Tensor,
    output: Tensor,
    /// Pre-warm latency on the server clock; the hung-batch watchdog's
    /// baseline for "how long should a batch on this rung take".
    expected_ns: u64,
}

/// What one ladder run did, beyond the outputs themselves.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RunInfo {
    /// The guard demoted at least one step during this run.
    pub demoted: bool,
    /// A guard tripped (recovered or not) during this run.
    pub guarded: bool,
}

pub(crate) struct SessionLadder {
    rungs: Vec<Rung>,
    request_elems: usize,
}

impl SessionLadder {
    /// Builds, prepares, and pre-warms one session per ladder size.
    ///
    /// `build_net` is invoked once per rung; every replica after the
    /// first adopts the first rung's exported panels *before* its
    /// session is built, so its prepare pass packs nothing — the whole
    /// ladder shares one physical prepack.
    pub(crate) fn build(
        cfg: &ServeConfig,
        kind: LadderKind,
        build_net: &(dyn Fn() -> Network + Send + Sync),
        shared: &mut Option<PanelSet>,
        clock: &dyn Clock,
    ) -> Result<Self, ServeError> {
        let base_exec = cfg.exec();
        let request_elems: usize = cfg.input_shape().iter().product();
        let mut rungs = Vec::new();
        for &batch in &cfg.ladder_sizes() {
            // Under a memory envelope each rung compiles against its
            // proportional share, and the conv override is released so
            // the budget solver may demote layers (the cost model picks
            // im2col+packed anyway wherever the share allows it).
            let exec = match cfg.rung_budget(batch) {
                Some(budget) => cnn_stack_nn::ExecConfig {
                    conv_algo: cnn_stack_nn::ExecConfig::serial().conv_algo,
                    plan_budget: Some(budget),
                    ..base_exec
                },
                None => base_exec,
            };
            let mut shape = vec![batch];
            shape.extend_from_slice(cfg.input_shape());
            let mut net = build_net();
            let compiler = match kind {
                LadderKind::Primary => PlanCompiler::standard(),
                LadderKind::Degraded => PlanCompiler::degraded(),
            };
            let plan = compiler.run(&mut net, &shape, &exec)?;
            if let Some(panels) = shared.as_ref() {
                adopt_packed_panels(&mut net, &panels.packed);
                adopt_quant_panels(&mut net, &panels.quant);
            }
            let guard = match kind {
                LadderKind::Primary => cfg.guard(),
                LadderKind::Degraded => GuardConfig::Off,
            };
            let mut session = InferenceSession::owned(net, plan, guard)?;
            if shared.is_none() {
                *shared = Some(PanelSet {
                    packed: session.export_packed_panels(),
                    quant: session.export_quant_panels(),
                });
            }
            let input = Tensor::zeros(shape);
            let mut output = Tensor::zeros(session.plan().output_shape().to_vec());
            // Pre-warm: the first run settles lazy state (thread pools,
            // page faults on the arenas) off the serving path. Timing
            // it gives the watchdog its expected-latency baseline
            // (zero under ManualClock — the hang floor covers that).
            let warm_start = clock.now_ns();
            session.run_into(&input, &mut output)?;
            let expected_ns = clock.now_ns().saturating_sub(warm_start);
            rungs.push(Rung {
                batch,
                session,
                input,
                output,
                expected_ns,
            });
        }
        Ok(SessionLadder {
            rungs,
            request_elems,
        })
    }

    /// Expected latency of the rung that would carry an `n`-request
    /// batch (the pre-warm measurement).
    pub(crate) fn expected_ns(&self, n: usize) -> u64 {
        self.rungs
            .iter()
            .find(|r| r.batch >= n)
            .map(|r| r.expected_ns)
            .unwrap_or(0)
    }

    /// Runs `inputs` as one batch on the smallest covering rung and
    /// returns each request's output (batch dimension stripped).
    pub(crate) fn run(
        &mut self,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, RunInfo), cnn_stack_nn::Error> {
        let n = inputs.len();
        let rung = self
            .rungs
            .iter_mut()
            .find(|r| r.batch >= n)
            .expect("batcher never exceeds max_batch, the ladder's top rung");
        let elems = self.request_elems;
        let staged = rung.input.data_mut();
        for (i, t) in inputs.iter().enumerate() {
            staged[i * elems..(i + 1) * elems].copy_from_slice(t.data());
        }
        // Zero the padding tail: stale images from a previous batch
        // must not feed the guard (or the profile) garbage.
        staged[n * elems..].fill(0.0);

        let health_before = rung.session.health().clone();
        rung.session.run_into(&rung.input, &mut rung.output)?;
        let health = rung.session.health();
        let info = RunInfo {
            demoted: health.demotions.len() > health_before.demotions.len(),
            guarded: health.guards_tripped > health_before.guards_tripped,
        };

        let out_elems = rung.output.len() / rung.batch;
        let mut per_shape: Vec<usize> = rung.output.shape().dims()[1..].to_vec();
        if per_shape.is_empty() {
            per_shape.push(1);
        }
        let outputs = (0..n)
            .map(|i| {
                Tensor::from_vec(
                    per_shape.clone(),
                    rung.output.data()[i * out_elems..(i + 1) * out_elems].to_vec(),
                )
            })
            .collect();
        Ok((outputs, info))
    }

    /// Engine-level health, merged across the ladder's sessions.
    pub(crate) fn health(&self) -> cnn_stack_nn::HealthReport {
        let mut merged = cnn_stack_nn::HealthReport::default();
        for rung in &self.rungs {
            let h = rung.session.health();
            merged.guards_tripped += h.guards_tripped;
            merged.panics_contained += h.panics_contained;
            merged.retries += h.retries;
            merged.demotions.extend(h.demotions.iter().cloned());
            merged
                .budget_breaches
                .extend(h.budget_breaches.iter().cloned());
        }
        merged
    }

    /// Forwards a deterministic fault plan to every rung's session
    /// (the serve-level fault-injection harness).
    #[cfg(feature = "fault-inject")]
    pub(crate) fn inject_faults(&mut self, faults: &dyn Fn() -> cnn_stack_nn::FaultPlan) {
        for rung in &mut self.rungs {
            rung.session.inject_faults(faults());
        }
    }
}
