//! Request/response handles: what a client holds while the server
//! works, and the typed outcome it eventually receives.

use cnn_stack_tensor::Tensor;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::Duration;

/// Why the server refused to run a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Admission control: the bounded request queue was full.
    QueueFull,
    /// The request's deadline had already passed when its batch was
    /// assembled, so running it could only waste capacity.
    DeadlineExpired,
    /// The server was shutting down.
    ShuttingDown,
}

/// A successfully served request.
#[derive(Clone, Debug)]
pub struct Served {
    /// The model output for this request (no batch dimension).
    pub output: Tensor,
    /// End-to-end latency: submit to response, on the server's clock.
    pub latency: Duration,
    /// How many requests shared the session run (before padding).
    pub batch_size: usize,
    /// The guard demoted an algorithm during this run (the co-batched
    /// outputs are still complete — the engine re-runs after demoting).
    pub demoted: bool,
    /// A guard tripped (and was recovered) during this run.
    pub guarded: bool,
    /// Served on the brownout breaker's degraded plan ladder
    /// (throughput-tuned, guards off) rather than the primary one.
    pub degraded: bool,
}

/// Why a request resolved to [`Outcome::Failed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The engine gave up (guard exhausted its demotion ladder, or a
    /// kernel failure was not recoverable).
    Engine(String),
    /// The batch worker panicked with this request's batch in flight;
    /// the supervisor resolved the ticket on the dead worker's behalf.
    /// Carries the panic message.
    WorkerCrashed(String),
    /// The hung-batch watchdog deposed the worker after this request's
    /// batch exceeded its hang timeout.
    BatchHung,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Engine(msg) => write!(f, "engine failure: {msg}"),
            FailureCause::WorkerCrashed(msg) => {
                write!(f, "worker crashed mid-batch: {msg}")
            }
            FailureCause::BatchHung => {
                write!(f, "batch exceeded its hang timeout; worker recycled")
            }
        }
    }
}

/// The typed terminal state of a request.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Ran to completion; the output is attached.
    Served(Served),
    /// Refused without running — never silently dropped.
    Shed(ShedReason),
    /// Ran (or was running) and could not complete; the cause says
    /// whether the engine, a crashed worker, or the hung-batch watchdog
    /// resolved it.
    Failed(FailureCause),
}

impl Outcome {
    /// `true` for [`Outcome::Served`].
    pub fn is_served(&self) -> bool {
        matches!(self, Outcome::Served(_))
    }

    /// The served payload, if any.
    pub fn served(&self) -> Option<&Served> {
        match self {
            Outcome::Served(s) => Some(s),
            _ => None,
        }
    }
}

/// The server's reply to one request.
#[derive(Clone, Debug)]
pub struct Response {
    /// The id [`crate::Server::submit`] returned with the ticket.
    pub id: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// A queued request, internal to the server.
#[derive(Debug)]
pub struct Request {
    pub(crate) id: u64,
    pub(crate) input: Tensor,
    /// Submission instant on the server clock.
    pub(crate) submitted_ns: u64,
    /// Absolute shed deadline on the server clock, if any.
    pub(crate) deadline_ns: Option<u64>,
    pub(crate) reply: Sender<Response>,
}

impl Request {
    pub(crate) fn respond(self, outcome: Outcome) {
        // A dropped ticket just means nobody is listening; fine.
        let _ = self.reply.send(Response {
            id: self.id,
            outcome,
        });
    }
}

/// The client's handle to an in-flight request.
///
/// Every submitted request resolves to exactly one [`Response`] — shed
/// and failed requests included — so `wait` never hangs on a live
/// server.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<Response>,
}

impl Ticket {
    /// The request id (matches [`Response::id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. If the server was torn down
    /// with the request still queued, resolves to
    /// [`Outcome::Shed`]`(`[`ShedReason::ShuttingDown`]`)` rather than
    /// hanging.
    pub fn wait(self) -> Response {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Response {
                id: self.id,
                outcome: Outcome::Shed(ShedReason::ShuttingDown),
            },
        }
    }

    /// Non-blocking poll: `Some` once the response is in.
    pub fn try_wait(&self) -> Option<Response> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Response {
                id: self.id,
                outcome: Outcome::Shed(ShedReason::ShuttingDown),
            }),
        }
    }
}
