//! The multi-tenant inference server: bounded queue → dynamic batcher
//! → pre-warmed session ladder, with admission control, deadline
//! shedding, per-request typed outcomes — and self-healing: a
//! supervisor that catches worker panics and respawns with capped
//! backoff, a hung-batch watchdog that fails over wedged workers, and
//! an optional brownout circuit breaker that swaps overloaded workers
//! onto a degraded plan ladder.

use crate::batcher::{BatchEnd, Batcher};
use crate::breaker::{CircuitBreaker, Route};
use crate::clock::{Clock, MonotonicClock};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::health::{ServerHealth, WorkerHealth};
use crate::pool::{LadderKind, PanelSet, SessionLadder};
use crate::supervisor::{lock_unpoisoned, SupervisionPolicy, WorkerSlot};
use crate::ticket::{FailureCause, Outcome, Request, Served, ShedReason, Ticket};
use cnn_stack_nn::{HealthReport, Network};
use cnn_stack_obs::{Metric, Observer};
use cnn_stack_parallel::{panic_message, spawn_worker};
use cnn_stack_tensor::Tensor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared between submitters, workers, and the supervisor.
struct ServerInner {
    observer: Option<Arc<Observer>>,
    /// Requests currently queued (admission gauge).
    depth: AtomicI64,
    next_id: AtomicU64,
    submitted: AtomicU64,
    served: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    failed: AtomicU64,
    /// Per-worker supervision slots; these outlive worker threads, so
    /// counters and in-flight tickets survive crashes and failovers.
    slots: Vec<Arc<WorkerSlot>>,
    breaker: Option<Arc<CircuitBreaker>>,
    /// Set at shutdown so the monitor and any parked/hung workers exit.
    shutdown: AtomicBool,
    /// Serve-level fault plan (crash/hang/slow batches), shared so it
    /// reaches threaded workers too.
    #[cfg(feature = "fault-inject")]
    serve_faults: Mutex<Arc<cnn_stack_nn::FaultPlan>>,
}

impl ServerInner {
    fn count(&self, m: Metric, n: u64) {
        if let Some(obs) = &self.observer {
            obs.metrics().add(m, n);
        }
    }

    fn observe(&self, m: Metric, v: u64) {
        if let Some(obs) = &self.observer {
            obs.metrics().observe(m, v);
        }
    }

    fn gauge(&self, m: Metric, v: i64) {
        if let Some(obs) = &self.observer {
            obs.metrics().set(m, v);
        }
    }
}

/// Feeds one request outcome to the breaker (if any), bumping the trip
/// metric when this outcome opened it.
fn breaker_record(inner: &ServerInner, now_ns: u64, ok: bool) {
    if let Some(b) = &inner.breaker {
        if b.record(now_ns, ok) {
            inner.count(Metric::ServeBreakerTrips, 1);
        }
    }
}

fn fold_health(into: &mut HealthReport, from: &HealthReport) {
    into.guards_tripped += from.guards_tripped;
    into.panics_contained += from.panics_contained;
    into.retries += from.retries;
    into.demotions.extend(from.demotions.iter().cloned());
}

/// Everything needed to rebuild a worker's ladders after a crash or a
/// watchdog failover. The prepacked panel sets are frozen from the
/// initial build, so respawns adopt the shared prepack instead of
/// re-packing weights.
struct Respawner {
    cfg: ServeConfig,
    primary_panels: PanelSet,
    degraded_panels: Option<PanelSet>,
    build_net: Arc<dyn Fn() -> Network + Send + Sync>,
    clock: Arc<dyn Clock>,
}

impl Respawner {
    fn primary(&self) -> Result<SessionLadder, ServeError> {
        let mut shared = Some(self.primary_panels.clone());
        SessionLadder::build(
            &self.cfg,
            LadderKind::Primary,
            &*self.build_net,
            &mut shared,
            &*self.clock,
        )
    }

    fn degraded(&self) -> Result<Option<SessionLadder>, ServeError> {
        match &self.degraded_panels {
            None => Ok(None),
            Some(panels) => {
                let mut shared = Some(panels.clone());
                Ok(Some(SessionLadder::build(
                    &self.cfg,
                    LadderKind::Degraded,
                    &*self.build_net,
                    &mut shared,
                    &*self.clock,
                )?))
            }
        }
    }
}

/// Shared context the watchdog needs to fail over and respawn workers,
/// whether it runs on the background monitor thread (threaded servers)
/// or inside [`Server::supervise`] (manual servers).
struct SupervisorCtx {
    inner: Arc<ServerInner>,
    batcher: Arc<Mutex<Batcher>>,
    respawner: Arc<Respawner>,
    clock: Arc<dyn Clock>,
    /// Live worker threads, including replacements spawned after
    /// failovers; drained at shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
    supervision: SupervisionPolicy,
}

/// One batch worker: drains the shared queue through the batcher and
/// runs batches on its own session ladder(s). The thread half of a
/// worker — its durable half is the [`WorkerSlot`].
struct Worker {
    slot: Arc<WorkerSlot>,
    /// The slot generation this thread serves under; a mismatch means
    /// the watchdog deposed it and a replacement owns the queue.
    generation: u64,
    batcher: Arc<Mutex<Batcher>>,
    primary: SessionLadder,
    /// Present when a breaker is configured: the throughput-tuned
    /// fallback ladder batches run on while the breaker is open.
    degraded: Option<SessionLadder>,
    /// Engine health inherited from ladders discarded by earlier
    /// respawns, so history survives the rebuild.
    engine_base: HealthReport,
    inner: Arc<ServerInner>,
    clock: Arc<dyn Clock>,
    respawner: Arc<Respawner>,
    supervision: SupervisionPolicy,
    /// Only consulted by the injected-hang path, which is feature-gated.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    manual: bool,
    /// Manual mode: a hang fault parks the worker (the thread analogue
    /// of being wedged) until the watchdog recycles it.
    parked: bool,
    /// Manual mode: crash backoff gate — no cycles until this instant.
    respawn_at_ns: Option<u64>,
}

impl Worker {
    /// Builds a replacement worker for `slot` from the frozen prepack.
    fn fresh(
        ctx: &SupervisorCtx,
        slot: Arc<WorkerSlot>,
        generation: u64,
    ) -> Result<Worker, ServeError> {
        let primary = ctx.respawner.primary()?;
        let degraded = ctx.respawner.degraded()?;
        let engine_base = slot.engine_health();
        Ok(Worker {
            slot,
            generation,
            batcher: Arc::clone(&ctx.batcher),
            primary,
            degraded,
            engine_base,
            inner: Arc::clone(&ctx.inner),
            clock: Arc::clone(&ctx.clock),
            respawner: Arc::clone(&ctx.respawner),
            supervision: ctx.supervision,
            manual: false,
            parked: false,
            respawn_at_ns: None,
        })
    }

    fn deposed(&self) -> bool {
        self.slot.generation() != self.generation
    }

    /// Runs one batch cycle. `Some(did_work)` while the queue is live;
    /// `None` once every submitter is gone and the queue is drained.
    fn cycle(&mut self, block: bool) -> Option<bool> {
        if self.parked {
            return Some(false);
        }
        let batch = {
            let mut batcher = lock_unpoisoned(&self.batcher);
            batcher.next_batch(block)
        };
        let batch = match batch {
            Ok(b) => b,
            Err(BatchEnd::Empty) => return Some(false),
            Err(BatchEnd::Disconnected) => return None,
        };
        let inner = Arc::clone(&self.inner);
        let depth = inner.depth.fetch_sub(batch.len() as i64, Ordering::Relaxed);
        inner.gauge(Metric::ServeQueueDepth, depth - batch.len() as i64);

        // Shed what can no longer meet its deadline; running it would
        // only burn capacity the live requests need.
        let now = self.clock.now_ns();
        for r in &batch {
            inner.observe(Metric::ServeQueueWaitNs, now.saturating_sub(r.submitted_ns));
        }
        let (live, dead): (Vec<Request>, Vec<Request>) = batch
            .into_iter()
            .partition(|r| r.deadline_ns.is_none_or(|d| d >= now));
        for r in dead {
            inner.count(Metric::ServeShedDeadline, 1);
            inner.shed_deadline.fetch_add(1, Ordering::Relaxed);
            self.slot.shed_deadline.fetch_add(1, Ordering::Relaxed);
            breaker_record(&inner, now, false);
            r.respond(Outcome::Shed(ShedReason::DeadlineExpired));
        }
        if live.is_empty() {
            self.publish_health();
            return Some(true);
        }

        // Route: degraded ladder while the breaker is open.
        let degraded_route = match (&inner.breaker, &self.degraded) {
            (Some(b), Some(_)) => b.route(now) == Route::Degraded,
            _ => false,
        };
        let expected_ns = if degraded_route {
            self.degraded
                .as_ref()
                .map(|l| l.expected_ns(live.len()))
                .unwrap_or(0)
        } else {
            self.primary.expected_ns(live.len())
        };

        // Register the batch BEFORE any fallible work: from here on, a
        // panic or hang resolves these tickets as typed failures via
        // the slot registry — they are never lost.
        let watchdog_deadline = now.saturating_add(self.supervision.hang_timeout_ns(expected_ns));
        let batch_idx = self.slot.batches.fetch_add(1, Ordering::Relaxed);
        self.slot.begin_batch(&live, watchdog_deadline);
        inner.count(Metric::ServeBatches, 1);
        inner.observe(Metric::ServeBatchOccupancy, live.len() as u64);

        // Serve-level fault injection: crash, hang, or slow this batch.
        #[cfg(feature = "fault-inject")]
        {
            use cnn_stack_nn::ServeBatchFault;
            let plan = Arc::clone(&lock_unpoisoned(&inner.serve_faults));
            match plan.serve_batch_entry(batch_idx) {
                Some(ServeBatchFault::Crash) => {
                    panic!("fault-inject: serve worker crash on batch {batch_idx}");
                }
                Some(ServeBatchFault::Hang) => return self.hang(live),
                Some(ServeBatchFault::Slow(nanos)) => {
                    self.clock.stall(Duration::from_nanos(nanos));
                }
                None => {}
            }
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = batch_idx;

        let batch_size = live.len();
        let inputs: Vec<&Tensor> = live.iter().map(|r| &r.input).collect();
        let ladder = if degraded_route {
            self.degraded
                .as_mut()
                .expect("degraded route checked above")
        } else {
            &mut self.primary
        };
        let run = ladder.run(&inputs);
        drop(inputs);

        if self.deposed() {
            // The watchdog gave up on this batch mid-run, already
            // failed its tickets, and handed the queue to a
            // replacement; responding now would be double-talk.
            return Some(true);
        }
        let done = self.clock.now_ns();
        match run {
            Ok((outputs, info)) => {
                for (r, output) in live.into_iter().zip(outputs) {
                    let latency_ns = done.saturating_sub(r.submitted_ns);
                    let on_time = r.deadline_ns.is_none_or(|d| d >= done);
                    breaker_record(&inner, done, on_time);
                    inner.observe(Metric::ServeLatencyNs, latency_ns);
                    inner.count(Metric::ServeServed, 1);
                    inner.served.fetch_add(1, Ordering::Relaxed);
                    self.slot.served.fetch_add(1, Ordering::Relaxed);
                    r.respond(Outcome::Served(Served {
                        output,
                        latency: Duration::from_nanos(latency_ns),
                        batch_size,
                        demoted: info.demoted,
                        guarded: info.guarded,
                        degraded: degraded_route,
                    }));
                }
            }
            Err(e) => {
                let cause = FailureCause::Engine(e.to_string());
                for r in live {
                    breaker_record(&inner, done, false);
                    inner.count(Metric::ServeFailed, 1);
                    inner.failed.fetch_add(1, Ordering::Relaxed);
                    self.slot.failed.fetch_add(1, Ordering::Relaxed);
                    r.respond(Outcome::Failed(cause.clone()));
                }
            }
        }
        self.slot.end_batch(watchdog_deadline);
        if degraded_route {
            self.slot.degraded_batches.fetch_add(1, Ordering::Relaxed);
            inner.count(Metric::ServeDegradedBatches, 1);
            if let Some(b) = &inner.breaker {
                b.note_degraded_batch();
            }
        }
        self.slot.note_clean();
        self.publish_health();
        Some(true)
    }

    /// An injected hang: the worker wedges with its batch registered
    /// in flight, and only the watchdog can get those tickets
    /// resolved. Manual workers park (so a single-threaded test can
    /// keep driving the clock); threaded workers block until deposed
    /// or shutdown, like a genuinely stuck thread would.
    #[cfg(feature = "fault-inject")]
    fn hang(&mut self, live: Vec<Request>) -> Option<bool> {
        if self.manual {
            self.parked = true;
        } else {
            while !self.deposed() && !self.inner.shutdown.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Dropping `live` is safe: the slot registry holds reply-sender
        // clones, so the watchdog resolves these tickets as BatchHung.
        drop(live);
        Some(true)
    }

    /// Resolves the crashed batch's tickets as typed failures and
    /// extends the crash streak. Runs on whichever thread caught the
    /// panic; the slot outlives the dead worker.
    fn handle_crash(&mut self, msg: String) {
        let now = self.clock.now_ns();
        let n = self.slot.fail_inflight(FailureCause::WorkerCrashed(msg));
        self.slot.abort_batch();
        if n > 0 {
            self.inner.failed.fetch_add(n, Ordering::Relaxed);
            self.slot.failed.fetch_add(n, Ordering::Relaxed);
            self.inner.count(Metric::ServeFailed, n);
            for _ in 0..n {
                breaker_record(&self.inner, now, false);
            }
        }
        self.slot.crashes.fetch_add(1, Ordering::Relaxed);
        self.inner.count(Metric::ServeWorkerCrashes, 1);
        self.slot.note_failure();
    }

    /// Rebuilds both ladders in place from the frozen prepack (a
    /// respawn), folding the dying ladders' engine health into the
    /// base so history survives. Leaves the worker untouched on error.
    fn rebuild(&mut self) -> Result<(), ServeError> {
        let mut base = self.engine_base.clone();
        fold_health(&mut base, &self.primary.health());
        if let Some(d) = &self.degraded {
            fold_health(&mut base, &d.health());
        }
        let primary = self.respawner.primary()?;
        let degraded = self.respawner.degraded()?;
        self.engine_base = base;
        self.primary = primary;
        self.degraded = degraded;
        self.slot.respawns.fetch_add(1, Ordering::Relaxed);
        self.inner.count(Metric::ServeRespawns, 1);
        self.publish_health();
        Ok(())
    }

    fn publish_health(&self) {
        let mut merged = self.engine_base.clone();
        fold_health(&mut merged, &self.primary.health());
        if let Some(d) = &self.degraded {
            fold_health(&mut merged, &d.health());
        }
        self.slot.publish_engine(merged);
        if let Some(b) = &self.inner.breaker {
            self.inner.gauge(Metric::ServeBreakerState, b.state_gauge());
        }
    }
}

/// A threaded worker's life: cycle until the queue closes, catching
/// panics; each crash resolves its batch as typed failures, backs off
/// (capped exponential in the crash streak), and respawns in place
/// with fresh ladders. Exits quietly if the watchdog deposed it.
fn worker_loop(mut worker: Worker) {
    loop {
        if worker.deposed() {
            return;
        }
        match catch_unwind(AssertUnwindSafe(|| worker.cycle(true))) {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(payload) => {
                worker.handle_crash(panic_message(payload));
                loop {
                    std::thread::sleep(worker.slot.backoff(&worker.supervision));
                    if worker.deposed() || worker.inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    match worker.rebuild() {
                        Ok(()) => break,
                        // The rebuild itself failed: treat it like
                        // another crash and back off harder.
                        Err(_) => {
                            worker.slot.note_failure();
                        }
                    }
                }
            }
        }
    }
    worker.publish_health();
}

/// Spawns a replacement thread for a deposed worker's slot. The
/// replacement builds its ladders on its own thread (so the monitor
/// never blocks on session construction), retrying with backoff.
fn spawn_replacement(ctx: &Arc<SupervisorCtx>, slot: Arc<WorkerSlot>) {
    let generation = slot.generation();
    let name = format!("cnn-stack-serve-{}r{}", slot.index, generation);
    let ctx2 = Arc::clone(ctx);
    let handle = spawn_worker(&name, move || {
        let worker = loop {
            if slot.generation() != generation || ctx2.inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            match Worker::fresh(&ctx2, Arc::clone(&slot), generation) {
                Ok(w) => break w,
                Err(_) => {
                    slot.note_failure();
                    std::thread::sleep(slot.backoff(&ctx2.supervision));
                }
            }
        };
        worker.slot.respawns.fetch_add(1, Ordering::Relaxed);
        ctx2.inner.count(Metric::ServeRespawns, 1);
        worker_loop(worker);
    });
    lock_unpoisoned(&ctx.threads).push(handle);
}

/// One hung-batch watchdog sweep: any slot whose in-flight batch has
/// outlived its hang timeout is deposed, its tickets resolved as
/// [`FailureCause::BatchHung`], and a replacement takes over the
/// queue. Returns the number of failovers.
fn sweep(ctx: &Arc<SupervisorCtx>, manual: Option<&Mutex<Worker>>) -> usize {
    let now = ctx.clock.now_ns();
    let mut failovers = 0;
    for slot in &ctx.inner.slots {
        if !slot.is_overdue(now) {
            continue;
        }
        failovers += 1;
        slot.depose();
        let n = slot.fail_inflight(FailureCause::BatchHung);
        slot.abort_batch();
        if n > 0 {
            ctx.inner.failed.fetch_add(n, Ordering::Relaxed);
            slot.failed.fetch_add(n, Ordering::Relaxed);
            ctx.inner.count(Metric::ServeFailed, n);
            for _ in 0..n {
                breaker_record(&ctx.inner, now, false);
            }
        }
        slot.hung_batches.fetch_add(1, Ordering::Relaxed);
        ctx.inner.count(Metric::ServeHungBatches, 1);
        match manual {
            // Manual mode: recycle the one worker in place — unpark it
            // under the new generation with fresh ladders.
            Some(worker_mutex) => {
                let mut worker = lock_unpoisoned(worker_mutex);
                worker.generation = slot.generation();
                worker.parked = false;
                if worker.rebuild().is_err() {
                    worker.slot.note_failure();
                    let backoff = worker.slot.backoff(&ctx.supervision);
                    worker.respawn_at_ns = Some(now.saturating_add(backoff.as_nanos() as u64));
                }
            }
            None => spawn_replacement(ctx, Arc::clone(slot)),
        }
    }
    failovers
}

/// The serving front end; see the [crate docs](crate) for the
/// architecture and an end-to-end example.
pub struct Server {
    cfg: ServeConfig,
    inner: Arc<ServerInner>,
    clock: Arc<dyn Clock>,
    ctx: Arc<SupervisorCtx>,
    tx: Mutex<Option<SyncSender<Request>>>,
    /// Background watchdog thread (threaded servers only).
    monitor: Option<JoinHandle<()>>,
    /// The single worker of a manually-pumped server (`workers == 0`).
    manual: Option<Mutex<Worker>>,
}

impl Server {
    /// Builds the session pool (one ladder per worker, all sharing one
    /// prepack — two ladders per worker when a breaker is configured),
    /// pre-warms every session, and starts the batch workers plus the
    /// supervision monitor. `build_net` must produce
    /// identically-initialised networks — it is called once per session
    /// replica, including respawns after a crash.
    ///
    /// # Errors
    ///
    /// Propagates plan-compilation or session-construction failures.
    pub fn start<F>(cfg: ServeConfig, build_net: F) -> Result<Self, ServeError>
    where
        F: Fn() -> Network + Send + Sync + 'static,
    {
        Self::start_with_clock(cfg, Arc::new(MonotonicClock::new()), build_net)
    }

    /// Like [`start`](Self::start) with an explicit time source; the
    /// deterministic tests pass a [`crate::ManualClock`] together with
    /// `workers == 0` and drive batches via [`pump`](Self::pump) and
    /// the watchdog via [`supervise`](Self::supervise).
    pub fn start_with_clock<F>(
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        build_net: F,
    ) -> Result<Self, ServeError>
    where
        F: Fn() -> Network + Send + Sync + 'static,
    {
        let worker_count = cfg.workers().max(1);
        let (tx, rx) = mpsc::sync_channel::<Request>(cfg.queue_depth());
        let breaker = cfg.breaker().map(|p| Arc::new(CircuitBreaker::new(*p)));
        let inner = Arc::new(ServerInner {
            observer: Observer::for_level(cfg.observer()),
            depth: AtomicI64::new(0),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            slots: (0..worker_count)
                .map(|i| Arc::new(WorkerSlot::new(i)))
                .collect(),
            breaker,
            shutdown: AtomicBool::new(false),
            #[cfg(feature = "fault-inject")]
            serve_faults: Mutex::new(Arc::new(cnn_stack_nn::FaultPlan::new())),
        });
        let batcher = Arc::new(Mutex::new(Batcher::new(
            rx,
            Arc::clone(&clock),
            cfg.batch_policy(),
        )));
        let build_net: Arc<dyn Fn() -> Network + Send + Sync> = Arc::new(build_net);

        // Build every ladder up front on this thread: the first session
        // exports its prepacked panels and all later replicas adopt
        // them, so the whole pool shares one prepack per plan kind.
        // The panel sets are then frozen in the respawner, making
        // post-crash rebuilds adopt-only too.
        let mut primary_panels: Option<PanelSet> = None;
        let mut degraded_panels: Option<PanelSet> = None;
        let mut ladders = Vec::new();
        for _ in 0..worker_count {
            let primary = SessionLadder::build(
                &cfg,
                LadderKind::Primary,
                &*build_net,
                &mut primary_panels,
                &*clock,
            )?;
            let degraded = if inner.breaker.is_some() {
                Some(SessionLadder::build(
                    &cfg,
                    LadderKind::Degraded,
                    &*build_net,
                    &mut degraded_panels,
                    &*clock,
                )?)
            } else {
                None
            };
            ladders.push((primary, degraded));
        }
        let respawner = Arc::new(Respawner {
            cfg: cfg.clone(),
            primary_panels: primary_panels.expect("first ladder exports its panels"),
            degraded_panels,
            build_net,
            clock: Arc::clone(&clock),
        });
        let ctx = Arc::new(SupervisorCtx {
            inner: Arc::clone(&inner),
            batcher: Arc::clone(&batcher),
            respawner: Arc::clone(&respawner),
            clock: Arc::clone(&clock),
            threads: Mutex::new(Vec::new()),
            supervision: *cfg.supervision(),
        });
        let manual_mode = cfg.workers() == 0;
        let mut workers: Vec<Worker> = ladders
            .into_iter()
            .enumerate()
            .map(|(index, (primary, degraded))| Worker {
                slot: Arc::clone(&inner.slots[index]),
                generation: inner.slots[index].generation(),
                batcher: Arc::clone(&batcher),
                primary,
                degraded,
                engine_base: HealthReport::default(),
                inner: Arc::clone(&inner),
                clock: Arc::clone(&clock),
                respawner: Arc::clone(&respawner),
                supervision: *cfg.supervision(),
                manual: manual_mode,
                parked: false,
                respawn_at_ns: None,
            })
            .collect();

        let mut manual = None;
        let mut monitor = None;
        if manual_mode {
            let worker = workers.pop().expect("one manual worker");
            manual = Some(Mutex::new(worker));
        } else {
            let mut handles = lock_unpoisoned(&ctx.threads);
            for worker in workers {
                handles.push(spawn_worker(
                    &format!("cnn-stack-serve-{}", worker.slot.index),
                    move || worker_loop(worker),
                ));
            }
            drop(handles);
            let monitor_ctx = Arc::clone(&ctx);
            monitor = Some(spawn_worker("cnn-stack-serve-monitor", move || {
                while !monitor_ctx.inner.shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(monitor_ctx.supervision.monitor_interval);
                    sweep(&monitor_ctx, None);
                }
            }));
        }
        Ok(Server {
            cfg,
            inner,
            clock,
            ctx,
            tx: Mutex::new(Some(tx)),
            monitor,
            manual,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The server's observer (queue/latency/shed instruments), when the
    /// configured [`cnn_stack_obs::ObsLevel`] is above `Off`.
    pub fn observer(&self) -> Option<&Arc<Observer>> {
        self.inner.observer.as_ref()
    }

    /// Submits a request under the configured default deadline (if
    /// any). Admission control answers immediately: when the bounded
    /// queue is full the returned ticket resolves to
    /// [`Outcome::Shed`]`(`[`ShedReason::QueueFull`]`)` without the
    /// request ever queueing.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] when `input` is not one request of
    /// the configured shape — that is a caller bug, not load shedding.
    pub fn submit(&self, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_opts(input, self.cfg.default_deadline())
    }

    /// Submits with an explicit deadline budget: if the request is
    /// still queued when its batch is assembled `deadline` after
    /// submission, it is shed with [`ShedReason::DeadlineExpired`].
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] as for [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_opts(input, Some(deadline))
    }

    fn submit_opts(&self, input: Tensor, deadline: Option<Duration>) -> Result<Ticket, ServeError> {
        if input.shape().dims() != self.cfg.input_shape() {
            return Err(ServeError::ShapeMismatch {
                want: self.cfg.input_shape().to_vec(),
                got: input.shape().dims().to_vec(),
            });
        }
        let inner = &self.inner;
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        inner.count(Metric::ServeSubmitted, 1);
        let (reply, rx) = mpsc::channel();
        let ticket = Ticket { id, rx };
        let now = self.clock.now_ns();
        let request = Request {
            id,
            input,
            submitted_ns: now,
            deadline_ns: deadline.map(|d| now.saturating_add(d.as_nanos() as u64)),
            reply,
        };
        let tx = lock_unpoisoned(&self.tx);
        match tx.as_ref() {
            None => request.respond(Outcome::Shed(ShedReason::ShuttingDown)),
            Some(tx) => match tx.try_send(request) {
                Ok(()) => {
                    let depth = inner.depth.fetch_add(1, Ordering::Relaxed) + 1;
                    inner.gauge(Metric::ServeQueueDepth, depth);
                }
                Err(TrySendError::Full(request)) => {
                    inner.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                    inner.count(Metric::ServeShedQueueFull, 1);
                    // Queue-full sheds are overload pressure the
                    // breaker should see.
                    breaker_record(inner, now, false);
                    request.respond(Outcome::Shed(ShedReason::QueueFull));
                }
                Err(TrySendError::Disconnected(request)) => {
                    request.respond(Outcome::Shed(ShedReason::ShuttingDown));
                }
            },
        }
        Ok(ticket)
    }

    /// Runs one batch cycle on the caller's thread (manual mode,
    /// `workers == 0`): assembles at most one batch and serves it.
    /// Returns `true` if a batch (or a shed) was processed, `false` if
    /// the queue was empty, the worker is parked on an injected hang,
    /// or a crashed worker is still inside its respawn backoff.
    ///
    /// A panic inside the cycle is caught here exactly like the
    /// threaded supervisor would: the batch's tickets resolve as
    /// [`FailureCause::WorkerCrashed`] and the worker stays down until
    /// its capped-exponential backoff expires on the server clock.
    ///
    /// # Panics
    ///
    /// Panics when the server was started with background workers —
    /// pumping would race them.
    pub fn pump(&self) -> bool {
        let worker_mutex = self
            .manual
            .as_ref()
            .expect("pump requires a manual server (workers == 0)");
        let mut worker = lock_unpoisoned(worker_mutex);
        if let Some(at) = worker.respawn_at_ns {
            if self.clock.now_ns() < at {
                return false;
            }
            worker.respawn_at_ns = None;
            if worker.rebuild().is_err() {
                worker.slot.note_failure();
                let backoff = worker.slot.backoff(&self.ctx.supervision);
                worker.respawn_at_ns = Some(
                    self.clock
                        .now_ns()
                        .saturating_add(backoff.as_nanos() as u64),
                );
                return true;
            }
        }
        match catch_unwind(AssertUnwindSafe(|| worker.cycle(false))) {
            Ok(did_work) => did_work.unwrap_or(false),
            Err(payload) => {
                worker.handle_crash(panic_message(payload));
                let backoff = worker.slot.backoff(&self.ctx.supervision);
                worker.respawn_at_ns = Some(
                    self.clock
                        .now_ns()
                        .saturating_add(backoff.as_nanos() as u64),
                );
                true
            }
        }
    }

    /// Runs one hung-batch watchdog sweep on the caller's thread and
    /// returns how many workers were failed over. Threaded servers
    /// sweep automatically every
    /// [`SupervisionPolicy::monitor_interval`] on a background monitor
    /// thread; manual servers call this from the test after advancing
    /// the [`crate::ManualClock`] past a batch's hang timeout.
    pub fn supervise(&self) -> usize {
        sweep(&self.ctx, self.manual.as_ref())
    }

    /// Current aggregated health snapshot.
    pub fn health(&self) -> ServerHealth {
        let inner = &self.inner;
        let workers: Vec<WorkerHealth> = inner.slots.iter().map(|s| s.health()).collect();
        let breaker = inner.breaker.as_ref().map(|b| b.snapshot());
        ServerHealth {
            submitted: inner.submitted.load(Ordering::Relaxed),
            served: inner.served.load(Ordering::Relaxed),
            shed_queue_full: inner.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: inner.shed_deadline.load(Ordering::Relaxed),
            failed: inner.failed.load(Ordering::Relaxed),
            respawns: workers.iter().map(|w| w.respawns).sum(),
            hung_batches: workers.iter().map(|w| w.hung_batches).sum(),
            degraded_batches: workers.iter().map(|w| w.degraded_batches).sum(),
            breaker_trips: breaker.map(|b| b.trips).unwrap_or(0),
            breaker,
            workers,
        }
    }

    /// Installs a deterministic fault plan into every session of the
    /// manual worker's ladders — the serving end of the engine's
    /// fault-injection harness. Manual mode only.
    ///
    /// # Panics
    ///
    /// Panics on a threaded server.
    #[cfg(feature = "fault-inject")]
    pub fn inject_faults(&self, faults: impl Fn() -> cnn_stack_nn::FaultPlan) {
        let worker = self
            .manual
            .as_ref()
            .expect("inject_faults requires a manual server (workers == 0)");
        let mut worker = lock_unpoisoned(worker);
        worker.primary.inject_faults(&faults);
        if let Some(degraded) = worker.degraded.as_mut() {
            degraded.inject_faults(&faults);
        }
    }

    /// Installs a serve-level fault plan: worker-crash, worker-hang
    /// and slow-batch faults matched by per-worker batch index. Unlike
    /// [`inject_faults`](Self::inject_faults) this reaches threaded
    /// workers too — the chaos bench injects crashes under real load.
    #[cfg(feature = "fault-inject")]
    pub fn inject_serve_faults(&self, faults: cnn_stack_nn::FaultPlan) {
        *lock_unpoisoned(&self.inner.serve_faults) = Arc::new(faults);
    }

    /// Stops accepting work, serves everything already queued, and
    /// joins the workers. Requests submitted afterwards resolve to
    /// [`Outcome::Shed`]`(`[`ShedReason::ShuttingDown`]`)`.
    pub fn shutdown(mut self) -> ServerHealth {
        self.shutdown_in_place();
        self.health()
    }

    fn shutdown_in_place(&mut self) {
        // Dropping the sender lets workers drain the buffer and exit;
        // the shutdown flag releases the monitor and any wedged worker.
        *lock_unpoisoned(&self.tx) = None;
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        // Replacements can spawn while we join, so drain until empty.
        loop {
            let handles: Vec<JoinHandle<()>> =
                lock_unpoisoned(&self.ctx.threads).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for t in handles {
                let _ = t.join();
            }
        }
        if let Some(worker_mutex) = self.manual.as_ref() {
            let mut worker = lock_unpoisoned(worker_mutex);
            // Drain the buffer on this thread. A worker down for crash
            // backoff is rebuilt immediately — shutdown must not leave
            // queued work unresolved; a crash mid-drain stops the
            // drain (remaining tickets resolve ShuttingDown when the
            // queue drops).
            loop {
                if worker.respawn_at_ns.take().is_some() && worker.rebuild().is_err() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| worker.cycle(false))) {
                    Ok(Some(true)) => continue,
                    Ok(_) => break,
                    Err(payload) => {
                        worker.handle_crash(panic_message(payload));
                        break;
                    }
                }
            }
            worker.publish_health();
        }
        // Resolve anything a wedged worker abandoned mid-flight so no
        // ticket is ever lost, even through shutdown.
        for slot in &self.inner.slots {
            let n = slot.fail_inflight(FailureCause::BatchHung);
            if n > 0 {
                self.inner.failed.fetch_add(n, Ordering::Relaxed);
                slot.failed.fetch_add(n, Ordering::Relaxed);
                self.inner.count(Metric::ServeFailed, n);
                slot.abort_batch();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}
