//! The multi-tenant inference server: bounded queue → dynamic batcher
//! → pre-warmed session ladder, with admission control, deadline
//! shedding, and per-request typed outcomes.

use crate::batcher::{BatchEnd, Batcher};
use crate::clock::{Clock, MonotonicClock};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::health::{ServerHealth, WorkerHealth};
use crate::pool::{PanelSet, SessionLadder};
use crate::ticket::{Outcome, Request, Served, ShedReason, Ticket};
use cnn_stack_nn::Network;
use cnn_stack_obs::{Metric, Observer};
use cnn_stack_parallel::spawn_worker;
use cnn_stack_tensor::Tensor;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared between submitters and workers.
struct ServerInner {
    observer: Option<Arc<Observer>>,
    /// Requests currently queued (admission gauge).
    depth: AtomicI64,
    next_id: AtomicU64,
    submitted: AtomicU64,
    served: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    failed: AtomicU64,
    worker_health: Vec<Mutex<WorkerHealth>>,
}

impl ServerInner {
    fn count(&self, m: Metric, n: u64) {
        if let Some(obs) = &self.observer {
            obs.metrics().add(m, n);
        }
    }

    fn observe(&self, m: Metric, v: u64) {
        if let Some(obs) = &self.observer {
            obs.metrics().observe(m, v);
        }
    }

    fn gauge(&self, m: Metric, v: i64) {
        if let Some(obs) = &self.observer {
            obs.metrics().set(m, v);
        }
    }
}

/// One batch worker: drains the shared queue through the batcher and
/// runs batches on its own session ladder.
struct Worker {
    index: usize,
    batcher: Arc<Mutex<Batcher>>,
    ladder: SessionLadder,
    inner: Arc<ServerInner>,
    clock: Arc<dyn Clock>,
    batches: u64,
    served: u64,
    shed_deadline: u64,
    failed: u64,
}

impl Worker {
    /// Runs one batch cycle. `Some(did_work)` while the queue is live;
    /// `None` once every submitter is gone and the queue is drained.
    fn cycle(&mut self, block: bool) -> Option<bool> {
        let batch = {
            let mut batcher = self.batcher.lock().expect("batcher lock");
            batcher.next_batch(block)
        };
        let batch = match batch {
            Ok(b) => b,
            Err(BatchEnd::Empty) => return Some(false),
            Err(BatchEnd::Disconnected) => return None,
        };
        let inner = Arc::clone(&self.inner);
        let depth = inner.depth.fetch_sub(batch.len() as i64, Ordering::Relaxed);
        inner.gauge(Metric::ServeQueueDepth, depth - batch.len() as i64);

        // Shed what can no longer meet its deadline; running it would
        // only burn capacity the live requests need.
        let now = self.clock.now_ns();
        for r in &batch {
            inner.observe(Metric::ServeQueueWaitNs, now.saturating_sub(r.submitted_ns));
        }
        let (live, dead): (Vec<Request>, Vec<Request>) = batch
            .into_iter()
            .partition(|r| r.deadline_ns.is_none_or(|d| d >= now));
        for r in dead {
            inner.count(Metric::ServeShedDeadline, 1);
            inner.shed_deadline.fetch_add(1, Ordering::Relaxed);
            self.shed_deadline += 1;
            r.respond(Outcome::Shed(ShedReason::DeadlineExpired));
        }
        if live.is_empty() {
            self.publish_health();
            return Some(true);
        }

        inner.count(Metric::ServeBatches, 1);
        inner.observe(Metric::ServeBatchOccupancy, live.len() as u64);
        let batch_size = live.len();
        let inputs: Vec<&Tensor> = live.iter().map(|r| &r.input).collect();
        match self.ladder.run(&inputs) {
            Ok((outputs, info)) => {
                let done = self.clock.now_ns();
                for (r, output) in live.into_iter().zip(outputs) {
                    let latency_ns = done.saturating_sub(r.submitted_ns);
                    inner.observe(Metric::ServeLatencyNs, latency_ns);
                    inner.count(Metric::ServeServed, 1);
                    inner.served.fetch_add(1, Ordering::Relaxed);
                    self.served += 1;
                    r.respond(Outcome::Served(Served {
                        output,
                        latency: Duration::from_nanos(latency_ns),
                        batch_size,
                        demoted: info.demoted,
                        guarded: info.guarded,
                    }));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for r in live {
                    inner.count(Metric::ServeFailed, 1);
                    inner.failed.fetch_add(1, Ordering::Relaxed);
                    self.failed += 1;
                    r.respond(Outcome::Failed(msg.clone()));
                }
            }
        }
        self.batches += 1;
        self.publish_health();
        Some(true)
    }

    fn publish_health(&self) {
        *self.inner.worker_health[self.index]
            .lock()
            .expect("health lock") = WorkerHealth {
            worker: self.index,
            batches: self.batches,
            served: self.served,
            shed_deadline: self.shed_deadline,
            failed: self.failed,
            engine: self.ladder.health(),
        };
    }
}

/// The serving front end; see the [crate docs](crate) for the
/// architecture and an end-to-end example.
pub struct Server {
    cfg: ServeConfig,
    inner: Arc<ServerInner>,
    clock: Arc<dyn Clock>,
    tx: Mutex<Option<SyncSender<Request>>>,
    threads: Vec<JoinHandle<()>>,
    /// The single worker of a manually-pumped server (`workers == 0`).
    manual: Option<Mutex<Worker>>,
}

impl Server {
    /// Builds the session pool (one ladder per worker, all sharing one
    /// prepack), pre-warms every session, and starts the batch workers.
    /// `build_net` must produce identically-initialised networks — it
    /// is called once per session replica.
    ///
    /// # Errors
    ///
    /// Propagates plan-compilation or session-construction failures.
    pub fn start<F>(cfg: ServeConfig, build_net: F) -> Result<Self, ServeError>
    where
        F: Fn() -> Network + Send + Sync + 'static,
    {
        Self::start_with_clock(cfg, Arc::new(MonotonicClock::new()), build_net)
    }

    /// Like [`start`](Self::start) with an explicit time source; the
    /// deterministic tests pass a [`crate::ManualClock`] together with
    /// `workers == 0` and drive batches via [`pump`](Self::pump).
    pub fn start_with_clock<F>(
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        build_net: F,
    ) -> Result<Self, ServeError>
    where
        F: Fn() -> Network + Send + Sync + 'static,
    {
        let worker_count = cfg.workers().max(1);
        let (tx, rx) = mpsc::sync_channel::<Request>(cfg.queue_depth());
        let inner = Arc::new(ServerInner {
            observer: Observer::for_level(cfg.observer()),
            depth: AtomicI64::new(0),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            worker_health: (0..worker_count)
                .map(|_| Mutex::new(WorkerHealth::default()))
                .collect(),
        });
        let batcher = Arc::new(Mutex::new(Batcher::new(
            rx,
            Arc::clone(&clock),
            cfg.batch_policy(),
        )));

        // Build every ladder up front on this thread: the first session
        // exports its prepacked panels and all later replicas adopt
        // them, so the whole pool shares one prepack per model.
        let mut shared: Option<PanelSet> = None;
        let mut workers = Vec::new();
        for index in 0..worker_count {
            let ladder = SessionLadder::build(&cfg, &build_net, &mut shared)?;
            workers.push(Worker {
                index,
                batcher: Arc::clone(&batcher),
                ladder,
                inner: Arc::clone(&inner),
                clock: Arc::clone(&clock),
                batches: 0,
                served: 0,
                shed_deadline: 0,
                failed: 0,
            });
        }

        let mut threads = Vec::new();
        let mut manual = None;
        if cfg.workers() == 0 {
            let worker = workers.pop().expect("one manual worker");
            manual = Some(Mutex::new(worker));
        } else {
            for mut worker in workers {
                threads.push(spawn_worker(
                    &format!("cnn-stack-serve-{}", worker.index),
                    move || {
                        // Drain until every submitter is gone; buffered
                        // requests are still served after shutdown
                        // drops the sender.
                        while worker.cycle(true).is_some() {}
                        worker.publish_health();
                    },
                ));
            }
        }
        Ok(Server {
            cfg,
            inner,
            clock,
            tx: Mutex::new(Some(tx)),
            threads,
            manual,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The server's observer (queue/latency/shed instruments), when the
    /// configured [`cnn_stack_obs::ObsLevel`] is above `Off`.
    pub fn observer(&self) -> Option<&Arc<Observer>> {
        self.inner.observer.as_ref()
    }

    /// Submits a request under the configured default deadline (if
    /// any). Admission control answers immediately: when the bounded
    /// queue is full the returned ticket resolves to
    /// [`Outcome::Shed`]`(`[`ShedReason::QueueFull`]`)` without the
    /// request ever queueing.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] when `input` is not one request of
    /// the configured shape — that is a caller bug, not load shedding.
    pub fn submit(&self, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_opts(input, self.cfg.default_deadline())
    }

    /// Submits with an explicit deadline budget: if the request is
    /// still queued when its batch is assembled `deadline` after
    /// submission, it is shed with [`ShedReason::DeadlineExpired`].
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] as for [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_opts(input, Some(deadline))
    }

    fn submit_opts(&self, input: Tensor, deadline: Option<Duration>) -> Result<Ticket, ServeError> {
        if input.shape().dims() != self.cfg.input_shape() {
            return Err(ServeError::ShapeMismatch {
                want: self.cfg.input_shape().to_vec(),
                got: input.shape().dims().to_vec(),
            });
        }
        let inner = &self.inner;
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        inner.count(Metric::ServeSubmitted, 1);
        let (reply, rx) = mpsc::channel();
        let ticket = Ticket { id, rx };
        let now = self.clock.now_ns();
        let request = Request {
            id,
            input,
            submitted_ns: now,
            deadline_ns: deadline.map(|d| now.saturating_add(d.as_nanos() as u64)),
            reply,
        };
        let tx = self.tx.lock().expect("submit lock");
        match tx.as_ref() {
            None => request.respond(Outcome::Shed(ShedReason::ShuttingDown)),
            Some(tx) => match tx.try_send(request) {
                Ok(()) => {
                    let depth = inner.depth.fetch_add(1, Ordering::Relaxed) + 1;
                    inner.gauge(Metric::ServeQueueDepth, depth);
                }
                Err(TrySendError::Full(request)) => {
                    inner.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                    inner.count(Metric::ServeShedQueueFull, 1);
                    request.respond(Outcome::Shed(ShedReason::QueueFull));
                }
                Err(TrySendError::Disconnected(request)) => {
                    request.respond(Outcome::Shed(ShedReason::ShuttingDown));
                }
            },
        }
        Ok(ticket)
    }

    /// Runs one batch cycle on the caller's thread (manual mode,
    /// `workers == 0`): assembles at most one batch and serves it.
    /// Returns `true` if a batch (or a shed) was processed, `false` if
    /// the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics when the server was started with background workers —
    /// pumping would race them.
    pub fn pump(&self) -> bool {
        let worker = self
            .manual
            .as_ref()
            .expect("pump requires a manual server (workers == 0)");
        let mut worker = worker.lock().expect("manual worker lock");
        worker.cycle(false).unwrap_or(false)
    }

    /// Current aggregated health snapshot.
    pub fn health(&self) -> ServerHealth {
        let inner = &self.inner;
        ServerHealth {
            submitted: inner.submitted.load(Ordering::Relaxed),
            served: inner.served.load(Ordering::Relaxed),
            shed_queue_full: inner.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: inner.shed_deadline.load(Ordering::Relaxed),
            failed: inner.failed.load(Ordering::Relaxed),
            workers: inner
                .worker_health
                .iter()
                .map(|w| w.lock().expect("health lock").clone())
                .collect(),
        }
    }

    /// Installs a deterministic fault plan into every session of the
    /// manual worker's ladder — the serving end of the engine's
    /// fault-injection harness. Manual mode only.
    ///
    /// # Panics
    ///
    /// Panics on a threaded server.
    #[cfg(feature = "fault-inject")]
    pub fn inject_faults(&self, faults: impl Fn() -> cnn_stack_nn::FaultPlan) {
        let worker = self
            .manual
            .as_ref()
            .expect("inject_faults requires a manual server (workers == 0)");
        let mut worker = worker.lock().expect("manual worker lock");
        worker.ladder.inject_faults(&faults);
    }

    /// Stops accepting work, serves everything already queued, and
    /// joins the workers. Requests submitted afterwards resolve to
    /// [`Outcome::Shed`]`(`[`ShedReason::ShuttingDown`]`)`.
    pub fn shutdown(mut self) -> ServerHealth {
        self.shutdown_in_place();
        self.health()
    }

    fn shutdown_in_place(&mut self) {
        // Dropping the sender lets workers drain the buffer and exit.
        *self.tx.lock().expect("submit lock") = None;
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(worker) = self.manual.as_ref() {
            let mut worker = worker.lock().expect("manual worker lock");
            while worker.cycle(false).is_some() {}
            worker.publish_health();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}
