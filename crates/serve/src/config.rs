//! The one validating serving configuration.
//!
//! `ServeConfig` gathers every serving-relevant knob that used to be
//! scattered across `ExecConfig` (threads, observer level),
//! `GuardConfig` (guarded execution), and ad-hoc call sites (batching,
//! queueing, deadlines) into a single builder that validates once, at
//! `build()`. A `ServeConfig` in hand is always runnable.

use crate::batcher::BatchPolicy;
use crate::breaker::BreakerPolicy;
use crate::error::ServeError;
use crate::supervisor::SupervisionPolicy;
use cnn_stack_nn::{ConvAlgorithm, ExecConfig, GuardConfig};
use cnn_stack_obs::ObsLevel;
use std::time::Duration;

/// Validated serving configuration; construct via [`ServeConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    input_shape: Vec<usize>,
    max_batch: usize,
    max_delay: Duration,
    queue_depth: usize,
    workers: usize,
    default_deadline: Option<Duration>,
    guard: GuardConfig,
    threads: usize,
    observer: ObsLevel,
    supervision: SupervisionPolicy,
    breaker: Option<BreakerPolicy>,
    memory_budget: Option<usize>,
}

impl ServeConfig {
    /// Starts a builder for requests of the given per-request input
    /// shape (no batch dimension — `[3, 32, 32]` for CIFAR models).
    pub fn builder(input_shape: impl Into<Vec<usize>>) -> ServeConfigBuilder {
        ServeConfigBuilder {
            input_shape: input_shape.into(),
            max_batch: 8,
            max_delay: Duration::from_millis(5),
            queue_depth: 64,
            workers: 1,
            default_deadline: None,
            guard: GuardConfig::default(),
            threads: 1,
            observer: ObsLevel::Metrics,
            supervision: SupervisionPolicy::default(),
            breaker: None,
            memory_budget: None,
        }
    }

    /// Per-request input shape (no batch dimension).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Largest number of requests coalesced into one session run.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Activation-arena envelope for one worker's whole session ladder,
    /// if one was configured.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// The slice of the memory envelope a rung of the given batch size
    /// may claim: arenas grow roughly linearly with batch, so the
    /// envelope is split across the ladder proportionally to batch
    /// size. `None` when no envelope is configured.
    pub(crate) fn rung_budget(&self, batch: usize) -> Option<usize> {
        self.memory_budget.map(|total| {
            let sum: usize = self.ladder_sizes().iter().sum();
            total * batch / sum.max(1)
        })
    }

    /// Longest a batch is held open waiting for co-batchable requests.
    pub fn max_delay(&self) -> Duration {
        self.max_delay
    }

    /// Bounded queue capacity; admission control sheds beyond it.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Batch worker threads (`0` = manual pumping via
    /// [`crate::Server::pump`], for deterministic tests).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Deadline applied to [`crate::Server::submit`] requests, if any.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    /// Guarded-execution policy for the serving sessions.
    pub fn guard(&self) -> GuardConfig {
        self.guard
    }

    /// Intra-session worker threads (the engine's `ExecConfig::threads`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Observability level of the server's own instruments.
    pub fn observer(&self) -> ObsLevel {
        self.observer
    }

    /// Hang-detection and crash-backoff tuning for worker supervision.
    pub fn supervision(&self) -> &SupervisionPolicy {
        &self.supervision
    }

    /// Brownout circuit-breaker policy, if one was configured. `Some`
    /// means the server compiles a second, degraded plan ladder per
    /// worker and swaps onto it while the breaker is open.
    pub fn breaker(&self) -> Option<&BreakerPolicy> {
        self.breaker.as_ref()
    }

    /// The dynamic-batching policy this config encodes.
    pub fn batch_policy(&self) -> BatchPolicy {
        BatchPolicy {
            max_batch: self.max_batch,
            max_delay: self.max_delay,
        }
    }

    /// The engine configuration serving sessions compile against: the
    /// packed im2col path (the fastest measured configuration), with
    /// this config's thread count. Session-level observation stays off —
    /// the server's own instruments cover serving, and per-step tracing
    /// belongs to offline runs.
    pub(crate) fn exec(&self) -> ExecConfig {
        ExecConfig {
            threads: self.threads,
            conv_algo: ConvAlgorithm::Im2col,
            ..ExecConfig::serial()
        }
    }

    /// Session-ladder batch sizes: 1, 4, 16, … capped at `max_batch`
    /// (always including both 1 and `max_batch`). Quarter steps bound
    /// padding waste at 4× in the worst mid-size case while keeping the
    /// replica count — and with it resident weight memory — small.
    pub(crate) fn ladder_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut s = 1usize;
        while s < self.max_batch {
            sizes.push(s);
            s *= 4;
        }
        sizes.push(self.max_batch);
        sizes
    }
}

/// Builder for [`ServeConfig`]; `build()` validates the whole set.
#[derive(Clone, Debug)]
pub struct ServeConfigBuilder {
    input_shape: Vec<usize>,
    max_batch: usize,
    max_delay: Duration,
    queue_depth: usize,
    workers: usize,
    default_deadline: Option<Duration>,
    guard: GuardConfig,
    threads: usize,
    observer: ObsLevel,
    supervision: SupervisionPolicy,
    breaker: Option<BreakerPolicy>,
    memory_budget: Option<usize>,
}

impl ServeConfigBuilder {
    /// Largest number of requests coalesced into one run (≥ 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Longest to hold a batch open for stragglers.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Bounded queue capacity (≥ 1); beyond it, submissions shed with
    /// [`crate::ShedReason::QueueFull`].
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Batch worker threads. `0` disables background workers: batches
    /// run only when [`crate::Server::pump`] is called, which is how
    /// the deterministic tests drive the server with a
    /// [`crate::ManualClock`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Deadline budget applied to every plain `submit` (per-request
    /// deadlines override it).
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Guarded-execution policy for the serving sessions.
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Intra-session worker threads (≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Observability level of the server's instruments
    /// (queue/latency/shed metrics); `ObsLevel::Metrics` by default.
    pub fn observer(mut self, observer: ObsLevel) -> Self {
        self.observer = observer;
        self
    }

    /// Worker-supervision tuning: hang-detection timeout (multiplier ×
    /// expected rung latency, floored), the monitor sweep interval, and
    /// the capped exponential crash-respawn backoff. Supervision itself
    /// is always on; this only tunes it.
    pub fn supervision(mut self, supervision: SupervisionPolicy) -> Self {
        self.supervision = supervision;
        self
    }

    /// Caps the total activation-arena bytes of one worker's session
    /// ladder. The pool splits the envelope across rungs proportionally
    /// to batch size and compiles each rung under its share, so the
    /// plan compiler can demote layers onto smaller-workspace
    /// algorithms where the envelope bites. An envelope that even the
    /// smallest-workspace plans cannot fit fails server construction
    /// with a typed `BudgetInfeasible` carrying the smallest feasible
    /// budget.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Enables the brownout circuit breaker. Each worker additionally
    /// compiles a degraded (throughput-over-fidelity, guards-off) plan
    /// ladder and swaps onto it while the breaker is open; see
    /// [`BreakerPolicy`] for the trip/recovery knobs.
    pub fn breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when any knob is out of range:
    /// empty/zero input shape, `max_batch == 0`, `queue_depth == 0`,
    /// `queue_depth < max_batch` (a full batch could never accumulate),
    /// `threads == 0`, a zero `default_deadline`, a zero
    /// `memory_budget`, or an out-of-range supervision/breaker policy.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        if self.input_shape.is_empty() || self.input_shape.contains(&0) {
            return Err(ServeError::InvalidConfig(format!(
                "input shape {:?} must be non-empty with non-zero extents",
                self.input_shape
            )));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_depth must be at least 1".into(),
            ));
        }
        if self.queue_depth < self.max_batch {
            return Err(ServeError::InvalidConfig(format!(
                "queue_depth {} cannot hold one max_batch {}",
                self.queue_depth, self.max_batch
            )));
        }
        if self.threads == 0 {
            return Err(ServeError::InvalidConfig(
                "threads must be at least 1".into(),
            ));
        }
        if self.default_deadline == Some(Duration::ZERO) {
            return Err(ServeError::InvalidConfig(
                "default_deadline must be positive".into(),
            ));
        }
        if self.memory_budget == Some(0) {
            return Err(ServeError::InvalidConfig(
                "memory_budget must be positive".into(),
            ));
        }
        self.supervision
            .validate()
            .map_err(ServeError::InvalidConfig)?;
        if let Some(breaker) = &self.breaker {
            breaker.validate().map_err(ServeError::InvalidConfig)?;
        }
        Ok(ServeConfig {
            input_shape: self.input_shape,
            max_batch: self.max_batch,
            max_delay: self.max_delay,
            queue_depth: self.queue_depth,
            workers: self.workers,
            default_deadline: self.default_deadline,
            guard: self.guard,
            threads: self.threads,
            observer: self.observer,
            supervision: self.supervision,
            breaker: self.breaker,
            memory_budget: self.memory_budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(ServeConfig::builder([3, 32, 32]).build().is_ok());
        assert!(ServeConfig::builder([]).build().is_err());
        assert!(ServeConfig::builder([3, 0, 32]).build().is_err());
        assert!(ServeConfig::builder([3, 32, 32])
            .max_batch(0)
            .build()
            .is_err());
        assert!(ServeConfig::builder([3, 32, 32])
            .max_batch(16)
            .queue_depth(8)
            .build()
            .is_err());
        assert!(ServeConfig::builder([3, 32, 32])
            .threads(0)
            .build()
            .is_err());
        assert!(ServeConfig::builder([3, 32, 32])
            .default_deadline(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServeConfig::builder([3, 32, 32])
            .supervision(SupervisionPolicy {
                hang_multiplier: 0.5,
                ..SupervisionPolicy::default()
            })
            .build()
            .is_err());
        assert!(ServeConfig::builder([3, 32, 32])
            .breaker(BreakerPolicy {
                trip_miss_rate: 1.5,
                ..BreakerPolicy::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn ladder_is_quarter_stepped_and_capped() {
        let cfg = |mb| {
            ServeConfig::builder([3, 32, 32])
                .max_batch(mb)
                .queue_depth(64)
                .build()
                .expect("a plain max_batch/queue_depth config validates")
        };
        assert_eq!(cfg(1).ladder_sizes(), vec![1]);
        assert_eq!(cfg(4).ladder_sizes(), vec![1, 4]);
        assert_eq!(cfg(8).ladder_sizes(), vec![1, 4, 8]);
        assert_eq!(cfg(16).ladder_sizes(), vec![1, 4, 16]);
        assert_eq!(cfg(20).ladder_sizes(), vec![1, 4, 16, 20]);
    }
}
