//! Time sources for the serving layer.
//!
//! Every time-dependent decision in the server — max-delay batching,
//! deadline shedding, latency measurement — goes through the [`Clock`]
//! trait, so the same batching code runs against wall time in
//! production ([`MonotonicClock`]) and against a test-controlled
//! timeline in the deterministic integration tests ([`ManualClock`]).

use crate::ticket::Request;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a clocked receive returned without a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed with nothing queued.
    Timeout,
    /// Every sender is gone; no request can ever arrive again.
    Disconnected,
}

/// A monotonic nanosecond timeline plus a clocked channel receive.
///
/// `recv_deadline` exists on the trait (rather than the batcher calling
/// `recv_timeout` itself) because *waiting* is part of the timeline:
/// the manual clock simulates the passage of time when the queue runs
/// dry, which is what makes max-delay batching provable in a
/// single-threaded test.
pub trait Clock: std::fmt::Debug + Send + Sync + 'static {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;

    /// Receives the next request, giving up once the clock reaches
    /// `deadline_ns`.
    fn recv_deadline(&self, rx: &Receiver<Request>, deadline_ns: u64)
        -> Result<Request, WaitError>;

    /// Blocks the caller for `dur` of this clock's time: a real sleep
    /// on [`MonotonicClock`], an instantaneous advance on
    /// [`ManualClock`]. This is how the fault injector's slow-batch
    /// stall consumes *simulated* time in the deterministic tests while
    /// consuming *wall* time in a threaded server.
    fn stall(&self, dur: Duration);
}

/// Wall-clock time from a process-local epoch ([`Instant`]-backed).
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn recv_deadline(
        &self,
        rx: &Receiver<Request>,
        deadline_ns: u64,
    ) -> Result<Request, WaitError> {
        let remaining = deadline_ns.saturating_sub(self.now_ns());
        if remaining == 0 {
            // Deadline already passed: drain anything buffered, but
            // don't block.
            return match rx.try_recv() {
                Ok(r) => Ok(r),
                Err(TryRecvError::Empty) => Err(WaitError::Timeout),
                Err(TryRecvError::Disconnected) => Err(WaitError::Disconnected),
            };
        }
        match rx.recv_timeout(Duration::from_nanos(remaining)) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout) => Err(WaitError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(WaitError::Disconnected),
        }
    }

    fn stall(&self, dur: Duration) {
        std::thread::sleep(dur);
    }
}

/// A simulated timeline the test advances by hand.
///
/// Cloning shares the underlying counter, so the copy handed to the
/// server and the copy kept by the test read the same timeline.
///
/// When a clocked receive finds the queue empty before the deadline,
/// the manual clock *jumps to the deadline* and reports a timeout —
/// modelling "no further arrivals until the wait expired" without any
/// real sleeping. That rule is what lets a single-threaded test prove
/// the batcher waited out its full max-delay window: the wait is
/// visible as exactly `max_delay` of simulated time on this clock.
/// Because nothing ever blocks, `ManualClock` is only meaningful with
/// manually-pumped servers (`workers == 0`); a threaded worker would
/// spin through simulated time.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the timeline.
    pub fn advance(&self, by: Duration) {
        self.now.fetch_add(by.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn recv_deadline(
        &self,
        rx: &Receiver<Request>,
        deadline_ns: u64,
    ) -> Result<Request, WaitError> {
        match rx.try_recv() {
            Ok(r) => Ok(r),
            Err(TryRecvError::Empty) => {
                // Simulate waiting out the rest of the window.
                let now = self.now.load(Ordering::SeqCst);
                if deadline_ns > now {
                    self.now.store(deadline_ns, Ordering::SeqCst);
                }
                Err(WaitError::Timeout)
            }
            Err(TryRecvError::Disconnected) => Err(WaitError::Disconnected),
        }
    }

    fn stall(&self, dur: Duration) {
        self.advance(dur);
    }
}
