//! A persistent worker thread pool with panic containment.

use cnn_stack_obs::{Metric, Observer};
use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Why a pool operation could not complete.
///
/// A panicking task never kills a worker thread (bodies run under
/// [`std::panic::catch_unwind`]); instead the panic is recorded and
/// surfaced as [`PoolError::WorkerPanicked`] from the pool operation that
/// observes it — `scope` reports panics from its own batch, and panics
/// from fire-and-forget `execute` tasks surface on the *next* pool
/// operation. The pool itself is never poisoned: after the error is
/// returned the pool accepts new work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The submission channel is closed: the pool is shutting down.
    ShuttingDown,
    /// `count` tasks panicked since the last pool operation; `first`
    /// carries the first panic's payload rendered as a string.
    WorkerPanicked { count: usize, first: String },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ShuttingDown => write!(f, "thread pool is shutting down"),
            PoolError::WorkerPanicked { count, first } => {
                write!(f, "{count} pool task(s) panicked; first payload: {first}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Renders a panic payload (`Box<dyn Any + Send>`) as a string.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared record of panics caught on worker threads.
#[derive(Default)]
struct PanicSink {
    count: AtomicUsize,
    first: Mutex<Option<String>>,
}

impl PanicSink {
    fn record(&self, payload: Box<dyn std::any::Any + Send>) {
        let msg = panic_message(payload);
        {
            let mut slot = self.first.lock();
            if slot.is_none() {
                *slot = Some(msg);
            }
        }
        // Incremented after the payload is stored so a drain that sees
        // count > 0 also sees a payload.
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Takes all recorded panics, resetting the sink.
    fn drain(&self) -> Result<(), PoolError> {
        let count = self.count.swap(0, Ordering::Acquire);
        if count == 0 {
            return Ok(());
        }
        let first = self.first.lock().take().unwrap_or_default();
        Err(PoolError::WorkerPanicked { count, first })
    }
}

/// A fixed-size pool of worker threads executing `'static` tasks.
///
/// [`crate::parallel_for`] forks and joins threads per region, which is
/// what the paper's OpenMP implementation effectively pays for
/// ("OpenMP suffers from some overheads such as threads initialisation
/// and loops scheduling", §IV-D). `ThreadPool` is the amortised
/// alternative used by the experiment runner for coarse-grained jobs such
/// as running independent experiment cells concurrently.
///
/// Task bodies run under `catch_unwind`: a panicking task cannot kill a
/// worker or poison the pool. See [`PoolError`] for how panics surface.
///
/// # Example
///
/// ```
/// use cnn_stack_parallel::ThreadPool;
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let c = Arc::clone(&counter);
///     pool.execute(move || {
///         c.fetch_add(1, Ordering::Relaxed);
///     })
///     .expect("pool is live");
/// }
/// pool.wait().expect("no task panicked");
/// assert_eq!(counter.load(Ordering::Relaxed), 10);
/// ```
/// Spawns a named, long-lived worker thread and hands back its join
/// handle. Unlike [`ThreadPool`] tasks — which are short-lived closures
/// drained from a shared queue — a worker owns its loop for the life of
/// the thread; the serving layer uses this for its batch workers, where
/// each thread owns a session ladder that cannot be shared. The name
/// shows up in panic messages and debuggers, which is the whole point.
///
/// # Panics
///
/// Panics if the OS refuses to spawn the thread.
pub fn spawn_worker<F>(name: &str, f: F) -> JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .unwrap_or_else(|e| panic!("failed to spawn worker thread {name}: {e}"))
}

pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    pending: Mutex<Option<WaitGroup>>,
    panics: Arc<PanicSink>,
    observer: Mutex<Option<Arc<Observer>>>,
}

impl ThreadPool {
    /// Spawns a pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one worker required");
        let (sender, receiver) = unbounded::<Task>();
        let workers = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("cnn-stack-worker-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            pending: Mutex::new(Some(WaitGroup::new())),
            panics: Arc::new(PanicSink::default()),
            observer: Mutex::new(None),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Attaches (or detaches, with `None`) an observer: every task
    /// submitted afterwards counts `pool.tasks_queued` / `pool.tasks_run`
    /// / `pool.worker_busy_ns` / `pool.panics_contained` into its
    /// registry, and the observer is installed as the worker's
    /// thread-local current observer for the duration of each task, so
    /// kernels running inside pool tasks record too.
    pub fn set_observer(&self, obs: Option<Arc<Observer>>) {
        if let Some(o) = &obs {
            o.metrics()
                .set(Metric::PoolWorkers, self.workers.len() as i64);
        }
        *self.observer.lock() = obs;
    }

    /// Wraps a task so its panics are caught and recorded, and `guard`
    /// is released even when the body unwinds (so waiters cannot hang).
    fn contain(&self, task: impl FnOnce() + Send + 'static, guard: WaitGroup) -> Task {
        let sink = Arc::clone(&self.panics);
        let obs = self.observer.lock().clone();
        if let Some(o) = &obs {
            o.metrics().add(Metric::PoolTasksQueued, 1);
        }
        Box::new(move || {
            let started = obs.as_ref().map(|_| std::time::Instant::now());
            {
                // Make the observer current on the worker for the task's
                // duration, so kernel instruments inside the task record.
                let _tls = obs.as_ref().map(|o| cnn_stack_obs::install(o.clone()));
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    if let Some(o) = &obs {
                        o.metrics().add(Metric::PoolPanicsContained, 1);
                    }
                    sink.record(payload);
                }
            }
            if let (Some(o), Some(t)) = (&obs, started) {
                let ns = t.elapsed().as_nanos() as u64;
                o.metrics().add(Metric::PoolTasksRun, 1);
                o.metrics().add(Metric::PoolWorkerBusyNs, ns);
                o.metrics().observe(Metric::PoolTaskNs, ns);
            }
            drop(guard);
        })
    }

    /// Submits a task for execution on some worker.
    ///
    /// Returns [`PoolError::WorkerPanicked`] if previously submitted
    /// tasks panicked since the last pool operation (the new task is
    /// *not* submitted in that case), or [`PoolError::ShuttingDown`] if
    /// the pool is tearing down.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) -> Result<(), PoolError> {
        self.panics.drain()?;
        let guard = self
            .pending
            .lock()
            .as_ref()
            .ok_or(PoolError::ShuttingDown)?
            .clone();
        let task = self.contain(task, guard);
        self.sender
            .as_ref()
            .ok_or(PoolError::ShuttingDown)?
            .send(task)
            .map_err(|_| PoolError::ShuttingDown)
    }

    /// Runs a batch of borrowing tasks to completion before returning.
    ///
    /// Unlike [`execute`](ThreadPool::execute), the closures may borrow
    /// from the caller's stack frame (lifetime `'env`): the call does not
    /// return until every task has finished, so the borrows cannot
    /// outlive their referents. This is what the inference engine uses to
    /// run batch chunks against per-chunk arena slices without cloning.
    ///
    /// If any task in the batch panics, the panic is contained and the
    /// call returns [`PoolError::WorkerPanicked`] *after* every task has
    /// finished — the pool stays usable and subsequent `scope` calls
    /// work. Panics left over from earlier `execute` tasks also surface
    /// here, before the batch is submitted.
    ///
    /// # Example
    ///
    /// ```
    /// use cnn_stack_parallel::ThreadPool;
    ///
    /// let pool = ThreadPool::new(2);
    /// let mut halves = [vec![0u32; 4], vec![0u32; 4]];
    /// let [a, b] = &mut halves;
    /// pool.scope(vec![
    ///     Box::new(|| a.fill(1)),
    ///     Box::new(|| b.fill(2)),
    /// ])
    /// .expect("no task panicked");
    /// assert_eq!(halves[0], [1, 1, 1, 1]);
    /// ```
    pub fn scope<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> Result<(), PoolError> {
        self.panics.drain()?;
        let wg = WaitGroup::new();
        let mut submit_failed = false;
        for task in tasks {
            let guard = wg.clone();
            // SAFETY: the transmute only erases the `'env` lifetime. Every
            // task's WaitGroup guard is dropped when the task finishes
            // (even on panic, via `contain`), and `wg.wait()` below blocks
            // until all guards are gone, so no task (or its borrows)
            // outlives this stack frame. The wait happens on every path
            // out of this function, including submission failure.
            let task: Box<dyn FnOnce() + Send + 'static> =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, _>(task) };
            let task = self.contain(task, guard);
            match self.sender.as_ref() {
                Some(sender) if sender.send(task).is_ok() => {}
                _ => {
                    submit_failed = true;
                    break;
                }
            }
        }
        wg.wait();
        if submit_failed {
            return Err(PoolError::ShuttingDown);
        }
        self.panics.drain()
    }

    /// Blocks until every task submitted so far has finished.
    ///
    /// Returns [`PoolError::WorkerPanicked`] if any of them panicked.
    pub fn wait(&self) -> Result<(), PoolError> {
        let mut slot = self.pending.lock();
        let wg = slot.take().ok_or(PoolError::ShuttingDown)?;
        *slot = Some(WaitGroup::new());
        drop(slot);
        wg.wait();
        self.panics.drain()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join them.
        // Task panics are caught inside the task wrapper, so workers only
        // die if the runtime itself is unwinding; ignore those joins.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} workers)", self.workers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .expect("pool is live");
        }
        pool.wait().expect("no panics");
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_can_be_called_repeatedly() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=3 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .expect("pool is live");
            }
            pool.wait().expect("no panics");
            assert_eq!(counter.load(Ordering::Relaxed), round * 10);
        }
    }

    #[test]
    fn wait_with_no_tasks_returns() {
        let pool = ThreadPool::new(2);
        pool.wait().expect("no panics");
        pool.wait().expect("no panics");
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .expect("pool is live");
            }
            pool.wait().expect("no panics");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn scope_allows_stack_borrows() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                tasks.push(Box::new(move || {
                    for v in chunk.iter_mut() {
                        *v = i + 1;
                    }
                }));
            }
            pool.scope(tasks).expect("no panics");
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 16 + 1);
        }
    }

    #[test]
    fn scope_returns_with_no_tasks() {
        let pool = ThreadPool::new(2);
        pool.scope(Vec::new()).expect("no panics");
    }

    /// The satellite regression test: a panicking closure inside `scope`
    /// neither hangs nor aborts the process; the panic is reported as an
    /// error; and the same pool keeps working afterwards.
    #[test]
    fn scope_survives_panicking_task() {
        let pool = ThreadPool::new(4);
        let mut data = [0u32; 3];
        {
            let [a, b, c] = &mut data;
            let err = pool
                .scope(vec![
                    Box::new(|| *a = 1),
                    Box::new(|| panic!("injected task failure")),
                    Box::new(|| *c = 3),
                ])
                .expect_err("the panicking task must surface as an error");
            match err {
                PoolError::WorkerPanicked { count, first } => {
                    assert_eq!(count, 1);
                    assert!(first.contains("injected task failure"), "payload: {first}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
            let _ = b;
        }
        assert_eq!(data[0], 1, "non-panicking siblings still ran");
        assert_eq!(data[2], 3, "non-panicking siblings still ran");

        // No poisoned state: the pool accepts and completes new batches.
        let mut again = [0u32; 2];
        {
            let [x, y] = &mut again;
            pool.scope(vec![Box::new(|| *x = 7), Box::new(|| *y = 8)])
                .expect("pool recovered after a panicking task");
        }
        assert_eq!(again, [7, 8]);
    }

    /// Panics from fire-and-forget `execute` tasks surface on the next
    /// pool operation instead of being swallowed by the destructor.
    #[test]
    fn execute_panic_surfaces_on_next_operation() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("background failure"))
            .expect("submission itself succeeds");
        let err = pool.wait().expect_err("the panic must be reported");
        assert!(matches!(err, PoolError::WorkerPanicked { count: 1, .. }));
        // Drained: the next operation starts clean.
        pool.wait().expect("sink was drained by the previous wait");
    }

    /// Multiple panics aggregate into a single error with a count.
    #[test]
    fn multiple_panics_are_counted() {
        let pool = ThreadPool::new(4);
        let err = pool
            .scope(vec![
                Box::new(|| panic!("first")),
                Box::new(|| panic!("second")),
                Box::new(|| panic!("third")),
            ])
            .expect_err("panics must be reported");
        match err {
            PoolError::WorkerPanicked { count, .. } => assert_eq!(count, 3),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    /// Dropping a pool with an unobserved panic must not abort: the
    /// worker threads survived the panic, so the joins succeed.
    #[test]
    fn drop_with_unobserved_panic_is_quiet() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("never observed"))
            .expect("submission succeeds");
        drop(pool);
    }

    #[test]
    fn threads_reports_size() {
        assert_eq!(ThreadPool::new(5).threads(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", ThreadPool::new(1)).contains("workers"));
    }

    /// The observer sees every task exactly once — queued == run even
    /// when a task panics — and detaching stops the counting.
    #[test]
    fn observer_counts_tasks_and_panics() {
        use cnn_stack_obs::{Metric, ObsLevel, Observer};
        let pool = ThreadPool::new(2);
        let obs = Observer::for_level(ObsLevel::Metrics).expect("metrics level");
        pool.set_observer(Some(obs.clone()));
        for _ in 0..5 {
            pool.execute(|| {}).expect("pool is live");
        }
        pool.wait().expect("no panics yet");
        let err = pool
            .scope(vec![Box::new(|| panic!("observed failure"))])
            .expect_err("panic surfaces");
        assert!(matches!(err, PoolError::WorkerPanicked { .. }));
        let m = obs.metrics();
        assert_eq!(m.counter(Metric::PoolTasksQueued), 6);
        assert_eq!(m.counter(Metric::PoolTasksRun), 6);
        assert_eq!(m.counter(Metric::PoolPanicsContained), 1);
        assert_eq!(m.gauge(Metric::PoolWorkers), 2);

        pool.set_observer(None);
        pool.execute(|| {}).expect("pool is live");
        pool.wait().expect("no panics");
        assert_eq!(
            m.counter(Metric::PoolTasksRun),
            6,
            "detached pool stops counting"
        );
    }
}
