//! A persistent worker thread pool.

use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use parking_lot::Mutex;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing `'static` tasks.
///
/// [`crate::parallel_for`] forks and joins threads per region, which is
/// what the paper's OpenMP implementation effectively pays for
/// ("OpenMP suffers from some overheads such as threads initialisation
/// and loops scheduling", §IV-D). `ThreadPool` is the amortised
/// alternative used by the experiment runner for coarse-grained jobs such
/// as running independent experiment cells concurrently.
///
/// # Example
///
/// ```
/// use cnn_stack_parallel::ThreadPool;
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let c = Arc::clone(&counter);
///     pool.execute(move || {
///         c.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// pool.wait();
/// assert_eq!(counter.load(Ordering::Relaxed), 10);
/// ```
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    pending: Mutex<Option<WaitGroup>>,
}

impl ThreadPool {
    /// Spawns a pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one worker required");
        let (sender, receiver) = unbounded::<Task>();
        let workers = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("cnn-stack-worker-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            pending: Mutex::new(Some(WaitGroup::new())),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a task for execution on some worker.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        let guard = self
            .pending
            .lock()
            .as_ref()
            .expect("pool is shutting down")
            .clone();
        self.sender
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(move || {
                task();
                drop(guard);
            }))
            .expect("worker channel closed");
    }

    /// Runs a batch of borrowing tasks to completion before returning.
    ///
    /// Unlike [`execute`](ThreadPool::execute), the closures may borrow
    /// from the caller's stack frame (lifetime `'env`): the call does not
    /// return until every task has finished, so the borrows cannot
    /// outlive their referents. This is what the inference engine uses to
    /// run batch chunks against per-chunk arena slices without cloning.
    ///
    /// # Example
    ///
    /// ```
    /// use cnn_stack_parallel::ThreadPool;
    ///
    /// let pool = ThreadPool::new(2);
    /// let mut halves = [vec![0u32; 4], vec![0u32; 4]];
    /// let [a, b] = &mut halves;
    /// pool.scope(vec![
    ///     Box::new(|| a.fill(1)),
    ///     Box::new(|| b.fill(2)),
    /// ]);
    /// assert_eq!(halves[0], [1, 1, 1, 1]);
    /// ```
    pub fn scope<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let wg = WaitGroup::new();
        for task in tasks {
            let guard = wg.clone();
            // SAFETY: the transmute only erases the `'env` lifetime. Every
            // task's WaitGroup guard is dropped when the task finishes, and
            // `wg.wait()` below blocks until all guards are gone, so no
            // task (or its borrows) outlives this stack frame.
            let task: Box<dyn FnOnce() + Send + 'static> =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, _>(task) };
            self.sender
                .as_ref()
                .expect("pool is shutting down")
                .send(Box::new(move || {
                    task();
                    drop(guard);
                }))
                .expect("worker channel closed");
        }
        wg.wait();
    }

    /// Blocks until every task submitted so far has finished.
    pub fn wait(&self) {
        let mut slot = self.pending.lock();
        let wg = slot.take().expect("pool is shutting down");
        *slot = Some(WaitGroup::new());
        drop(slot);
        wg.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join them.
        // Destructors must not fail: join errors (worker panics) are
        // ignored here — the panic has already been reported on stderr.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} workers)", self.workers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_can_be_called_repeatedly() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=3 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), round * 10);
        }
    }

    #[test]
    fn wait_with_no_tasks_returns() {
        let pool = ThreadPool::new(2);
        pool.wait();
        pool.wait();
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn scope_allows_stack_borrows() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                tasks.push(Box::new(move || {
                    for v in chunk.iter_mut() {
                        *v = i + 1;
                    }
                }));
            }
            pool.scope(tasks);
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 16 + 1);
        }
    }

    #[test]
    fn scope_returns_with_no_tasks() {
        let pool = ThreadPool::new(2);
        pool.scope(Vec::new());
    }

    #[test]
    fn threads_reports_size() {
        assert_eq!(ThreadPool::new(5).threads(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", ThreadPool::new(1)).contains("workers"));
    }
}
