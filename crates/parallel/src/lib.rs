//! OpenMP-style shared-memory parallelism.
//!
//! The paper parallelises "the outer for loop of the convolutional layers
//! ... using dynamic scheduling of threads" with a barrier at every layer
//! boundary (§IV-D). This crate reproduces that execution model:
//!
//! * [`parallel_for`] — a fork-join parallel loop over an index range with
//!   OpenMP's three classic schedules ([`Schedule::Static`],
//!   [`Schedule::Dynamic`], [`Schedule::Guided`]).
//! * [`ThreadPool`] — a persistent worker pool for `'static` tasks, used
//!   where fork-join spawn cost must be amortised.
//! * [`RegionStats`] — per-region instrumentation (chunks dispatched, load
//!   imbalance) so the characterisation can quantify scheduling overheads,
//!   which the paper calls out as a first-class effect.
//!
//! # Example
//!
//! ```
//! use cnn_stack_parallel::{parallel_for, Schedule};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let sum = AtomicUsize::new(0);
//! parallel_for(4, 100, Schedule::Dynamic { chunk: 8 }, |range| {
//!     sum.fetch_add(range.len(), Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 100);
//! ```

pub mod panel;
pub mod pool;
pub mod schedule;

pub use panel::{parallel_tiles, DisjointWriter};
pub use pool::{panic_message, spawn_worker, PoolError, ThreadPool};
pub use schedule::{parallel_for, parallel_for_stats, RegionStats, Schedule};
