//! Disjoint-write primitives and panel-grid scheduling for parallel
//! kernels.
//!
//! The packed GEMM engine (and the convolution executors in
//! `cnn-stack-nn`) split one output buffer into provably disjoint
//! regions — one per parallel grain — and let every worker write its own
//! region with no synchronisation, exactly as the paper's OpenMP C code
//! writes disjoint output rows of a shared array. [`DisjointWriter`] is
//! the shared-pointer capability that makes that pattern expressible
//! under the borrow checker, and [`parallel_tiles`] is the 2-D grid
//! driver that dispatches `(row-block, column-panel)` grains over
//! [`parallel_for`].

use crate::schedule::{parallel_for, Schedule};

/// A raw pointer to an output buffer that parallel workers write through,
/// each touching a provably disjoint region (e.g. one output-channel
/// plane, or one MR×NR GEMM tile, per grain).
///
/// # Example
///
/// ```
/// use cnn_stack_parallel::{parallel_for, DisjointWriter, Schedule};
///
/// let mut buf = vec![0.0f32; 16];
/// let w = DisjointWriter::new(&mut buf);
/// let w = &w;
/// parallel_for(2, 4, Schedule::Static, |range| {
///     for i in range {
///         // Grain i owns elements [i*4, i*4+4): ranges never overlap.
///         let s = unsafe { w.slice_mut(i * 4, i * 4 + 4) };
///         s.fill(i as f32);
///     }
/// });
/// assert_eq!(buf[4], 1.0);
/// ```
pub struct DisjointWriter {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: the pointer is only dereferenced through `slice_mut`, whose
// callers guarantee disjoint ranges across threads (enforced by the
// parallel-loop structure: each loop index owns a unique output region).
unsafe impl Sync for DisjointWriter {}
// SAFETY: as above — the writer is a capability for disjoint writes, and
// moving it between threads does not change which ranges are written.
unsafe impl Send for DisjointWriter {}

impl DisjointWriter {
    /// Wraps a mutable buffer for the duration of a parallel region.
    pub fn new(buf: &mut [f32]) -> Self {
        DisjointWriter {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
        }
    }

    /// Total length of the wrapped buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a mutable subslice `[start, end)`.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that concurrently outstanding ranges never
    /// overlap and that the underlying buffer outlives the region (the
    /// borrow in [`new`](Self::new) enforces the lifetime at the call
    /// site).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [f32] {
        debug_assert!(
            start <= end && end <= self.len,
            "disjoint write out of bounds"
        );
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

/// Runs `body(row_block, col_panel)` for every cell of a
/// `row_blocks × col_panels` grid, distributing the flattened grid over
/// `threads` workers.
///
/// This is the scheduling shape of a packed GEMM: the output matrix is
/// cut into row blocks (MC rows) × column panels (NR columns), every
/// grid cell is an independent grain, and dynamic scheduling soaks up
/// the imbalance between edge tiles and interior tiles. With
/// `threads <= 1` the grid runs inline with zero allocation.
pub fn parallel_tiles(
    threads: usize,
    row_blocks: usize,
    col_panels: usize,
    schedule: Schedule,
    body: impl Fn(usize, usize) + Sync,
) {
    let total = row_blocks * col_panels;
    if total == 0 {
        return;
    }
    parallel_for(threads, total, schedule, |range| {
        for idx in range {
            body(idx / col_panels, idx % col_panels);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_disjoint_writes_land() {
        let mut buf = vec![0.0f32; 64];
        {
            let w = DisjointWriter::new(&mut buf);
            assert_eq!(w.len(), 64);
            assert!(!w.is_empty());
            let w = &w;
            parallel_for(4, 16, Schedule::Dynamic { chunk: 1 }, |range| {
                for i in range {
                    // Each grain owns elements [i*4, i*4+4).
                    let s = unsafe { w.slice_mut(i * 4, i * 4 + 4) };
                    for (k, v) in s.iter_mut().enumerate() {
                        *v = (i * 4 + k) as f32;
                    }
                }
            });
        }
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn tile_grid_covers_every_cell_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (rows, cols) = (5, 7);
        let hits: Vec<AtomicUsize> = (0..rows * cols).map(|_| AtomicUsize::new(0)).collect();
        parallel_tiles(3, rows, cols, Schedule::Dynamic { chunk: 2 }, |r, c| {
            hits[r * cols + c].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn empty_grid_is_noop() {
        parallel_tiles(4, 0, 9, Schedule::Static, |_, _| {
            panic!("must not run");
        });
    }
}
