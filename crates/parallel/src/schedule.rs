//! Fork-join parallel loops with OpenMP-style scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An OpenMP loop schedule.
///
/// The paper uses `schedule(dynamic)` for convolution outer loops
/// "because of the different amount of data required to process in each
/// loop" (§IV-D); `Static` and `Guided` are provided for the scheduling
/// ablation benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Each thread receives one contiguous slice of ~`total / threads`
    /// iterations, decided before the loop starts.
    Static,
    /// Threads repeatedly claim fixed-size chunks from a shared counter.
    Dynamic {
        /// Iterations claimed per grab.
        chunk: usize,
    },
    /// Chunk size decays with the remaining work:
    /// `max(remaining / (2·threads), min_chunk)`.
    Guided {
        /// Lower bound on the decaying chunk size.
        min_chunk: usize,
    },
}

impl Default for Schedule {
    /// The paper's choice: dynamic with a 1-iteration chunk.
    fn default() -> Self {
        Schedule::Dynamic { chunk: 1 }
    }
}

/// Instrumentation collected by [`parallel_for_stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Number of chunks dispatched across all threads.
    pub chunks: usize,
    /// Iterations executed by each thread, indexed by thread id.
    pub per_thread_iterations: Vec<usize>,
}

impl RegionStats {
    /// Load imbalance: `max_thread_iters / mean_thread_iters`, 1.0 being a
    /// perfect balance. Returns 1.0 for empty regions.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.per_thread_iterations.iter().sum();
        if total == 0 || self.per_thread_iterations.is_empty() {
            return 1.0;
        }
        let max = *self.per_thread_iterations.iter().max().unwrap() as f64;
        let mean = total as f64 / self.per_thread_iterations.len() as f64;
        max / mean
    }
}

/// Runs `body` over `0..total` across `threads` OS threads with the given
/// schedule, returning when every iteration has completed (the implicit
/// OpenMP barrier at the end of a parallel region).
///
/// With `threads == 1` the loop runs inline with no thread spawn — exactly
/// the serial baseline the paper measures as "1 thread".
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a panic from `body`.
pub fn parallel_for<F>(threads: usize, total: usize, schedule: Schedule, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    // Inline serial fast path: no thread scope and, unlike the stats
    // variant, no per-thread bookkeeping allocation — this keeps
    // arena-backed inference at zero heap allocations per pass.
    assert!(threads > 0, "at least one thread required");
    if threads == 1 {
        if total > 0 {
            body(0..total);
        }
        return;
    }
    let _ = parallel_for_stats(threads, total, schedule, body);
}

/// As [`parallel_for`], additionally returning scheduling statistics.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a panic from `body`.
pub fn parallel_for_stats<F>(
    threads: usize,
    total: usize,
    schedule: Schedule,
    body: F,
) -> RegionStats
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(threads > 0, "at least one thread required");
    if total == 0 {
        return RegionStats {
            chunks: 0,
            per_thread_iterations: vec![0; threads],
        };
    }
    if threads == 1 {
        body(0..total);
        return RegionStats {
            chunks: 1,
            per_thread_iterations: vec![total],
        };
    }

    let chunk_counter = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let body = &body;
    let next_ref = &next;
    let chunk_ref = &chunk_counter;

    let per_thread: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || {
                    let mut done = 0usize;
                    match schedule {
                        Schedule::Static => {
                            // Contiguous block per thread, remainder spread
                            // over the leading threads (OpenMP static).
                            let base = total / threads;
                            let rem = total % threads;
                            let start = tid * base + tid.min(rem);
                            let len = base + usize::from(tid < rem);
                            if len > 0 {
                                chunk_ref.fetch_add(1, Ordering::Relaxed);
                                body(start..start + len);
                                done = len;
                            }
                        }
                        Schedule::Dynamic { chunk } => {
                            let chunk = chunk.max(1);
                            loop {
                                let start = next_ref.fetch_add(chunk, Ordering::Relaxed);
                                if start >= total {
                                    break;
                                }
                                let end = (start + chunk).min(total);
                                chunk_ref.fetch_add(1, Ordering::Relaxed);
                                body(start..end);
                                done += end - start;
                            }
                        }
                        Schedule::Guided { min_chunk } => {
                            let min_chunk = min_chunk.max(1);
                            loop {
                                // CAS loop: claim a chunk proportional to
                                // the remaining work.
                                let mut start = next_ref.load(Ordering::Relaxed);
                                let end = loop {
                                    if start >= total {
                                        break None;
                                    }
                                    let remaining = total - start;
                                    let size = (remaining / (2 * threads)).max(min_chunk);
                                    let end = (start + size).min(total);
                                    match next_ref.compare_exchange_weak(
                                        start,
                                        end,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    ) {
                                        Ok(_) => break Some(end),
                                        Err(cur) => start = cur,
                                    }
                                };
                                let Some(end) = end else { break };
                                chunk_ref.fetch_add(1, Ordering::Relaxed);
                                body(start..end);
                                done += end - start;
                            }
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    RegionStats {
        chunks: chunk_counter.load(Ordering::Relaxed),
        per_thread_iterations: per_thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn covered_exactly_once(threads: usize, total: usize, schedule: Schedule) {
        let hits = Mutex::new(vec![0u32; total]);
        parallel_for(threads, total, schedule, |range| {
            let mut h = hits.lock().unwrap();
            for i in range {
                h[i] += 1;
            }
        });
        let h = hits.into_inner().unwrap();
        assert!(
            h.iter().all(|&c| c == 1),
            "{schedule:?} t={threads} n={total}: {h:?}"
        );
    }

    #[test]
    fn static_covers_every_index_once() {
        for &t in &[1, 2, 3, 4, 8] {
            for &n in &[0, 1, 5, 64, 97] {
                covered_exactly_once(t, n, Schedule::Static);
            }
        }
    }

    #[test]
    fn dynamic_covers_every_index_once() {
        for &t in &[1, 2, 4, 8] {
            for &n in &[0, 1, 13, 100] {
                for &c in &[1, 3, 16] {
                    covered_exactly_once(t, n, Schedule::Dynamic { chunk: c });
                }
            }
        }
    }

    #[test]
    fn guided_covers_every_index_once() {
        for &t in &[2, 4] {
            for &n in &[1, 17, 128] {
                covered_exactly_once(t, n, Schedule::Guided { min_chunk: 2 });
            }
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let stats = parallel_for_stats(1, 50, Schedule::Dynamic { chunk: 4 }, |_| {});
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.per_thread_iterations, vec![50]);
    }

    #[test]
    fn zero_iterations_is_noop() {
        let stats = parallel_for_stats(4, 0, Schedule::Static, |_| panic!("must not run"));
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn dynamic_chunk_counts() {
        let stats = parallel_for_stats(2, 100, Schedule::Dynamic { chunk: 10 }, |_| {});
        assert_eq!(stats.chunks, 10);
        let total: usize = stats.per_thread_iterations.iter().sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn static_chunk_count_equals_threads() {
        let stats = parallel_for_stats(4, 100, Schedule::Static, |_| {});
        assert_eq!(stats.chunks, 4);
        assert_eq!(stats.per_thread_iterations, vec![25, 25, 25, 25]);
    }

    #[test]
    fn static_remainder_spread() {
        let stats = parallel_for_stats(4, 10, Schedule::Static, |_| {});
        let mut per = stats.per_thread_iterations.clone();
        per.sort_unstable();
        assert_eq!(per, vec![2, 2, 3, 3]);
    }

    #[test]
    fn imbalance_metric() {
        let balanced = RegionStats {
            chunks: 2,
            per_thread_iterations: vec![50, 50],
        };
        assert!((balanced.imbalance() - 1.0).abs() < 1e-12);
        let skewed = RegionStats {
            chunks: 2,
            per_thread_iterations: vec![90, 10],
        };
        assert!((skewed.imbalance() - 1.8).abs() < 1e-12);
        assert_eq!(RegionStats::default().imbalance(), 1.0);
    }

    #[test]
    fn results_are_deterministic_for_commutative_reductions() {
        // Each index writes to its own slot, so the result is identical
        // regardless of schedule.
        let mut expect = vec![0.0f64; 200];
        for (i, v) in expect.iter_mut().enumerate() {
            *v = (i as f64).sqrt();
        }
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 7 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            let out = Mutex::new(vec![0.0f64; 200]);
            parallel_for(4, 200, schedule, |range| {
                let vals: Vec<(usize, f64)> = range.map(|i| (i, (i as f64).sqrt())).collect();
                let mut o = out.lock().unwrap();
                for (i, v) in vals {
                    o[i] = v;
                }
            });
            assert_eq!(out.into_inner().unwrap(), expect);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        parallel_for(0, 10, Schedule::Static, |_| {});
    }

    #[test]
    fn default_schedule_is_dynamic_one() {
        assert_eq!(Schedule::default(), Schedule::Dynamic { chunk: 1 });
    }
}
