//! Planted-prototype synthetic dataset with CIFAR-10 geometry.

use cnn_stack_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Image side length (CIFAR-10: 32).
pub const IMAGE_SIZE: usize = 32;
/// Colour channels (RGB).
pub const CHANNELS: usize = 3;
/// Class count (CIFAR-10: 10).
pub const NUM_CLASSES: usize = 10;
/// Elements per image.
const IMAGE_ELEMS: usize = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;

/// Configuration for [`SyntheticCifar`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetConfig {
    /// Training images (CIFAR-10: 50,000).
    pub train_size: usize,
    /// Test images (CIFAR-10: 10,000).
    pub test_size: usize,
    /// Standard deviation of per-pixel noise added to the prototypes.
    pub noise_std: f32,
    /// RNG seed; the whole dataset is a pure function of the config.
    pub seed: u64,
}

impl DatasetConfig {
    /// Full CIFAR-10-sized dataset (50k/10k). ~737 MB of f32; use only
    /// for the large-scale harness runs.
    pub fn full(seed: u64) -> Self {
        DatasetConfig {
            train_size: 50_000,
            test_size: 10_000,
            noise_std: 0.3,
            seed,
        }
    }

    /// Small dataset for experiments (2,048/512).
    pub fn small(seed: u64) -> Self {
        DatasetConfig {
            train_size: 2_048,
            test_size: 512,
            noise_std: 0.3,
            seed,
        }
    }

    /// Minimal dataset for unit tests (160/80).
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig {
            train_size: 160,
            test_size: 80,
            noise_std: 0.3,
            seed,
        }
    }
}

/// A deterministic, learnable, CIFAR-10-shaped dataset.
///
/// Each class `c` owns a smooth prototype built from a coarse random grid
/// (low-frequency structure a 3×3-kernel CNN can detect) bilinearly
/// upsampled to 32×32. Sample `i` of class `c` is
/// `prototype_c + noise_std · ε_i`, clamped to the normalised image range.
pub struct SyntheticCifar {
    config: DatasetConfig,
    prototypes: Vec<f32>,
    train_images: Vec<f32>,
    train_labels: Vec<usize>,
    test_images: Vec<f32>,
    test_labels: Vec<usize>,
}

impl std::fmt::Debug for SyntheticCifar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SyntheticCifar(train={}, test={}, seed={})",
            self.config.train_size, self.config.test_size, self.config.seed
        )
    }
}

impl SyntheticCifar {
    /// Generates the dataset described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if either split is empty.
    pub fn new(config: DatasetConfig) -> Self {
        assert!(
            config.train_size > 0 && config.test_size > 0,
            "both splits must be non-empty"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let prototypes = make_prototypes(&mut rng);
        let (train_images, train_labels) =
            make_split(&prototypes, config.train_size, config.noise_std, &mut rng);
        let (test_images, test_labels) =
            make_split(&prototypes, config.test_size, config.noise_std, &mut rng);
        SyntheticCifar {
            config,
            prototypes,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of training images.
    pub fn train_len(&self) -> usize {
        self.config.train_size
    }

    /// Number of test images.
    pub fn test_len(&self) -> usize {
        self.config.test_size
    }

    /// The clean class prototypes as a `[10, 3, 32, 32]` tensor.
    pub fn prototypes(&self) -> Tensor {
        Tensor::from_vec(
            [NUM_CLASSES, CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
            self.prototypes.clone(),
        )
    }

    /// One training mini-batch, wrapping around the split. Batches tile
    /// the training set deterministically: batch `b` starts at image
    /// `b * batch_size mod train_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or larger than the training split.
    pub fn train_batch(&self, batch_index: usize, batch_size: usize) -> (Tensor, Vec<usize>) {
        self.batch_from(
            &self.train_images,
            &self.train_labels,
            batch_index,
            batch_size,
        )
    }

    /// One test mini-batch (same tiling contract as
    /// [`train_batch`](Self::train_batch)).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or larger than the test split.
    pub fn test_batch(&self, batch_index: usize, batch_size: usize) -> (Tensor, Vec<usize>) {
        self.batch_from(
            &self.test_images,
            &self.test_labels,
            batch_index,
            batch_size,
        )
    }

    /// The whole test split as one tensor (use for final accuracy).
    pub fn test_set(&self) -> (Tensor, Vec<usize>) {
        (
            Tensor::from_vec(
                [self.config.test_size, CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
                self.test_images.clone(),
            ),
            self.test_labels.clone(),
        )
    }

    fn batch_from(
        &self,
        images: &[f32],
        labels: &[usize],
        batch_index: usize,
        batch_size: usize,
    ) -> (Tensor, Vec<usize>) {
        let n = labels.len();
        assert!(
            batch_size > 0 && batch_size <= n,
            "bad batch size {batch_size}"
        );
        let mut data = Vec::with_capacity(batch_size * IMAGE_ELEMS);
        let mut out_labels = Vec::with_capacity(batch_size);
        for i in 0..batch_size {
            let idx = (batch_index * batch_size + i) % n;
            data.extend_from_slice(&images[idx * IMAGE_ELEMS..(idx + 1) * IMAGE_ELEMS]);
            out_labels.push(labels[idx]);
        }
        (
            Tensor::from_vec([batch_size, CHANNELS, IMAGE_SIZE, IMAGE_SIZE], data),
            out_labels,
        )
    }
}

/// Builds one smooth prototype per class: an 8×8 random grid per channel,
/// bilinearly upsampled to 32×32, in `[-1, 1]`.
#[allow(clippy::needless_range_loop)]
fn make_prototypes(rng: &mut ChaCha8Rng) -> Vec<f32> {
    const GRID: usize = 8;
    let mut protos = vec![0.0f32; NUM_CLASSES * IMAGE_ELEMS];
    for class in 0..NUM_CLASSES {
        for ch in 0..CHANNELS {
            let coarse: Vec<f32> = (0..GRID * GRID).map(|_| rng.gen_range(-1.0..1.0)).collect();
            for y in 0..IMAGE_SIZE {
                for x in 0..IMAGE_SIZE {
                    // Bilinear sample of the coarse grid.
                    let fy = y as f32 / IMAGE_SIZE as f32 * (GRID - 1) as f32;
                    let fx = x as f32 / IMAGE_SIZE as f32 * (GRID - 1) as f32;
                    let (y0, x0) = (fy as usize, fx as usize);
                    let (y1, x1) = ((y0 + 1).min(GRID - 1), (x0 + 1).min(GRID - 1));
                    let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                    let v = coarse[y0 * GRID + x0] * (1.0 - dy) * (1.0 - dx)
                        + coarse[y0 * GRID + x1] * (1.0 - dy) * dx
                        + coarse[y1 * GRID + x0] * dy * (1.0 - dx)
                        + coarse[y1 * GRID + x1] * dy * dx;
                    protos
                        [(class * CHANNELS + ch) * IMAGE_SIZE * IMAGE_SIZE + y * IMAGE_SIZE + x] =
                        v;
                }
            }
        }
    }
    protos
}

fn make_split(
    prototypes: &[f32],
    count: usize,
    noise_std: f32,
    rng: &mut ChaCha8Rng,
) -> (Vec<f32>, Vec<usize>) {
    let mut images = Vec::with_capacity(count * IMAGE_ELEMS);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % NUM_CLASSES;
        labels.push(class);
        let proto = &prototypes[class * IMAGE_ELEMS..(class + 1) * IMAGE_ELEMS];
        for &p in proto {
            // Box–Muller normal noise.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let noise = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            images.push((p + noise_std * noise).clamp(-2.0, 2.0));
        }
    }
    (images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_cifar10() {
        let d = SyntheticCifar::new(DatasetConfig::tiny(1));
        let (x, y) = d.train_batch(0, 16);
        assert_eq!(x.shape().dims(), &[16, 3, 32, 32]);
        assert_eq!(y.len(), 16);
        assert!(y.iter().all(|&c| c < NUM_CLASSES));
        let (tx, ty) = d.test_set();
        assert_eq!(tx.shape().dims(), &[80, 3, 32, 32]);
        assert_eq!(ty.len(), 80);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticCifar::new(DatasetConfig::tiny(7));
        let b = SyntheticCifar::new(DatasetConfig::tiny(7));
        let c = SyntheticCifar::new(DatasetConfig::tiny(8));
        assert_eq!(a.train_batch(3, 8).0, b.train_batch(3, 8).0);
        assert_ne!(a.train_batch(3, 8).0, c.train_batch(3, 8).0);
    }

    #[test]
    fn classes_are_balanced() {
        let d = SyntheticCifar::new(DatasetConfig::tiny(2));
        let (_, labels) = d.test_set();
        for class in 0..NUM_CLASSES {
            let count = labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, 80 / NUM_CLASSES);
        }
    }

    #[test]
    fn batches_tile_the_split() {
        let d = SyntheticCifar::new(DatasetConfig::tiny(3));
        // 160 train images, batch 32 → batch 5 wraps to batch 0.
        let (b0, l0) = d.train_batch(0, 32);
        let (b5, l5) = d.train_batch(5, 32);
        assert_eq!(b0, b5);
        assert_eq!(l0, l5);
        let (b1, _) = d.train_batch(1, 32);
        assert_ne!(b0, b1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn samples_cluster_around_prototypes() {
        // A sample must be closer to its own prototype than to a random
        // other prototype (the dataset is learnable).
        let d = SyntheticCifar::new(DatasetConfig::tiny(4));
        let protos = d.prototypes();
        let (x, labels) = d.train_batch(0, 32);
        let mut correct = 0;
        for i in 0..32 {
            let img = &x.data()[i * IMAGE_ELEMS..(i + 1) * IMAGE_ELEMS];
            let mut best_class = 0;
            let mut best_dist = f32::INFINITY;
            for c in 0..NUM_CLASSES {
                let p = &protos.data()[c * IMAGE_ELEMS..(c + 1) * IMAGE_ELEMS];
                let dist: f32 = img.iter().zip(p).map(|(a, b)| (a - b).powi(2)).sum();
                if dist < best_dist {
                    best_dist = dist;
                    best_class = c;
                }
            }
            if best_class == labels[i] {
                correct += 1;
            }
        }
        assert!(correct >= 30, "only {correct}/32 nearest-prototype matches");
    }

    #[test]
    fn values_are_bounded() {
        let d = SyntheticCifar::new(DatasetConfig::tiny(5));
        let (x, _) = d.test_set();
        assert!(x.max() <= 2.0 && x.min() >= -2.0);
    }

    #[test]
    #[should_panic(expected = "bad batch size")]
    fn oversized_batch_rejected() {
        let d = SyntheticCifar::new(DatasetConfig::tiny(6));
        let _ = d.train_batch(0, 1000);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_split_rejected() {
        let _ = SyntheticCifar::new(DatasetConfig {
            train_size: 0,
            test_size: 1,
            noise_std: 0.1,
            seed: 0,
        });
    }
}
