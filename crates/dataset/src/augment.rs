//! Training-time augmentation: the paper pads each image with 2 pixels of
//! zeros and takes a random 32×32 crop (§IV).

use cnn_stack_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Pads every image in an `[n, c, h, w]` batch with `pad` zero pixels on
/// each side and extracts a random `h × w` crop per image.
///
/// A fresh deterministic stream is derived from `seed`, so augmentation is
/// reproducible across runs.
///
/// # Panics
///
/// Panics if the batch is not rank-4.
///
/// # Example
///
/// ```
/// use cnn_stack_dataset::pad_and_crop;
/// use cnn_stack_tensor::Tensor;
///
/// let batch = Tensor::ones([4, 3, 32, 32]);
/// let out = pad_and_crop(&batch, 2, 0);
/// assert_eq!(out.shape().dims(), &[4, 3, 32, 32]);
/// ```
pub fn pad_and_crop(batch: &Tensor, pad: usize, seed: u64) -> Tensor {
    let (n, c, h, w) = batch.shape().nchw();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Tensor::zeros([n, c, h, w]);
    let src = batch.data();
    let dst = out.data_mut();
    for img in 0..n {
        // Crop offset within the padded image, in [0, 2*pad].
        let oy = rng.gen_range(0..=2 * pad) as isize - pad as isize;
        let ox = rng.gen_range(0..=2 * pad) as isize - pad as isize;
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            for y in 0..h {
                let sy = y as isize + oy;
                if sy < 0 || sy as usize >= h {
                    continue; // stays zero (padding)
                }
                for x in 0..w {
                    let sx = x as isize + ox;
                    if sx < 0 || sx as usize >= w {
                        continue;
                    }
                    dst[base + y * w + x] = src[base + sy as usize * w + sx as usize];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_shape() {
        let b = Tensor::ones([3, 3, 8, 8]);
        assert_eq!(pad_and_crop(&b, 2, 0).shape().dims(), &[3, 3, 8, 8]);
    }

    #[test]
    fn zero_pad_is_identity_shift_range() {
        // With pad = 0 the only legal offset is (0, 0): identity.
        let b = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        assert_eq!(pad_and_crop(&b, 0, 5), b);
    }

    #[test]
    fn deterministic_per_seed() {
        let b = Tensor::from_fn([4, 3, 8, 8], |i| (i % 17) as f32);
        assert_eq!(pad_and_crop(&b, 2, 9), pad_and_crop(&b, 2, 9));
    }

    #[test]
    fn some_seed_produces_a_shift() {
        // Over several seeds, at least one must move the content.
        let b = Tensor::from_fn([1, 1, 8, 8], |i| i as f32);
        let moved = (0..20).any(|s| pad_and_crop(&b, 2, s) != b);
        assert!(moved);
    }

    #[test]
    fn shifted_pixels_are_zero_filled() {
        // An all-ones image after any crop has zeros only at borders; the
        // total mass can only decrease.
        let b = Tensor::ones([8, 1, 8, 8]);
        let out = pad_and_crop(&b, 2, 3);
        assert!(out.sum() <= b.sum());
        assert!(out.min() >= 0.0 && out.max() <= 1.0);
    }
}
