//! Synthetic CIFAR-10-shaped dataset.
//!
//! The paper trains and evaluates on CIFAR-10 (§IV): 60,000 RGB images of
//! 32×32 pixels in 10 classes, split 50,000/10,000, augmented with 2-pixel
//! zero padding and random 32×32 crops. Real CIFAR-10 is not available in
//! this environment, so this crate provides a **geometry-identical,
//! learnable substitute** (documented in `DESIGN.md` §5): each class owns
//! a smooth planted prototype; samples are prototype + structured noise.
//! Every tensor shape, data volume and augmentation step matches the
//! paper's pipeline, so the compute-characterisation experiments exercise
//! exactly the same code paths, and the train/prune/fine-tune loops
//! genuinely learn.
//!
//! # Example
//!
//! ```
//! use cnn_stack_dataset::{DatasetConfig, SyntheticCifar};
//!
//! let data = SyntheticCifar::new(DatasetConfig::tiny(0));
//! let (images, labels) = data.train_batch(0, 8);
//! assert_eq!(images.shape().dims(), &[8, 3, 32, 32]);
//! assert_eq!(labels.len(), 8);
//! ```

pub mod augment;
pub mod synthetic;

pub use augment::pad_and_crop;
pub use synthetic::{DatasetConfig, SyntheticCifar};
