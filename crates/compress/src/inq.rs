//! Incremental Network Quantisation (Zhou et al., the paper's [18]):
//! "the number of bits used to represent each weight is reduced"
//! (§III-C), by constraining weights to powers of two (plus zero) so
//! inference multiplications become shifts.
//!
//! INQ proceeds incrementally: quantise the largest-magnitude fraction of
//! each layer's weights (they matter most and move least), retrain the
//! rest, and repeat until everything is quantised. [`inq_step`] performs
//! one such partition-and-quantise round (freezing quantised weights via
//! the mask-free convention of keeping them fixed points of the
//! projection); [`inq_quantise`] runs the schedule to completion.

use crate::visit::for_each_weight_param;
use cnn_stack_nn::Network;
use cnn_stack_tensor::Tensor;

/// Summary of an INQ pass.
#[derive(Clone, Debug, PartialEq)]
pub struct InqReport {
    /// Weights quantised to powers of two (or zero).
    pub quantised_weights: usize,
    /// Total weights considered.
    pub total_weights: usize,
    /// Codebook bit-width (including the zero/sign encoding).
    pub bits: u32,
    /// Mean squared quantisation error.
    pub mse: f64,
}

/// The power-of-two codebook for a tensor: `±2^e` for
/// `e ∈ [e_max − levels + 1, e_max]`, plus zero, where `2^e_max` is the
/// largest power of two not exceeding `max|w|`.
fn codebook_exponent_range(max_mag: f32, levels: u32) -> (i32, i32) {
    let e_max = if max_mag > 0.0 {
        max_mag.log2().floor() as i32
    } else {
        0
    };
    (e_max - levels as i32 + 1, e_max)
}

/// Quantises a single value to the nearest codebook entry.
fn quantise_value(v: f32, e_lo: i32, e_hi: i32) -> f32 {
    if v == 0.0 {
        return 0.0;
    }
    let mag = v.abs();
    // Values below half the smallest power snap to zero.
    let lowest = (2.0f32).powi(e_lo);
    if mag < lowest * 0.5 {
        return 0.0;
    }
    let e = mag.log2().round().clamp(e_lo as f32, e_hi as f32) as i32;
    let q = (2.0f32).powi(e);
    if v < 0.0 {
        -q
    } else {
        q
    }
}

/// Quantises the `fraction` largest-magnitude entries of a tensor to the
/// power-of-two codebook with `levels` magnitude levels. Returns
/// `(quantised_count, squared_error)`.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or `levels == 0`.
pub fn inq_step_tensor(weights: &mut Tensor, fraction: f64, levels: u32) -> (usize, f64) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    assert!(levels > 0, "at least one magnitude level required");
    let n = weights.len();
    let k = ((n as f64) * fraction).round() as usize;
    if k == 0 {
        return (0, 0.0);
    }
    let max_mag = weights.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let (e_lo, e_hi) = codebook_exponent_range(max_mag, levels);
    // Threshold magnitude selecting the top-k.
    let mut mags: Vec<f32> = weights.data().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).expect("no NaN weights"));
    let threshold = mags[k - 1];
    let mut err = 0.0f64;
    let mut count = 0usize;
    for v in weights.data_mut() {
        if v.abs() >= threshold && count < k {
            let q = quantise_value(*v, e_lo, e_hi);
            err += ((*v - q) as f64).powi(2);
            *v = q;
            count += 1;
        }
    }
    (count, err)
}

fn for_each_weight_tensor(net: &mut Network, mut f: impl FnMut(&mut Tensor)) {
    for_each_weight_param(net, |_, param| f(&mut param.value));
}

/// One INQ round over the whole network: quantises the top `fraction` of
/// each weight tensor. Call between fine-tuning epochs for the
/// incremental schedule ([50 %, 75 %, 87.5 %, 100 %] in the original
/// paper).
pub fn inq_step(net: &mut Network, fraction: f64, levels: u32) -> InqReport {
    let mut quantised = 0usize;
    let mut total = 0usize;
    let mut err = 0.0f64;
    for_each_weight_tensor(net, |w| {
        total += w.len();
        let (c, e) = inq_step_tensor(w, fraction, levels);
        quantised += c;
        err += e;
    });
    InqReport {
        quantised_weights: quantised,
        total_weights: total,
        // levels magnitudes + sign + zero: ceil(log2(2*levels + 1)).
        bits: (2 * levels + 1).next_power_of_two().trailing_zeros(),
        mse: if quantised == 0 {
            0.0
        } else {
            err / quantised as f64
        },
    }
}

/// Quantises every weight to the power-of-two codebook in one shot
/// (`fraction = 1`), the terminal state of the INQ schedule.
pub fn inq_quantise(net: &mut Network, levels: u32) -> InqReport {
    inq_step(net, 1.0, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_models::vgg16_width;
    use cnn_stack_nn::{ExecConfig, Phase};

    #[test]
    fn values_snap_to_powers_of_two() {
        let mut w = Tensor::from_vec([1, 6], vec![0.9, -0.26, 0.13, -0.51, 0.001, 0.0]);
        inq_step_tensor(&mut w, 1.0, 4);
        for &v in w.data() {
            if v != 0.0 {
                let e = v.abs().log2();
                assert!((e - e.round()).abs() < 1e-6, "{v} is not a power of two");
            }
        }
        // 0.9 → 1.0? No: e_max = floor(log2(0.9)) = -1 → codebook tops at
        // 0.5; 0.9 clamps to 0.5.
        assert_eq!(w.data()[0], 0.5);
        assert_eq!(w.data()[1], -0.25);
        // Tiny value snaps to zero.
        assert_eq!(w.data()[4], 0.0);
    }

    #[test]
    fn partial_step_quantises_only_the_largest() {
        let mut w = Tensor::from_vec([1, 4], vec![0.8, 0.1, -0.6, 0.05]);
        let (count, _) = inq_step_tensor(&mut w, 0.5, 4);
        assert_eq!(count, 2);
        // The two small weights are untouched.
        assert_eq!(w.data()[1], 0.1);
        assert_eq!(w.data()[3], 0.05);
        // The two large ones are powers of two now.
        assert_eq!(w.data()[0], 0.5);
        assert_eq!(w.data()[2], -0.5);
    }

    #[test]
    fn quantisation_is_idempotent() {
        let mut w = Tensor::from_fn([8, 8], |i| ((i as f32) * 0.11).sin());
        inq_step_tensor(&mut w, 1.0, 4);
        let once = w.clone();
        let (_, err) = inq_step_tensor(&mut w, 1.0, 4);
        assert!(w.allclose(&once, 0.0));
        assert_eq!(err, 0.0);
    }

    #[test]
    fn more_levels_less_error() {
        let make = || Tensor::from_fn([16, 32], |i| ((i * 48271) % 997) as f32 / 500.0 - 1.0);
        let mut coarse = make();
        let mut fine = make();
        let (_, e2) = inq_step_tensor(&mut coarse, 1.0, 2);
        let (_, e6) = inq_step_tensor(&mut fine, 1.0, 6);
        assert!(e6 < e2);
    }

    #[test]
    fn network_quantises_and_runs() {
        let mut model = vgg16_width(10, 0.1);
        let report = inq_quantise(&mut model.network, 7);
        assert_eq!(report.quantised_weights, report.total_weights);
        assert_eq!(report.bits, 4); // 15 codebook entries fit in 4 bits
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn incremental_schedule_reaches_full_coverage() {
        let mut model = vgg16_width(10, 0.05);
        for fraction in [0.5, 0.75, 0.875, 1.0] {
            inq_step(&mut model.network, fraction, 4);
        }
        // Every weight is now on the codebook: a final full step is free.
        let report = inq_step(&mut model.network, 1.0, 4);
        assert_eq!(report.mse, 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let mut w = Tensor::ones([2, 2]);
        let _ = inq_step_tensor(&mut w, 1.5, 4);
    }
}
