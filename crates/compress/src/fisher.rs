//! Fisher channel pruning (Theis et al. / Molchanov et al.; the paper's
//! §III-B / §V-B.2 technique).
//!
//! The effect of removing a channel on the loss is approximated by a
//! second-order Taylor expansion whose expectation is the Fisher
//! information of the channel's gate. Following Theis et al., the
//! per-channel signal is the squared gradient of the loss with respect to
//! the channel's batch-norm scale, accumulated over fine-tuning steps.
//! A penalty `β · FLOPs(channel)` is added so that "highly expensive
//! channels are pruned first"; the channel with the lowest penalised
//! saliency is removed every `prune_every` steps, and the network is
//! recast as a smaller **dense** network (structural surgery, no sparse
//! format needed — the root of channel pruning's across-the-board win in
//! Fig. 4/5).

use cnn_stack_models::PruningPlan;
use cnn_stack_nn::Network;

/// Stateful Fisher pruner: accumulates saliency between prune events.
///
/// # Example
///
/// ```
/// use cnn_stack_compress::FisherPruner;
/// use cnn_stack_models::vgg16_width;
///
/// let model = vgg16_width(10, 0.2);
/// let pruner = FisherPruner::new(&model.network, &model.plan, 1e-6);
/// assert_eq!(pruner.groups(), model.plan.group_count());
/// ```
#[derive(Debug)]
pub struct FisherPruner {
    /// Accumulated squared gamma-gradients, one vector per group.
    saliency: Vec<Vec<f64>>,
    /// Steps accumulated since the last reset.
    steps: usize,
    /// FLOP penalty coefficient (the paper uses β = 10⁻⁶).
    beta: f64,
    /// Channels pruned so far.
    pruned: usize,
    /// Original prunable channel count.
    original_channels: usize,
    /// Original parameter count (for compression-rate reporting).
    original_params: usize,
}

impl FisherPruner {
    /// Creates a pruner for `net` under `plan` with FLOP penalty `beta`.
    pub fn new(net: &Network, plan: &PruningPlan, beta: f64) -> Self {
        let saliency = (0..plan.group_count())
            .map(|g| vec![0.0; plan.channels(net, g)])
            .collect();
        // Parameter count requires &mut; recompute cheaply from descriptors.
        let original_params: usize = net
            .descriptors(&[1, 3, 32, 32])
            .iter()
            .map(|d| d.weight_elems)
            .sum();
        FisherPruner {
            saliency,
            steps: 0,
            beta,
            pruned: 0,
            original_channels: plan.total_channels(net),
            original_params,
        }
    }

    /// Number of groups tracked.
    pub fn groups(&self) -> usize {
        self.saliency.len()
    }

    /// Channels pruned so far.
    pub fn pruned_channels(&self) -> usize {
        self.pruned
    }

    /// Fraction of originally prunable channels removed, in `[0, 1]`.
    pub fn channel_compression(&self) -> f64 {
        self.pruned as f64 / self.original_channels as f64
    }

    /// Fraction of original *parameters* removed — the paper's
    /// "compression rate" axis in Fig. 3(b).
    pub fn parameter_compression(&self, net: &Network) -> f64 {
        let now: usize = net
            .descriptors(&[1, 3, 32, 32])
            .iter()
            .map(|d| d.weight_elems)
            .sum();
        1.0 - now as f64 / self.original_params as f64
    }

    /// Accumulates one fine-tuning step's saliency. Call after
    /// `Network::backward` (gradients must be fresh for this batch:
    /// `zero_grad → forward(Train) → backward → accumulate`).
    pub fn accumulate(&mut self, net: &mut Network, plan: &PruningPlan) {
        for g in 0..plan.group_count() {
            let grads = plan.gamma_grad(net, g);
            debug_assert_eq!(grads.len(), self.saliency[g].len(), "group {g} drifted");
            for (s, &dg) in self.saliency[g].iter_mut().zip(&grads) {
                // Fisher approximation: Δ_c ≈ ½ (dL/dg_c)².
                *s += 0.5 * (dg as f64).powi(2);
            }
        }
        self.steps += 1;
    }

    /// Prunes the single channel with the smallest penalised saliency
    /// `s̄_c + β · FLOPs_c` and resets the accumulators. Returns the
    /// `(group, channel)` pruned, or `None` if no group can lose another
    /// channel.
    #[allow(clippy::needless_range_loop)]
    pub fn prune_one(
        &mut self,
        net: &mut Network,
        plan: &PruningPlan,
        input_shape: &[usize],
    ) -> Option<(usize, usize)> {
        let flops = plan.flops_per_channel(net, input_shape);
        let steps = self.steps.max(1) as f64;
        let mut best: Option<(usize, usize, f64)> = None;
        for g in 0..plan.group_count() {
            if !plan.can_prune(net, g) {
                continue;
            }
            for (c, &s) in self.saliency[g].iter().enumerate() {
                // Penalised saliency: estimated loss increase minus the
                // FLOP reward for removing the channel, so "highly
                // expensive channels are pruned first" (§V-B.2).
                let score = s / steps - self.beta * flops[g] as f64;
                if best.is_none_or(|(_, _, b)| score < b) {
                    best = Some((g, c, score));
                }
            }
        }
        let (g, c, _) = best?;
        plan.prune(net, g, c);
        self.saliency[g].remove(c);
        for v in self.saliency.iter_mut() {
            for s in v.iter_mut() {
                *s = 0.0;
            }
        }
        self.steps = 0;
        self.pruned += 1;
        Some((g, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_models::{resnet18_width, vgg16_width};
    use cnn_stack_nn::{ExecConfig, Phase};
    use cnn_stack_tensor::{ops, Tensor};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_batch(seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = Tensor::from_fn([4, 3, 32, 32], |_| rng.gen_range(-1.0..1.0));
        let labels = (0..4).map(|i| i % 10).collect();
        (x, labels)
    }

    fn accumulate_once(pruner: &mut FisherPruner, model: &mut cnn_stack_models::Model, seed: u64) {
        let (x, labels) = random_batch(seed);
        let cfg = ExecConfig::default();
        model.network.zero_grad();
        let logits = model.network.forward(&x, Phase::Train, &cfg);
        let (_, d) = ops::cross_entropy_with_grad(&logits, &labels);
        model.network.backward(&d);
        pruner.accumulate(&mut model.network, &model.plan);
    }

    #[test]
    fn prunes_channels_and_stays_runnable() {
        let mut model = vgg16_width(10, 0.1);
        let mut pruner = FisherPruner::new(&model.network, &model.plan, 1e-6);
        for step in 0..3 {
            accumulate_once(&mut pruner, &mut model, step);
        }
        for _ in 0..5 {
            let pruned = pruner.prune_one(&mut model.network, &model.plan, &[1, 3, 32, 32]);
            assert!(pruned.is_some());
        }
        assert_eq!(pruner.pruned_channels(), 5);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn flop_penalty_prefers_expensive_channels() {
        // "Highly expensive channels are pruned first": with β large
        // enough to dominate the saliency term, the pruned channel must
        // come from the group with the highest per-channel FLOPs.
        let mut model = vgg16_width(10, 0.1);
        let mut pruner = FisherPruner::new(&model.network, &model.plan, 1.0);
        accumulate_once(&mut pruner, &mut model, 0);
        let flops = model
            .plan
            .flops_per_channel(&model.network, &[1, 3, 32, 32]);
        let max_g = (0..flops.len()).max_by_key(|&g| flops[g]).unwrap();
        let (g, _) = pruner
            .prune_one(&mut model.network, &model.plan, &[1, 3, 32, 32])
            .unwrap();
        assert_eq!(g, max_g);
    }

    #[test]
    fn resnet_only_inner_channels_shrink() {
        let mut model = resnet18_width(10, 0.1);
        let mut pruner = FisherPruner::new(&model.network, &model.plan, 1e-6);
        accumulate_once(&mut pruner, &mut model, 1);
        for _ in 0..4 {
            pruner.prune_one(&mut model.network, &model.plan, &[1, 3, 32, 32]);
        }
        // Output still 10 classes, shapes intact.
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
        assert_eq!(pruner.pruned_channels(), 4);
    }

    #[test]
    fn compression_metrics_increase() {
        let mut model = vgg16_width(10, 0.15);
        let mut pruner = FisherPruner::new(&model.network, &model.plan, 1e-6);
        accumulate_once(&mut pruner, &mut model, 2);
        assert_eq!(pruner.parameter_compression(&model.network), 0.0);
        for _ in 0..6 {
            pruner.prune_one(&mut model.network, &model.plan, &[1, 3, 32, 32]);
        }
        assert!(pruner.channel_compression() > 0.0);
        assert!(pruner.parameter_compression(&model.network) > 0.0);
    }

    #[test]
    fn saliency_tracks_gradient_magnitude() {
        let mut model = vgg16_width(10, 0.1);
        let mut pruner = FisherPruner::new(&model.network, &model.plan, 0.0);
        accumulate_once(&mut pruner, &mut model, 3);
        // At least one group accumulated non-zero saliency.
        assert!(pruner.saliency.iter().flatten().any(|&s| s > 0.0));
    }

    #[test]
    fn stops_when_nothing_left() {
        let mut model = vgg16_width(10, 0.03); // 2 channels everywhere
        let mut pruner = FisherPruner::new(&model.network, &model.plan, 1e-6);
        accumulate_once(&mut pruner, &mut model, 4);
        let mut count = 0;
        while pruner
            .prune_one(&mut model.network, &model.plan, &[1, 3, 32, 32])
            .is_some()
        {
            count += 1;
            assert!(count < 1000, "runaway pruning");
        }
        // Every group is down to a single channel.
        for g in 0..model.plan.group_count() {
            assert_eq!(model.plan.channels(&model.network, g), 1);
        }
    }
}
