//! Huffman coding of quantised weight streams — the third stage of Deep
//! Compression ("a three stage method for storing the network involving
//! pruning, quantisation, and Huffman coding", §III-A).
//!
//! The encoder is a standard frequency-built Huffman tree over `u16`
//! symbols; the network-level helper maps a ternarised network's weights
//! to the three-symbol alphabet `{-W, 0, +W}` and reports the bytes of
//! the coded stream against dense and CSR storage, closing the
//! storage-pipeline loop the paper's technique references.

use cnn_stack_nn::Network;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A canonical Huffman codebook over `u16` symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code (bit pattern, bit length) per symbol.
    codes: HashMap<u16, (u32, u8)>,
}

/// A Huffman-coded symbol stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HuffmanStream {
    /// Packed bits, most significant bit first within each byte.
    pub bytes: Vec<u8>,
    /// Total valid bits in `bytes`.
    pub bit_len: usize,
    /// Number of encoded symbols.
    pub symbols: usize,
}

#[derive(PartialEq, Eq)]
enum Node {
    Leaf(u16),
    Internal(Box<Node>, Box<Node>),
}

impl HuffmanCode {
    /// Builds a code from symbol frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is empty.
    pub fn build(stream: &[u16]) -> Self {
        assert!(
            !stream.is_empty(),
            "cannot build a code from an empty stream"
        );
        let mut freq: HashMap<u16, u64> = HashMap::new();
        for &s in stream {
            *freq.entry(s).or_insert(0) += 1;
        }
        // Min-heap keyed on (count, tiebreak) for determinism.
        struct Entry(u64, u64, Node);
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0 && self.1 == other.1
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for a min-heap.
                (other.0, other.1).cmp(&(self.0, self.1))
            }
        }
        let mut tiebreak = 0u64;
        let mut heap: BinaryHeap<Entry> = freq
            .iter()
            .map(|(&s, &c)| {
                tiebreak += 1;
                Entry(c, s as u64, Node::Leaf(s))
            })
            .collect();
        while heap.len() > 1 {
            let a = heap.pop().expect("len > 1");
            let b = heap.pop().expect("len > 1");
            tiebreak += 1;
            heap.push(Entry(
                a.0 + b.0,
                u64::MAX - tiebreak,
                Node::Internal(Box::new(a.2), Box::new(b.2)),
            ));
        }
        let root = heap.pop().expect("non-empty").2;
        let mut codes = HashMap::new();
        assign(&root, 0, 0, &mut codes);
        // Degenerate single-symbol stream: give it a 1-bit code.
        if codes.len() == 1 {
            let (&s, _) = codes.iter().next().expect("one symbol");
            codes.insert(s, (0, 1));
        }
        HuffmanCode { codes }
    }

    /// Bits assigned to a symbol, if it is in the alphabet.
    pub fn code_len(&self, symbol: u16) -> Option<u8> {
        self.codes.get(&symbol).map(|&(_, len)| len)
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.codes.len()
    }

    /// Encodes a stream.
    ///
    /// # Panics
    ///
    /// Panics if a symbol is outside the alphabet.
    pub fn encode(&self, stream: &[u16]) -> HuffmanStream {
        let mut bytes = Vec::new();
        let mut acc: u64 = 0;
        let mut acc_bits: u8 = 0;
        let mut bit_len = 0usize;
        for &s in stream {
            let &(code, len) = self
                .codes
                .get(&s)
                .unwrap_or_else(|| panic!("symbol {s} not in alphabet"));
            acc = (acc << len) | code as u64;
            acc_bits += len;
            bit_len += len as usize;
            while acc_bits >= 8 {
                acc_bits -= 8;
                bytes.push(((acc >> acc_bits) & 0xFF) as u8);
            }
        }
        if acc_bits > 0 {
            bytes.push(((acc << (8 - acc_bits)) & 0xFF) as u8);
        }
        HuffmanStream {
            bytes,
            bit_len,
            symbols: stream.len(),
        }
    }

    /// Decodes `stream` back to its symbols.
    ///
    /// # Panics
    ///
    /// Panics if the bitstream is not decodable under this code.
    pub fn decode(&self, stream: &HuffmanStream) -> Vec<u16> {
        // Invert the codebook (code bits, len) -> symbol.
        let inverse: HashMap<(u32, u8), u16> =
            self.codes.iter().map(|(&s, &(c, l))| ((c, l), s)).collect();
        let mut out = Vec::with_capacity(stream.symbols);
        let mut code: u32 = 0;
        let mut len: u8 = 0;
        let mut consumed = 0usize;
        'outer: for (i, &byte) in stream.bytes.iter().enumerate() {
            for bit in (0..8).rev() {
                if i * 8 + (7 - bit) >= stream.bit_len {
                    break 'outer;
                }
                code = (code << 1) | ((byte >> bit) & 1) as u32;
                len += 1;
                if let Some(&s) = inverse.get(&(code, len)) {
                    out.push(s);
                    consumed += len as usize;
                    code = 0;
                    len = 0;
                    if out.len() == stream.symbols {
                        break 'outer;
                    }
                }
                assert!(len < 33, "undecodable bitstream");
            }
        }
        let _ = consumed;
        assert_eq!(out.len(), stream.symbols, "truncated bitstream");
        out
    }
}

fn assign(node: &Node, code: u32, len: u8, out: &mut HashMap<u16, (u32, u8)>) {
    match node {
        Node::Leaf(s) => {
            out.insert(*s, (code, len));
        }
        Node::Internal(l, r) => {
            assign(l, code << 1, len + 1, out);
            assign(r, (code << 1) | 1, len + 1, out);
        }
    }
}

/// Storage accounting for a Huffman-coded ternary network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HuffmanReport {
    /// Weights encoded.
    pub symbols: usize,
    /// f32 dense bytes for the same weights.
    pub dense_bytes: usize,
    /// Huffman-coded bytes (stream + per-layer scale pair).
    pub coded_bytes: usize,
    /// Mean bits per weight achieved.
    pub bits_per_weight: f64,
}

/// Symbolises every conv/linear weight of a *ternarised* network
/// (`-W → 0`, `0 → 1`, `+W → 2`) and Huffman-codes the stream, returning
/// the storage report. Call after [`crate::ttq::ttq_quantise`].
///
/// # Panics
///
/// Panics if a weight tensor holds more than three distinct values
/// (the network is not ternary).
pub fn code_ternary_network(net: &mut Network) -> HuffmanReport {
    let mut stream: Vec<u16> = Vec::new();
    let mut layers = 0usize;
    for p in net.params_mut() {
        // Only weight tensors (rank >= 2) are ternarised; biases and
        // batch-norm parameters stay full precision.
        if p.value.shape().rank() < 2 {
            continue;
        }
        layers += 1;
        let mut pos = f32::NAN;
        let mut neg = f32::NAN;
        for &v in p.value.data() {
            let s = if v == 0.0 {
                1
            } else if v > 0.0 {
                assert!(
                    pos.is_nan() || pos == v,
                    "network is not ternary (positive)"
                );
                pos = v;
                2
            } else {
                assert!(
                    neg.is_nan() || neg == v,
                    "network is not ternary (negative)"
                );
                neg = v;
                0
            };
            stream.push(s);
        }
    }
    let code = HuffmanCode::build(&stream);
    let encoded = code.encode(&stream);
    // Each layer also stores its two f32 scales.
    let coded_bytes = encoded.bytes.len() + layers * 8;
    HuffmanReport {
        symbols: stream.len(),
        dense_bytes: stream.len() * 4,
        coded_bytes,
        bits_per_weight: encoded.bit_len as f64 / stream.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ttq;
    use cnn_stack_models::vgg16_width;

    #[test]
    fn roundtrip_simple_stream() {
        let stream = vec![0u16, 1, 1, 2, 2, 2, 2, 1, 0, 2];
        let code = HuffmanCode::build(&stream);
        let enc = code.encode(&stream);
        assert_eq!(code.decode(&enc), stream);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut stream = vec![7u16; 100];
        stream.extend(vec![3u16; 10]);
        stream.extend(vec![1u16; 2]);
        let code = HuffmanCode::build(&stream);
        assert!(code.code_len(7).unwrap() <= code.code_len(3).unwrap());
        assert!(code.code_len(3).unwrap() <= code.code_len(1).unwrap());
    }

    #[test]
    fn single_symbol_stream_works() {
        let stream = vec![5u16; 40];
        let code = HuffmanCode::build(&stream);
        let enc = code.encode(&stream);
        assert_eq!(enc.bit_len, 40);
        assert_eq!(code.decode(&enc), stream);
    }

    #[test]
    fn achieves_near_entropy_on_skewed_ternary() {
        // 90% zeros, 5%/5% signs: entropy = 0.569 bits/symbol.
        let mut stream = Vec::new();
        for i in 0..2000 {
            stream.push(if i % 20 == 0 {
                0
            } else if i % 20 == 1 {
                2
            } else {
                1
            });
        }
        let code = HuffmanCode::build(&stream);
        let enc = code.encode(&stream);
        let bits = enc.bit_len as f64 / stream.len() as f64;
        // Huffman on a 3-symbol alphabet cannot beat 1.05 here but must
        // be far below the 2-bit naive encoding.
        assert!(bits < 1.2, "bits/symbol {bits}");
        assert_eq!(code.decode(&enc), stream);
    }

    #[test]
    fn roundtrip_long_random_stream() {
        let stream: Vec<u16> = (0..5000)
            .map(|i| ((i * 2654435761u64) % 17) as u16)
            .collect();
        let code = HuffmanCode::build(&stream);
        let enc = code.encode(&stream);
        assert_eq!(code.decode(&enc), stream);
        assert!(enc.bytes.len() * 8 >= enc.bit_len);
    }

    #[test]
    fn ternary_network_compresses_far_below_dense() {
        let mut model = vgg16_width(10, 0.1);
        ttq::ttq_quantise(&mut model.network, 0.15);
        let report = code_ternary_network(&mut model.network);
        assert!(report.symbols > 10_000);
        // Deep Compression's point: coded storage is a small fraction of
        // dense f32 (here < 8% = <2.56 bits/weight versus 32).
        assert!(
            (report.coded_bytes as f64) < 0.08 * report.dense_bytes as f64,
            "coded {} vs dense {}",
            report.coded_bytes,
            report.dense_bytes
        );
        assert!(report.bits_per_weight < 2.0);
    }

    #[test]
    #[should_panic(expected = "not ternary")]
    fn non_ternary_network_rejected() {
        let mut model = vgg16_width(10, 0.05);
        let _ = code_ternary_network(&mut model.network);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_stream_rejected() {
        let _ = HuffmanCode::build(&[]);
    }
}
