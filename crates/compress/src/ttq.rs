//! Trained Ternary Quantisation (Zhu et al.; the paper's §III-C /
//! §V-B.3 technique).
//!
//! Every convolution/linear weight is constrained to three values per
//! layer: `{-Wⁿ_l, 0, +Wᵖ_l}`. The threshold hyper-parameter `t` sets the
//! dead zone: `|w| ≤ t · max|w|` is trimmed to zero; survivors snap to the
//! layer's positive or negative scale. The scales are *trained*: during
//! fine-tuning each SGD step updates the full-precision shadow weights
//! and the projection re-estimates `Wᵖ/Wⁿ` from the surviving weights
//! (projection-based training; the gradient flow matches TTQ's
//! straight-through estimator in expectation — documented substitution,
//! `DESIGN.md` §5).

use crate::visit::for_each_weight_param;
use cnn_stack_nn::{Network, Param};
use cnn_stack_tensor::Tensor;

/// Summary of a ternarisation pass.
#[derive(Clone, Debug, PartialEq)]
pub struct TtqReport {
    /// Weights considered.
    pub total_weights: usize,
    /// Weights trimmed to zero.
    pub zeroed_weights: usize,
    /// Resulting sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Per-layer `(name, W⁺, W⁻, sparsity)`.
    pub per_layer: Vec<(String, f32, f32, f64)>,
}

/// The per-layer ternary codebook: positive scale, negative scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TernaryScales {
    /// Value assigned to surviving positive weights.
    pub positive: f32,
    /// Value assigned to surviving negative weights (stored positive;
    /// weights become `-negative`).
    pub negative: f32,
}

/// Ternarises one weight tensor in place with threshold `t`, returning
/// the learned scales and the achieved sparsity. The scales are the mean
/// magnitudes of the surviving positive/negative weights — the
/// fixed-point of TTQ's scale-gradient update.
///
/// # Panics
///
/// Panics if `t` is not in `[0, 1)`.
pub fn ternarise_tensor(weights: &mut Tensor, t: f64) -> (TernaryScales, f64) {
    assert!(
        (0.0..1.0).contains(&t),
        "threshold must be in [0, 1), got {t}"
    );
    let max_mag = weights.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let delta = (t as f32) * max_mag;
    let mut pos_sum = 0.0f64;
    let mut pos_n = 0usize;
    let mut neg_sum = 0.0f64;
    let mut neg_n = 0usize;
    for &v in weights.data() {
        if v > delta {
            pos_sum += v as f64;
            pos_n += 1;
        } else if v < -delta {
            neg_sum += (-v) as f64;
            neg_n += 1;
        }
    }
    let scales = TernaryScales {
        positive: if pos_n > 0 {
            (pos_sum / pos_n as f64) as f32
        } else {
            0.0
        },
        negative: if neg_n > 0 {
            (neg_sum / neg_n as f64) as f32
        } else {
            0.0
        },
    };
    let mut zeroed = 0usize;
    for v in weights.data_mut() {
        if *v > delta {
            *v = scales.positive;
        } else if *v < -delta {
            *v = -scales.negative;
        } else {
            *v = 0.0;
            zeroed += 1;
        }
    }
    (scales, zeroed as f64 / weights.len() as f64)
}

fn ternarise_param(param: &mut Param, t: f64) -> (TernaryScales, usize, usize) {
    let (scales, _) = ternarise_tensor(&mut param.value, t);
    // Pin the dead zone with a mask so fine-tuning keeps ternary support.
    let mask = Tensor::from_fn(param.value.shape().dims().to_vec(), |i| {
        if param.value.data()[i] == 0.0 {
            0.0
        } else {
            1.0
        }
    });
    let zeroed = mask.count_zeros(0.0);
    let total = param.value.len();
    param.set_mask(mask);
    (scales, total, zeroed)
}

/// Ternarises every convolution and linear weight of `net` with the same
/// threshold `t` (the paper's single TTQ-threshold knob, Fig. 3(c)).
///
/// # Panics
///
/// Panics if `t` is not in `[0, 1)`.
pub fn ttq_quantise(net: &mut Network, t: f64) -> TtqReport {
    assert!(
        (0.0..1.0).contains(&t),
        "threshold must be in [0, 1), got {t}"
    );
    let mut total = 0usize;
    let mut zeroed = 0usize;
    let mut per_layer = Vec::new();
    for_each_weight_param(net, |label, param| {
        let (s, t_n, z) = ternarise_param(param, t);
        per_layer.push((
            label.to_string(),
            s.positive,
            s.negative,
            z as f64 / t_n as f64,
        ));
        total += t_n;
        zeroed += z;
    });
    TtqReport {
        total_weights: total,
        zeroed_weights: zeroed,
        sparsity: if total == 0 {
            0.0
        } else {
            zeroed as f64 / total as f64
        },
        per_layer,
    }
}

/// One projection-training round: re-ternarise after an SGD step so the
/// scales track the shadow weights (call this after each fine-tuning
/// epoch, as the paper's "determined iteratively over several epochs").
pub fn reproject(net: &mut Network, t: f64) -> TtqReport {
    ttq_quantise(net, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_models::{resnet18_width, vgg16_width};
    use cnn_stack_nn::{Conv2d, ExecConfig, Phase};

    #[test]
    fn tensor_becomes_ternary() {
        let mut w = Tensor::from_vec([1, 6], vec![0.9, -0.8, 0.05, -0.04, 0.5, -0.6]);
        let (scales, sparsity) = ternarise_tensor(&mut w, 0.1);
        // max|w| = 0.9, delta = 0.09: +{0.9, 0.5} → 0.7; -{0.8, 0.6} → 0.7.
        assert!((scales.positive - 0.7).abs() < 1e-6);
        assert!((scales.negative - 0.7).abs() < 1e-6);
        assert!((sparsity - 2.0 / 6.0).abs() < 1e-9);
        let distinct: std::collections::BTreeSet<String> =
            w.data().iter().map(|v| format!("{v:.6}")).collect();
        assert!(distinct.len() <= 3, "not ternary: {distinct:?}");
    }

    #[test]
    fn higher_threshold_means_more_zeros() {
        let mut model_lo = vgg16_width(10, 0.1);
        let mut model_hi = vgg16_width(10, 0.1);
        let lo = ttq_quantise(&mut model_lo.network, 0.02);
        let hi = ttq_quantise(&mut model_hi.network, 0.3);
        assert!(hi.sparsity > lo.sparsity);
    }

    #[test]
    fn quantised_network_runs_and_is_ternary() {
        let mut model = vgg16_width(10, 0.1);
        let report = ttq_quantise(&mut model.network, 0.09);
        assert!(report.sparsity > 0.0);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
        // First conv has at most 3 distinct weight values.
        let conv = model
            .network
            .layer_mut(0)
            .unwrap()
            .as_any_mut()
            .downcast_mut::<Conv2d>()
            .unwrap();
        let distinct: std::collections::BTreeSet<String> = conv
            .weight()
            .value
            .data()
            .iter()
            .map(|v| format!("{v:.6}"))
            .collect();
        assert!(distinct.len() <= 3, "{distinct:?}");
    }

    #[test]
    fn resnet_blocks_are_quantised() {
        let mut model = resnet18_width(10, 0.1);
        let report = ttq_quantise(&mut model.network, 0.1);
        let block_layers = report
            .per_layer
            .iter()
            .filter(|(n, ..)| n.contains("resblock"))
            .count();
        // 8 blocks × 2 convs + 3 projection shortcuts.
        assert_eq!(block_layers, 19);
    }

    #[test]
    fn zero_threshold_keeps_everything_nonzero() {
        let mut model = vgg16_width(10, 0.05);
        let report = ttq_quantise(&mut model.network, 0.0);
        // Only exact zeros get trimmed at t=0 (Kaiming init has none).
        assert!(report.sparsity < 0.01, "sparsity {}", report.sparsity);
    }

    #[test]
    fn reprojection_is_idempotent_on_scales() {
        let mut model = vgg16_width(10, 0.1);
        let first = ttq_quantise(&mut model.network, 0.1);
        let second = reproject(&mut model.network, 0.1);
        // Re-projecting an already-ternary net keeps the same support.
        assert_eq!(first.zeroed_weights, second.zeroed_weights);
        for (a, b) in first.per_layer.iter().zip(&second.per_layer) {
            assert!((a.1 - b.1).abs() < 1e-5, "positive scale drifted");
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn threshold_validated() {
        let mut model = vgg16_width(10, 0.05);
        let _ = ttq_quantise(&mut model.network, 1.5);
    }
}
