//! Bit-packed ternary weight storage: the paper's §V-D remark made
//! concrete — "Through hashing at the level of bits, the memory
//! requirement for quantisation could be an order of magnitude smaller
//! although the inference time would also increase."
//!
//! A ternary weight needs 2 bits (codes `00` = 0, `01` = +W, `10` = −W),
//! so a packed matrix stores 16 weights per f32-equivalent — a 16×
//! reduction over dense and far below CSR. The price: every multiply
//! first pays a shift/mask decode, which the `ablate_packed_ternary`
//! bench measures against the CSR and dense kernels.

use cnn_stack_tensor::Tensor;
use std::fmt;

/// A ternary matrix packed at 2 bits per weight, with per-matrix
/// positive/negative scales.
///
/// # Example
///
/// ```
/// use cnn_stack_compress::packed::PackedTernaryMatrix;
/// use cnn_stack_tensor::Tensor;
///
/// let t = Tensor::from_vec([1, 4], vec![0.5, 0.0, -0.25, 0.5]);
/// let m = PackedTernaryMatrix::from_dense_ternary(&t).unwrap();
/// assert!(m.to_dense().allclose(&t, 0.0));
/// assert_eq!(m.storage_bytes(), 1 + 8 + 8); // 4 codes in 1 byte + scales
/// ```
#[derive(Clone, PartialEq)]
pub struct PackedTernaryMatrix {
    rows: usize,
    cols: usize,
    /// 2-bit codes, 4 per byte, row-major.
    codes: Vec<u8>,
    /// Value encoded by `01`.
    positive: f32,
    /// Magnitude encoded by `10` (stored positive).
    negative: f32,
}

/// Error returned when a tensor is not ternary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotTernaryError;

impl fmt::Display for NotTernaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("tensor holds more than one positive or negative magnitude")
    }
}

impl std::error::Error for NotTernaryError {}

impl PackedTernaryMatrix {
    /// Packs a rank-2 ternary tensor (values drawn from `{-n, 0, +p}`).
    ///
    /// # Errors
    ///
    /// Returns [`NotTernaryError`] if more than one positive or negative
    /// magnitude appears.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not rank-2.
    pub fn from_dense_ternary(dense: &Tensor) -> Result<Self, NotTernaryError> {
        let (rows, cols) = dense.shape().matrix();
        let mut positive = f32::NAN;
        let mut negative = f32::NAN;
        let mut codes = vec![0u8; (rows * cols).div_ceil(4)];
        for (i, &v) in dense.data().iter().enumerate() {
            let code: u8 = if v == 0.0 {
                0b00
            } else if v > 0.0 {
                if positive.is_nan() {
                    positive = v;
                } else if positive != v {
                    return Err(NotTernaryError);
                }
                0b01
            } else {
                if negative.is_nan() {
                    negative = -v;
                } else if negative != -v {
                    return Err(NotTernaryError);
                }
                0b10
            };
            codes[i / 4] |= code << ((i % 4) * 2);
        }
        Ok(PackedTernaryMatrix {
            rows,
            cols,
            codes,
            positive: if positive.is_nan() { 0.0 } else { positive },
            negative: if negative.is_nan() { 0.0 } else { negative },
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Decodes element `i` (row-major linear index).
    #[inline]
    fn decode(&self, i: usize) -> f32 {
        match (self.codes[i / 4] >> ((i % 4) * 2)) & 0b11 {
            0b01 => self.positive,
            0b10 => -self.negative,
            _ => 0.0,
        }
    }

    /// Expands back to dense.
    pub fn to_dense(&self) -> Tensor {
        Tensor::from_fn([self.rows, self.cols], |i| self.decode(i))
    }

    /// Packed × dense product `C = self · B`, walking the 2-bit codes
    /// byte by byte straight out of packed storage (no dense expansion,
    /// no workspace) — the "inference time would also increase" path.
    ///
    /// Zero codes still multiply: `0 · NaN` and `0 · ∞` propagate
    /// exactly as the dense f32 kernels do, so swapping a layer between
    /// this path and dense GEMM never changes which non-finite inputs
    /// poison the output.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank-2 or dimensions disagree.
    pub fn spmm(&self, b: &Tensor) -> Tensor {
        let (bk, bn) = b.shape().matrix();
        assert_eq!(bk, self.cols, "inner dimension mismatch");
        let mut out = Tensor::zeros([self.rows, bn]);
        let odata = out.data_mut();
        let bdata = b.data();
        let lut = [0.0f32, self.positive, -self.negative, 0.0];
        for r in 0..self.rows {
            let orow = &mut odata[r * bn..(r + 1) * bn];
            // Rows are not byte-aligned when `cols % 4 != 0`: walk the
            // row's linear code range one byte at a time, starting at
            // whatever 2-bit lane the row begins in.
            let mut idx = r * self.cols;
            let end = idx + self.cols;
            let mut c = 0usize;
            while idx < end {
                let byte = self.codes[idx / 4];
                let first = idx % 4;
                let take = (4 - first).min(end - idx);
                for j in 0..take {
                    let v = lut[((byte >> ((first + j) * 2)) & 0b11) as usize];
                    let brow = &bdata[(c + j) * bn..(c + j + 1) * bn];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += v * bv;
                    }
                }
                idx += take;
                c += take;
            }
        }
        out
    }

    /// Exact heap bytes: packed codes plus the two f32 scales (stored as
    /// 8 bytes each with their identifying tag in the paper's C layout).
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + 16
    }

    /// Compression ratio versus dense f32 storage.
    pub fn ratio_vs_dense(&self) -> f64 {
        (self.rows * self.cols * 4) as f64 / self.storage_bytes() as f64
    }
}

impl fmt::Debug for PackedTernaryMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackedTernaryMatrix({}x{}, +{}/-{}, {} B)",
            self.rows,
            self.cols,
            self.positive,
            self.negative,
            self.storage_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_tensor::matmul;

    fn ternary(rows: usize, cols: usize, seed: u64) -> Tensor {
        Tensor::from_fn([rows, cols], |i| match (i as u64 * 2654435761 + seed) % 5 {
            0 => 0.75,
            1 => -0.5,
            _ => 0.0,
        })
    }

    #[test]
    fn roundtrip() {
        let t = ternary(7, 13, 1);
        let m = PackedTernaryMatrix::from_dense_ternary(&t).unwrap();
        assert!(m.to_dense().allclose(&t, 0.0));
    }

    #[test]
    fn spmm_matches_dense() {
        let a = ternary(6, 10, 2);
        let b = Tensor::from_fn([10, 4], |i| i as f32 * 0.3 - 1.5);
        let want = matmul(&a, &b);
        let got = PackedTernaryMatrix::from_dense_ternary(&a)
            .unwrap()
            .spmm(&b);
        assert!(want.allclose(&got, 1e-4));
    }

    #[test]
    fn sixteen_x_smaller_than_dense() {
        let t = ternary(64, 64, 3);
        let m = PackedTernaryMatrix::from_dense_ternary(&t).unwrap();
        assert!(m.ratio_vs_dense() > 15.0, "ratio {}", m.ratio_vs_dense());
    }

    #[test]
    fn far_smaller_than_csr_at_ttq_sparsity() {
        use cnn_stack_sparse::CsrMatrix;
        // 60% zeros, like a TTQ'd layer: CSR pays 8 B/nnz, packed pays
        // 0.25 B/weight regardless.
        let t = ternary(128, 128, 4);
        let packed = PackedTernaryMatrix::from_dense_ternary(&t).unwrap();
        let csr = CsrMatrix::from_dense(&t, 0.0);
        assert!(packed.storage_bytes() * 8 < csr.storage_bytes());
    }

    #[test]
    fn rejects_non_ternary() {
        let t = Tensor::from_vec([1, 3], vec![0.5, 0.25, 0.0]);
        assert_eq!(
            PackedTernaryMatrix::from_dense_ternary(&t),
            Err(NotTernaryError)
        );
        let t = Tensor::from_vec([1, 3], vec![-0.5, -0.25, 0.0]);
        assert!(PackedTernaryMatrix::from_dense_ternary(&t).is_err());
    }

    #[test]
    fn all_zero_matrix_packs() {
        let m = PackedTernaryMatrix::from_dense_ternary(&Tensor::zeros([3, 5])).unwrap();
        assert_eq!(m.to_dense().sum(), 0.0);
        assert_eq!(m.spmm(&Tensor::ones([5, 2])).sum(), 0.0);
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        for cols in [1usize, 2, 3, 5, 9] {
            let t = ternary(3, cols, cols as u64);
            let m = PackedTernaryMatrix::from_dense_ternary(&t).unwrap();
            assert!(m.to_dense().allclose(&t, 0.0), "cols {cols}");
        }
    }
}
