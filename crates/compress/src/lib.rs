//! The paper's "Machine Learning Techniques" stack layer (§III, §IV-B):
//! the three compression techniques it characterises, plus the calibrated
//! accuracy-response curves that regenerate Fig. 3.
//!
//! * [`magnitude`] — **Deep Compression** weight pruning (Han et al.):
//!   iterative magnitude thresholding with mask-pinned fine-tuning.
//! * [`fisher`] — **Fisher channel pruning** (Theis et al.): second-order
//!   Taylor saliency accumulated from batch-norm scale gradients, with
//!   the paper's FLOP penalty β, followed by structural surgery that
//!   recasts the network as a smaller dense network.
//! * [`ttq`] — **Trained Ternary Quantisation** (Zhu et al.): per-layer
//!   thresholded ternarisation with learned positive/negative scales,
//!   trained by projection during fine-tuning.
//! * [`huffman`] — Deep Compression's third storage stage: Huffman
//!   coding of the quantised weight stream.
//! * [`packed`] — 2-bit packed ternary storage, realising the paper's
//!   "hashing at the level of bits" memory/time trade-off remark (§V-D).
//! * [`random`] — random pruning baselines (the paper's [35]).
//! * [`binary`], [`hashed`], [`inq`] — the rest of the §III-C
//!   quantisation family: BinaryConnect [19], HashedNet [20] and
//!   Incremental Network Quantisation [18], implemented as projection
//!   passes for the quantisation-family ablation.
//! * [`accuracy`] — per-model accuracy-response functions calibrated to
//!   the paper's reported anchor points (see `DESIGN.md` §4.3); these
//!   regenerate the Fig. 3 Pareto curves and drive Table III/V operating
//!   -point selection.
//!
//! # Example
//!
//! ```
//! use cnn_stack_compress::magnitude;
//! use cnn_stack_models::vgg16_width;
//!
//! let mut model = vgg16_width(10, 0.1);
//! let report = magnitude::prune_network(&mut model.network, 0.5);
//! assert!(report.overall_sparsity > 0.45);
//! ```

pub mod accuracy;
pub mod binary;
pub mod fisher;
pub mod hashed;
pub mod huffman;
pub mod inq;
pub mod magnitude;
pub mod packed;
pub mod random;
pub mod ttq;
pub mod visit;

pub use accuracy::{AccuracyModel, Technique};
pub use binary::{binarise_network, BinaryReport};
pub use fisher::FisherPruner;
pub use hashed::{hash_network, HashedReport};
pub use huffman::{code_ternary_network, HuffmanCode, HuffmanReport};
pub use inq::{inq_quantise, inq_step, InqReport};
pub use magnitude::{prune_network, PruneReport};
pub use packed::PackedTernaryMatrix;
pub use ttq::{ttq_quantise, TtqReport};
pub use visit::for_each_weight_param;
