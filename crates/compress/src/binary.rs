//! BinaryConnect-style binary weight quantisation (Courbariaux et al.,
//! the paper's [19]): "the extreme case is achieved by BinaryNet
//! transforming all weights to a one bit representation, with minimal
//! accuracy degradation" (§III-C).
//!
//! Each weight tensor is constrained to `{-α, +α}` with the per-tensor
//! scale `α = mean|w|` (the deterministic BinaryConnect variant with the
//! XNOR-Net scaling). Binary weights have *no* zeros, so unlike TTQ they
//! gain nothing from sparse formats — but they pack at 1 bit/weight.

use crate::visit::for_each_weight_param;
use cnn_stack_nn::{Network, Param};
use cnn_stack_tensor::Tensor;

/// Summary of a binarisation pass.
#[derive(Clone, Debug, PartialEq)]
pub struct BinaryReport {
    /// Weights binarised.
    pub total_weights: usize,
    /// Per-layer `(name, α)` scales.
    pub per_layer: Vec<(String, f32)>,
}

/// Binarises one weight tensor in place: `w → α · sign(w)` with
/// `α = mean|w|`. Returns the scale. Zeros binarise to `+α` (the
/// BinaryConnect convention for `sign(0)`).
pub fn binarise_tensor(weights: &mut Tensor) -> f32 {
    let n = weights.len() as f64;
    let alpha = (weights.data().iter().map(|v| v.abs() as f64).sum::<f64>() / n) as f32;
    for v in weights.data_mut() {
        *v = if *v < 0.0 { -alpha } else { alpha };
    }
    alpha
}

fn binarise_param(param: &mut Param) -> f32 {
    // Binary weights have no zeros; clear any pruning mask so the +α/-α
    // support is not punched back to zero by a later apply_mask.
    param.mask = None;
    binarise_tensor(&mut param.value)
}

/// Binarises every convolution and linear weight of `net`.
pub fn binarise_network(net: &mut Network) -> BinaryReport {
    let mut total = 0usize;
    let mut per_layer = Vec::new();
    for_each_weight_param(net, |label, param| {
        total += param.value.len();
        let a = binarise_param(param);
        per_layer.push((label.to_string(), a));
    });
    BinaryReport {
        total_weights: total,
        per_layer,
    }
}

/// Storage bytes for a binarised layer of `elems` weights: 1 bit per
/// weight plus the f32 scale.
pub fn binary_storage_bytes(elems: usize) -> usize {
    elems.div_ceil(8) + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_models::{resnet18_width, vgg16_width};
    use cnn_stack_nn::{ExecConfig, Phase};

    #[test]
    fn tensor_becomes_binary_with_mean_scale() {
        let mut w = Tensor::from_vec([1, 4], vec![0.4, -0.8, 0.2, -0.6]);
        let alpha = binarise_tensor(&mut w);
        assert!((alpha - 0.5).abs() < 1e-6);
        assert_eq!(w.data(), &[0.5, -0.5, 0.5, -0.5]);
    }

    #[test]
    fn zero_maps_to_positive() {
        let mut w = Tensor::from_vec([1, 2], vec![0.0, -1.0]);
        let alpha = binarise_tensor(&mut w);
        assert_eq!(w.data(), &[alpha, -alpha]);
    }

    #[test]
    fn network_binarises_and_runs() {
        let mut model = vgg16_width(10, 0.1);
        let report = binarise_network(&mut model.network);
        assert_eq!(report.per_layer.len(), 13 + 2); // convs + two linears
        assert!(report.total_weights > 100_000);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
        // Exactly two distinct values per layer: sparsity is zero.
        assert_eq!(model.network.weight_sparsity(&[1, 3, 32, 32]), 0.0);
    }

    #[test]
    fn resnet_blocks_and_shortcuts_covered() {
        let mut model = resnet18_width(10, 0.1);
        let report = binarise_network(&mut model.network);
        let block_entries = report
            .per_layer
            .iter()
            .filter(|(n, _)| n.contains("resblock"))
            .count();
        assert_eq!(block_entries, 19);
    }

    #[test]
    fn storage_is_one_bit_per_weight() {
        assert_eq!(binary_storage_bytes(64), 8 + 4);
        assert_eq!(binary_storage_bytes(65), 9 + 4);
        // 32x smaller than f32 (amortising the scale).
        let dense = 10_000 * 4;
        assert!(binary_storage_bytes(10_000) * 31 < dense);
    }

    #[test]
    fn binarisation_clears_pruning_masks() {
        let mut model = vgg16_width(10, 0.1);
        crate::magnitude::prune_network(&mut model.network, 0.5);
        binarise_network(&mut model.network);
        model.network.apply_masks();
        assert_eq!(model.network.weight_sparsity(&[1, 3, 32, 32]), 0.0);
    }
}
