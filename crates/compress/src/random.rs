//! Random pruning baselines (Mittal et al., the paper's [35]): "random
//! pruning is also an effective strategy for removing filters" — the
//! null hypothesis every saliency method must beat. The
//! `ablate_saliency` bench compares these against Fisher/magnitude
//! choices.

use cnn_stack_models::{Model, PruningPlan};
use cnn_stack_nn::Network;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Randomly prunes `count` channels, drawing `(group, channel)` uniformly
/// from the currently prunable set. Returns the number actually removed
/// (less than `count` only if the network runs out of prunable channels).
pub fn random_channel_prune(model: &mut Model, count: usize, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut removed = 0;
    for _ in 0..count {
        let prunable: Vec<usize> = (0..model.plan.group_count())
            .filter(|&g| model.plan.can_prune(&model.network, g))
            .collect();
        if prunable.is_empty() {
            break;
        }
        let g = prunable[rng.gen_range(0..prunable.len())];
        let c = rng.gen_range(0..model.plan.channels(&model.network, g));
        model.plan.prune(&mut model.network, g, c);
        removed += 1;
    }
    removed
}

/// Randomly zeroes a `sparsity` fraction of every conv/linear weight
/// tensor (the unstructured analogue), installing masks like the
/// magnitude pruner so fine-tuning keeps them zero.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1)`.
pub fn random_weight_prune(net: &mut Network, sparsity: f64, seed: u64) -> f64 {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut total = 0usize;
    let mut pruned = 0usize;
    for p in net.params_mut() {
        if p.value.shape().rank() < 2 {
            continue; // weight tensors only, as in the magnitude pruner
        }
        let n = p.value.len();
        let mask = cnn_stack_tensor::Tensor::from_fn(p.value.shape().dims().to_vec(), |_| {
            if rng.gen_bool(sparsity) {
                0.0
            } else {
                1.0
            }
        });
        pruned += mask.count_zeros(0.0);
        total += n;
        p.set_mask(mask);
    }
    if total == 0 {
        0.0
    } else {
        pruned as f64 / total as f64
    }
}

/// Uniform round-robin channel pruning to a parameter-compression target:
/// deterministic, saliency-free — the structured analogue of [35]'s
/// "retrain after randomly removing progressively more filters".
///
/// # Panics
///
/// Panics if `target` is outside `[0, 1)`.
pub fn round_robin_channel_prune(model: &mut Model, target: f64) -> usize {
    assert!((0.0..1.0).contains(&target), "target must be in [0, 1)");
    let shape = [1usize, 3, 32, 32];
    let original: usize = weight_elems(&model.network, &shape);
    let mut removed = 0;
    let mut g = 0;
    loop {
        let now = weight_elems(&model.network, &shape);
        if 1.0 - now as f64 / original as f64 >= target {
            break;
        }
        // Find the next prunable group in round-robin order.
        let groups = model.plan.group_count();
        let mut tried = 0;
        while !model.plan.can_prune(&model.network, g % groups) && tried < groups {
            g += 1;
            tried += 1;
        }
        if tried == groups {
            break;
        }
        let group = g % groups;
        let c = model.plan.channels(&model.network, group) - 1;
        model.plan.prune(&mut model.network, group, c);
        removed += 1;
        g += 1;
    }
    removed
}

fn weight_elems(net: &Network, shape: &[usize]) -> usize {
    net.descriptors(shape).iter().map(|d| d.weight_elems).sum()
}

/// Re-exported plan type used by the helpers (kept for doc linking).
pub type Plan = PruningPlan;

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_models::{vgg16_width, ModelKind};
    use cnn_stack_nn::{ExecConfig, Phase};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn random_channel_prune_removes_and_stays_runnable() {
        let mut model = vgg16_width(10, 0.1);
        let before = model.plan.total_channels(&model.network);
        let removed = random_channel_prune(&mut model, 10, 7);
        assert_eq!(removed, 10);
        assert_eq!(model.plan.total_channels(&model.network), before - 10);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn random_channel_prune_is_deterministic_per_seed() {
        let mut a = vgg16_width(10, 0.1);
        let mut b = vgg16_width(10, 0.1);
        random_channel_prune(&mut a, 8, 3);
        random_channel_prune(&mut b, 8, 3);
        for g in 0..a.plan.group_count() {
            assert_eq!(
                a.plan.channels(&a.network, g),
                b.plan.channels(&b.network, g)
            );
        }
    }

    #[test]
    fn random_channel_prune_saturates() {
        let mut model = vgg16_width(10, 0.03);
        let removed = random_channel_prune(&mut model, 100_000, 1);
        assert!(removed < 100_000);
        for g in 0..model.plan.group_count() {
            assert_eq!(model.plan.channels(&model.network, g), 1);
        }
    }

    #[test]
    fn random_weight_prune_hits_target_statistically() {
        let mut model = vgg16_width(10, 0.2);
        let achieved = random_weight_prune(&mut model.network, 0.6, 5);
        assert!((achieved - 0.6).abs() < 0.02, "achieved {achieved}");
    }

    #[test]
    fn round_robin_reaches_compression_target() {
        let mut model = ModelKind::MobileNet.build_width(10, 0.2);
        let shape = [1usize, 3, 32, 32];
        let before = weight_elems(&model.network, &shape);
        let removed = round_robin_channel_prune(&mut model, 0.4);
        assert!(removed > 0);
        let after = weight_elems(&model.network, &shape);
        assert!(1.0 - after as f64 / before as f64 >= 0.4);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }
}
