//! HashedNet weight sharing (Chen et al., the paper's [20]): "HashedNet
//! restricts weights to a smaller set of possible values by using a hash
//! function to map weights to hash buckets, in which they share the same
//! floating point value" (§III-C).
//!
//! Each layer keeps only `buckets` real parameters; virtual weight `i`
//! reads bucket `h(i) mod buckets` through a deterministic hash. This
//! module provides the projection (bucket values = mean of the weights
//! hashing into them — the least-squares fit to the trained weights) and
//! the storage accounting: `buckets` floats per layer regardless of the
//! virtual weight count.

use crate::visit::for_each_weight_param;
use cnn_stack_nn::{Network, Param};
use cnn_stack_tensor::Tensor;

/// Summary of a hashing pass.
#[derive(Clone, Debug, PartialEq)]
pub struct HashedReport {
    /// Virtual weights covered.
    pub virtual_weights: usize,
    /// Real (bucket) parameters stored.
    pub real_parameters: usize,
    /// Mean squared projection error across all layers.
    pub projection_mse: f64,
}

/// The xxHash-style avalanche mix HashedNet uses conceptually: cheap,
/// deterministic, well spread.
#[inline]
fn hash_index(i: usize, salt: u64) -> u64 {
    let mut x = i as u64 ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    x
}

/// Projects one weight tensor onto `buckets` shared values: each bucket's
/// value is the mean of the weights hashing into it, then every weight
/// reads back its bucket. Returns the per-tensor squared error.
///
/// # Panics
///
/// Panics if `buckets == 0`.
pub fn hash_tensor(weights: &mut Tensor, buckets: usize, salt: u64) -> f64 {
    assert!(buckets > 0, "at least one bucket required");
    let mut sums = vec![0.0f64; buckets];
    let mut counts = vec![0usize; buckets];
    for (i, &v) in weights.data().iter().enumerate() {
        let b = (hash_index(i, salt) % buckets as u64) as usize;
        sums[b] += v as f64;
        counts[b] += 1;
    }
    let values: Vec<f32> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { (s / c as f64) as f32 })
        .collect();
    let mut err = 0.0f64;
    for (i, v) in weights.data_mut().iter_mut().enumerate() {
        let b = (hash_index(i, salt) % buckets as u64) as usize;
        err += ((*v - values[b]) as f64).powi(2);
        *v = values[b];
    }
    err
}

fn hash_param(param: &mut Param, compression: f64, salt: u64) -> (usize, usize, f64) {
    let n = param.value.len();
    let buckets = ((n as f64 / compression).ceil() as usize).clamp(1, n);
    let err = hash_tensor(&mut param.value, buckets, salt);
    (n, buckets, err)
}

/// Applies HashedNet weight sharing to every convolution and linear
/// layer, with `compression` virtual weights per real parameter (e.g.
/// `8.0` keeps one bucket per eight weights).
///
/// # Panics
///
/// Panics if `compression < 1.0`.
pub fn hash_network(net: &mut Network, compression: f64) -> HashedReport {
    assert!(compression >= 1.0, "compression must be at least 1x");
    let mut virtual_weights = 0usize;
    let mut real_parameters = 0usize;
    let mut err = 0.0f64;
    // One salt per weight tensor, advanced in visit order, so every
    // tensor gets an independent hash stream.
    let mut salt: u64 = 0x5EED;
    for_each_weight_param(net, |_, param| {
        salt += 1;
        let (n, b, e) = hash_param(param, compression, salt);
        virtual_weights += n;
        real_parameters += b;
        err += e;
    });
    HashedReport {
        virtual_weights,
        real_parameters,
        projection_mse: if virtual_weights == 0 {
            0.0
        } else {
            err / virtual_weights as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_models::vgg16_width;
    use cnn_stack_nn::{ExecConfig, Phase};

    #[test]
    fn bucket_count_bounds_distinct_values() {
        let mut w = Tensor::from_fn([8, 16], |i| (i as f32 * 0.37).sin());
        hash_tensor(&mut w, 10, 1);
        let distinct: std::collections::BTreeSet<String> =
            w.data().iter().map(|v| format!("{v:.7}")).collect();
        assert!(distinct.len() <= 10, "{} distinct values", distinct.len());
    }

    #[test]
    fn projection_is_idempotent() {
        let mut w = Tensor::from_fn([4, 32], |i| (i as f32 * 0.13).cos());
        hash_tensor(&mut w, 6, 9);
        let once = w.clone();
        let err = hash_tensor(&mut w, 6, 9);
        assert!(w.allclose(&once, 1e-7));
        assert!(err < 1e-9, "second projection should be exact");
    }

    #[test]
    fn single_bucket_is_global_mean() {
        let mut w = Tensor::from_vec([1, 4], vec![1.0, 2.0, 3.0, 6.0]);
        hash_tensor(&mut w, 1, 0);
        assert_eq!(w.data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn more_buckets_mean_less_error() {
        let make = || Tensor::from_fn([16, 64], |i| ((i * 2654435761) % 1000) as f32 / 500.0 - 1.0);
        let mut coarse = make();
        let mut fine = make();
        let e_coarse = hash_tensor(&mut coarse, 4, 2);
        let e_fine = hash_tensor(&mut fine, 256, 2);
        assert!(e_fine < e_coarse);
    }

    #[test]
    fn network_hashing_compresses_and_runs() {
        let mut model = vgg16_width(10, 0.1);
        let report = hash_network(&mut model.network, 8.0);
        assert!(report.virtual_weights > 0);
        let ratio = report.virtual_weights as f64 / report.real_parameters as f64;
        assert!(ratio > 7.0 && ratio <= 8.5, "ratio {ratio}");
        assert!(report.projection_mse > 0.0);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    #[should_panic(expected = "at least 1x")]
    fn sub_unity_compression_rejected() {
        let mut model = vgg16_width(10, 0.05);
        let _ = hash_network(&mut model.network, 0.5);
    }
}
