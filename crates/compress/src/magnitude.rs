//! Deep Compression weight pruning (Han et al., the paper's §III-A /
//! §V-B.1 technique).
//!
//! The network is trained dense, then all weights below a per-layer
//! magnitude threshold are removed and the survivors fine-tuned; the
//! threshold rises iteratively until the target sparsity is reached. The
//! masks installed here pin pruned weights to zero so SGD fine-tuning
//! cannot revive them (see [`cnn_stack_nn::Param::set_mask`]).

use crate::visit::for_each_weight_param;
use cnn_stack_nn::Network;
use cnn_stack_tensor::Tensor;

/// Summary of one pruning pass.
#[derive(Clone, Debug, PartialEq)]
pub struct PruneReport {
    /// Weights considered (conv + linear weight tensors only).
    pub total_weights: usize,
    /// Weights zeroed out.
    pub pruned_weights: usize,
    /// Achieved overall sparsity in `[0, 1]`.
    pub overall_sparsity: f64,
    /// Per-layer `(name, sparsity)` detail.
    pub per_layer: Vec<(String, f64)>,
}

/// Magnitude-prunes every convolution and linear layer of `net` to the
/// given per-layer sparsity (each layer drops its own `sparsity` fraction
/// of lowest-|w| weights, matching the paper's layer-by-layer thresholds).
///
/// Installs (or widens) pruning masks and returns the achieved numbers.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1)`.
pub fn prune_network(net: &mut Network, sparsity: f64) -> PruneReport {
    assert!(
        (0.0..1.0).contains(&sparsity),
        "sparsity must be in [0, 1), got {sparsity}"
    );
    let mut total = 0usize;
    let mut pruned = 0usize;
    let mut per_layer = Vec::new();

    for_each_weight_param(net, |label, param| {
        let (t, p, s) = prune_param_tensor(param, sparsity);
        per_layer.push((label.to_string(), s));
        total += t;
        pruned += p;
    });

    PruneReport {
        total_weights: total,
        pruned_weights: pruned,
        overall_sparsity: if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        },
        per_layer,
    }
}

/// Prunes one parameter tensor to `sparsity`, installing a mask.
/// Returns `(total, pruned, achieved_sparsity)`.
fn prune_param_tensor(param: &mut cnn_stack_nn::Param, sparsity: f64) -> (usize, usize, f64) {
    let n = param.value.len();
    let threshold = magnitude_threshold(&param.value, sparsity);
    let mask = Tensor::from_fn(param.value.shape().dims().to_vec(), |i| {
        if param.value.data()[i].abs() <= threshold {
            0.0
        } else {
            1.0
        }
    });
    let pruned = mask.count_zeros(0.0);
    param.set_mask(mask);
    (n, pruned, pruned as f64 / n as f64)
}

/// The |w| value below which `sparsity` of the tensor's entries fall.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1)`.
pub fn magnitude_threshold(weights: &Tensor, sparsity: f64) -> f32 {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
    if sparsity == 0.0 {
        return -1.0; // nothing is <= -1 in magnitude
    }
    let mut mags: Vec<f32> = weights.data().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("no NaN weights"));
    let k = ((mags.len() as f64 * sparsity) as usize).min(mags.len() - 1);
    // Threshold sits at the k-th smallest magnitude: everything <= it is
    // pruned.
    if k == 0 {
        -1.0
    } else {
        mags[k - 1]
    }
}

/// An iterative pruning schedule: the sparsity targets of each
/// prune → fine-tune round. The paper starts at 50 % and raises the
/// threshold after each 30-epoch fine-tune (§V-B.1).
#[derive(Clone, Debug, PartialEq)]
pub struct PruneSchedule {
    targets: Vec<f64>,
}

impl PruneSchedule {
    /// The paper's schedule shape: 0.5, then rising by `step` until
    /// `max` (exclusive of 1.0).
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe an increasing sequence in
    /// `[0, 1)`.
    pub fn paper(step: f64, max: f64) -> Self {
        assert!(step > 0.0 && (0.5..1.0).contains(&max), "invalid schedule");
        let mut targets = Vec::new();
        let mut s = 0.5;
        while s <= max + 1e-9 {
            targets.push(s.min(max));
            s += step;
        }
        PruneSchedule { targets }
    }

    /// Explicit target list.
    ///
    /// # Panics
    ///
    /// Panics unless targets are strictly increasing within `[0, 1)`.
    pub fn explicit(targets: Vec<f64>) -> Self {
        assert!(!targets.is_empty(), "schedule must be non-empty");
        for w in targets.windows(2) {
            assert!(w[0] < w[1], "targets must be strictly increasing");
        }
        assert!(
            targets.iter().all(|t| (0.0..1.0).contains(t)),
            "targets must be in [0, 1)"
        );
        PruneSchedule { targets }
    }

    /// The target sequence.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }
}

/// Runs the full iterative prune → fine-tune loop: after each pruning
/// round, `fine_tune(net, round)` is called (the caller supplies SGD
/// epochs over its dataset). Returns the report of the final round.
pub fn iterative_prune(
    net: &mut Network,
    schedule: &PruneSchedule,
    mut fine_tune: impl FnMut(&mut Network, usize),
) -> PruneReport {
    let mut last = None;
    for (round, &target) in schedule.targets().iter().enumerate() {
        let report = prune_network(net, target);
        fine_tune(net, round);
        // Fine-tuning respects the masks, so the sparsity is preserved.
        last = Some(report);
    }
    last.expect("schedule is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_models::vgg16_width;
    use cnn_stack_nn::{ExecConfig, Phase};

    #[test]
    fn threshold_is_a_quantile() {
        let w = Tensor::from_vec([1, 8], vec![0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, -0.8]);
        let t = magnitude_threshold(&w, 0.5);
        assert!((t - 0.4).abs() < 1e-6);
        assert_eq!(magnitude_threshold(&w, 0.0), -1.0);
    }

    #[test]
    fn prune_hits_target_sparsity() {
        let mut model = vgg16_width(10, 0.1);
        for &target in &[0.25, 0.5, 0.8] {
            let report = prune_network(&mut model.network, target);
            assert!(
                (report.overall_sparsity - target).abs() < 0.02,
                "target {target}, got {}",
                report.overall_sparsity
            );
        }
    }

    #[test]
    fn pruned_network_still_runs() {
        let mut model = vgg16_width(10, 0.1);
        prune_network(&mut model.network, 0.7);
        let y = model.network.forward(
            &cnn_stack_tensor::Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn network_sparsity_reflects_pruning() {
        let mut model = vgg16_width(10, 0.1);
        prune_network(&mut model.network, 0.6);
        let s = model.network.weight_sparsity(&[1, 3, 32, 32]);
        // BN gammas count as weights too, so overall is slightly below
        // the conv/linear target.
        assert!(s > 0.5, "sparsity {s}");
    }

    #[test]
    fn resblock_convs_are_pruned() {
        let mut model = cnn_stack_models::resnet18_width(10, 0.1);
        let report = prune_network(&mut model.network, 0.5);
        let resblock_layers = report
            .per_layer
            .iter()
            .filter(|(n, _)| n.contains("resblock"))
            .count();
        // 8 blocks × 2 convs + 3 projection shortcuts.
        assert_eq!(resblock_layers, 19);
    }

    #[test]
    fn iterative_prune_monotone_and_mask_respected() {
        let mut model = vgg16_width(10, 0.1);
        let schedule = PruneSchedule::explicit(vec![0.3, 0.5, 0.7]);
        let mut rounds = 0;
        let report = iterative_prune(&mut model.network, &schedule, |net, _round| {
            rounds += 1;
            // Simulate fine-tuning: a gradient-like update everywhere.
            for p in net.params_mut() {
                let g = Tensor::full(p.value.shape().dims().to_vec(), 0.01);
                p.value.axpy(-1.0, &g);
                p.apply_mask();
            }
        });
        assert_eq!(rounds, 3);
        assert!((report.overall_sparsity - 0.7).abs() < 0.02);
        // Masked weights survived the fake fine-tuning as zeros.
        let conv = model
            .network
            .layer_mut(0)
            .unwrap()
            .as_any_mut()
            .downcast_mut::<cnn_stack_nn::Conv2d>()
            .unwrap();
        let zeros = conv.weight().value.count_zeros(0.0);
        assert!(zeros as f64 / conv.weight().value.len() as f64 > 0.65);
    }

    #[test]
    fn paper_schedule_shape() {
        let s = PruneSchedule::paper(0.1, 0.9);
        assert!((s.targets()[0] - 0.5).abs() < 1e-9);
        assert!(s.targets().last().unwrap() <= &0.9);
        assert!(s.targets().len() >= 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn explicit_schedule_validated() {
        let _ = PruneSchedule::explicit(vec![0.5, 0.4]);
    }

    #[test]
    #[should_panic(expected = "sparsity must be in")]
    fn full_sparsity_rejected() {
        let mut model = vgg16_width(10, 0.1);
        let _ = prune_network(&mut model.network, 1.0);
    }
}
