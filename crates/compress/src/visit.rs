//! The shared weight-parameter walk behind every compression pass.
//!
//! Each technique in this crate — pruning, ternarisation, binarisation,
//! hashing, INQ — visits the same set of parameters: the convolution,
//! linear and depthwise weight tensors, including those nested inside
//! residual blocks, and labels them identically in its report.
//! [`for_each_weight_param`] centralises that walk on
//! [`Layer::visit_mut`], so the passes no longer each maintain a
//! downcast-if chain and automatically cover any future composite layer
//! that implements `visit_mut`.

use cnn_stack_nn::{Conv2d, DepthwiseConv2d, Layer, Linear, Network, Param, ResidualBlock};

/// Visits every compressible weight parameter of `net` in layer order,
/// paired with the stable label the compression reports use
/// (`layer3:conv`, `layer5:linear`, `layer7:resblock.conv2`, …).
///
/// Built on [`Layer::visit_mut`], which yields composites parent-first:
/// a residual block's convolutions therefore arrive in `conv1`, `conv2`,
/// shortcut order, matching the report layout every pass pins in its
/// tests. Bias and batch-norm parameters are deliberately excluded — the
/// paper's techniques compress weight tensors only.
pub fn for_each_weight_param(net: &mut Network, mut f: impl FnMut(&str, &mut Param)) {
    for (i, layer) in net.layers_mut().iter_mut().enumerate() {
        let mut in_block = false;
        let mut block_convs = 0usize;
        layer.visit_mut(&mut |l: &mut dyn Layer| {
            if l.as_any_mut().downcast_mut::<ResidualBlock>().is_some() {
                in_block = true;
            } else if let Some(conv) = l.as_any_mut().downcast_mut::<Conv2d>() {
                let label = if in_block {
                    block_convs += 1;
                    match block_convs {
                        1 => format!("layer{i}:resblock.conv1"),
                        2 => format!("layer{i}:resblock.conv2"),
                        _ => format!("layer{i}:resblock.shortcut"),
                    }
                } else {
                    format!("layer{i}:conv")
                };
                f(&label, conv.weight_mut());
            } else if let Some(fc) = l.as_any_mut().downcast_mut::<Linear>() {
                f(&format!("layer{i}:linear"), fc.weight_mut());
            } else if let Some(dw) = l.as_any_mut().downcast_mut::<DepthwiseConv2d>() {
                f(&format!("layer{i}:dwconv"), dw.weight_mut());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_follow_layer_order_and_block_structure() {
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(3, 4, 3, 1, 1, 1)),
            Box::new(cnn_stack_nn::ReLU::new()),
            Box::new(ResidualBlock::new(4, 8, 2, 2)),
            Box::new(DepthwiseConv2d::new(8, 3, 1, 1, 3)),
            Box::new(cnn_stack_nn::Flatten::new()),
            Box::new(Linear::new(8, 2, 4)),
        ])
        .unwrap();
        let mut labels = Vec::new();
        for_each_weight_param(&mut net, |label, _| labels.push(label.to_string()));
        assert_eq!(
            labels,
            vec![
                "layer0:conv",
                "layer2:resblock.conv1",
                "layer2:resblock.conv2",
                "layer2:resblock.shortcut",
                "layer3:dwconv",
                "layer5:linear",
            ]
        );
    }

    #[test]
    fn identity_shortcut_block_yields_two_convs() {
        let mut net = Network::new(vec![Box::new(ResidualBlock::new(4, 4, 1, 7))]).unwrap();
        let mut labels = Vec::new();
        for_each_weight_param(&mut net, |label, _| labels.push(label.to_string()));
        assert_eq!(
            labels,
            vec!["layer0:resblock.conv1", "layer0:resblock.conv2"]
        );
    }

    #[test]
    fn visits_grant_mutable_param_access() {
        let mut net = Network::new(vec![Box::new(Conv2d::new(1, 1, 3, 1, 1, 0))]).unwrap();
        for_each_weight_param(&mut net, |_, p| {
            for v in p.value.data_mut() {
                *v = 2.5;
            }
        });
        let conv = net.layers()[0].as_any().downcast_ref::<Conv2d>().unwrap();
        assert!(conv.weight().value.data().iter().all(|&v| v == 2.5));
    }
}
