//! Calibrated accuracy-response models for the paper's Fig. 3 Pareto
//! curves.
//!
//! Reproducing Fig. 3 exactly requires tens of GPU-hours of CIFAR-10
//! training per point. Per the substitution policy (`DESIGN.md` §4.3/§5)
//! this module provides smooth per-model response functions **calibrated
//! to the paper's own reported anchor points**: the §V-A baseline
//! accuracies, the Table III elbows (accuracy-optimal operating points)
//! and the Table V fixed-90 %-accuracy operating points. The real
//! prune/fine-tune pipelines in this crate are exercised end-to-end on
//! the synthetic dataset by the integration tests; these curves exist so
//! the figure/table harness is deterministic and faithful to the paper's
//! numbers.
//!
//! Accuracy is in **percent** (0–100). `x` is in **percent** for weight
//! pruning (sparsity) and channel pruning (compression rate), and an
//! **absolute threshold** for TTQ (the paper sweeps 0–0.20).

use cnn_stack_models::ModelKind;

/// The three compression techniques of the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Deep Compression magnitude weight pruning.
    WeightPruning,
    /// Fisher channel pruning.
    ChannelPruning,
    /// Trained ternary quantisation.
    TernaryQuantisation,
}

impl Technique {
    /// All techniques, in the paper's column order.
    pub fn all() -> [Technique; 3] {
        [
            Technique::WeightPruning,
            Technique::ChannelPruning,
            Technique::TernaryQuantisation,
        ]
    }

    /// Display name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::WeightPruning => "Weight Pruning",
            Technique::ChannelPruning => "Channel Pruning",
            Technique::TernaryQuantisation => "Quantisation",
        }
    }
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Calibrated accuracy-response curves (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccuracyModel;

/// Random-guess floor for a 10-class problem, in percent.
const FLOOR: f64 = 10.0;

/// Logistic decay from `base` towards [`FLOOR`], centred at `x0` with
/// width `w`.
fn logistic(base: f64, x: f64, x0: f64, w: f64) -> f64 {
    FLOOR + (base - FLOOR) / (1.0 + ((x - x0) / w).exp())
}

impl AccuracyModel {
    /// Baseline (uncompressed) accuracy in percent — §V-A: 92.20 / 94.32
    /// / 90.47.
    pub fn baseline(kind: ModelKind) -> f64 {
        kind.paper_baseline_accuracy() * 100.0
    }

    /// Predicted top-1 accuracy (percent) at operating point `x`.
    ///
    /// * `WeightPruning` — `x` = sparsity in percent (Fig. 3a).
    /// * `ChannelPruning` — `x` = compression rate in percent (Fig. 3b).
    /// * `TernaryQuantisation` — `x` = TTQ threshold (Fig. 3c).
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative.
    pub fn accuracy(kind: ModelKind, technique: Technique, x: f64) -> f64 {
        assert!(x >= 0.0, "operating point must be non-negative");
        let base = Self::baseline(kind);
        match (technique, kind) {
            // Fig. 3(a): VGG/ResNet withstand heavy pruning, MobileNet
            // "suffers significant accuracy losses".
            (Technique::WeightPruning, ModelKind::Vgg16) => logistic(base, x, 97.6, 3.50),
            (Technique::WeightPruning, ModelKind::ResNet18) => logistic(base, x, 93.3, 0.79),
            (Technique::WeightPruning, ModelKind::MobileNet) => logistic(base, x, 135.5, 18.2),
            // Fig. 3(b): "all three networks perform very similarly as
            // the compression rate increases".
            (Technique::ChannelPruning, ModelKind::Vgg16) => logistic(base, x, 102.2, 2.28),
            (Technique::ChannelPruning, ModelKind::ResNet18) => logistic(base, x, 98.4, 1.51),
            (Technique::ChannelPruning, ModelKind::MobileNet) => logistic(base, x, 103.7, 1.5),
            // Fig. 3(c): VGG/ResNet decline gently with threshold;
            // MobileNet's flat weight distribution needs a large
            // threshold and *improves* towards it.
            (Technique::TernaryQuantisation, ModelKind::Vgg16) => (base - 55.0 * x * x).max(FLOOR),
            (Technique::TernaryQuantisation, ModelKind::ResNet18) => {
                (base - 108.0 * x * x).max(FLOOR)
            }
            (Technique::TernaryQuantisation, ModelKind::MobileNet) => {
                (base - 18.0 * (-x / 0.05).exp()).max(FLOOR)
            }
        }
    }

    /// The weight sparsity a TTQ threshold induces, in percent
    /// (saturating fit through the Table III anchors: VGG 0.09→69.52 %,
    /// ResNet 0.07→87.93 %, MobileNet 0.20→92.13 %).
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    pub fn ttq_sparsity(kind: ModelKind, t: f64) -> f64 {
        assert!(t >= 0.0, "threshold must be non-negative");
        let (smax, tau) = match kind {
            ModelKind::Vgg16 => (95.0, 0.0683),
            ModelKind::ResNet18 => (95.0, 0.0269),
            ModelKind::MobileNet => (95.0, 0.0571),
        };
        smax * (1.0 - (-t / tau).exp())
    }

    /// Samples the full Pareto curve over the paper's plotted range.
    pub fn curve(kind: ModelKind, technique: Technique, points: usize) -> Vec<(f64, f64)> {
        let (lo, hi) = match technique {
            Technique::WeightPruning => (0.0, 100.0),
            Technique::ChannelPruning => (60.0, 100.0),
            Technique::TernaryQuantisation => (0.0, 0.20),
        };
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1).max(1) as f64;
                (x, Self::accuracy(kind, technique, x))
            })
            .collect()
    }

    /// The paper's Table III operating points (the Pareto-curve elbows
    /// chosen for the baseline hardware experiments).
    pub fn table3_operating_point(kind: ModelKind, technique: Technique) -> f64 {
        match (technique, kind) {
            (Technique::WeightPruning, ModelKind::Vgg16) => 76.54,
            (Technique::WeightPruning, ModelKind::ResNet18) => 88.92,
            (Technique::WeightPruning, ModelKind::MobileNet) => 23.46,
            (Technique::ChannelPruning, ModelKind::Vgg16) => 88.48,
            (Technique::ChannelPruning, ModelKind::ResNet18) => 60.24,
            (Technique::ChannelPruning, ModelKind::MobileNet) => 80.33,
            (Technique::TernaryQuantisation, ModelKind::Vgg16) => 0.09,
            (Technique::TernaryQuantisation, ModelKind::ResNet18) => 0.07,
            (Technique::TernaryQuantisation, ModelKind::MobileNet) => 0.20,
        }
    }

    /// Table III's reported TTQ sparsities (percent) at the Table III
    /// thresholds: 69.52 / 87.93 / 92.13.
    pub fn table3_ttq_sparsity(kind: ModelKind) -> f64 {
        match kind {
            ModelKind::Vgg16 => 69.52,
            ModelKind::ResNet18 => 87.93,
            ModelKind::MobileNet => 92.13,
        }
    }

    /// The paper's Table V operating points (accuracy fixed at 90 %).
    /// For TTQ the threshold is 0.2 for all models; the induced
    /// sparsities Table V reports are 70 / 80 / 20 %.
    pub fn table5_operating_point(kind: ModelKind, technique: Technique) -> f64 {
        match (technique, kind) {
            (Technique::WeightPruning, ModelKind::Vgg16) => 85.0,
            (Technique::WeightPruning, ModelKind::ResNet18) => 91.0,
            (Technique::WeightPruning, ModelKind::MobileNet) => 42.0,
            (Technique::ChannelPruning, ModelKind::Vgg16) => 94.0,
            (Technique::ChannelPruning, ModelKind::ResNet18) => 94.0,
            (Technique::ChannelPruning, ModelKind::MobileNet) => 96.0,
            (Technique::TernaryQuantisation, _) => 0.2,
        }
    }

    /// Table V's reported TTQ sparsities at threshold 0.2 (these come
    /// from independent fine-tuning runs and differ from the Table III
    /// curve — the paper's own tables disagree here; see
    /// `EXPERIMENTS.md`).
    pub fn table5_ttq_sparsity(kind: ModelKind) -> f64 {
        match kind {
            ModelKind::Vgg16 => 70.0,
            ModelKind::ResNet18 => 80.0,
            ModelKind::MobileNet => 20.0,
        }
    }

    /// Largest operating point whose predicted accuracy still meets
    /// `target` percent, found by bisection over the technique's range.
    /// Returns `None` if even `x = 0` misses the target.
    pub fn operating_point_for_accuracy(
        kind: ModelKind,
        technique: Technique,
        target: f64,
    ) -> Option<f64> {
        let (lo, hi) = match technique {
            Technique::WeightPruning => (0.0, 100.0),
            Technique::ChannelPruning => (0.0, 100.0),
            Technique::TernaryQuantisation => (0.0, 0.25),
        };
        // MobileNet TTQ *rises* with x, so handle the monotone-increasing
        // case first: the top of the range is the most aggressive point.
        if Self::accuracy(kind, technique, hi) >= target {
            return Some(hi);
        }
        if Self::accuracy(kind, technique, lo) < target {
            return None;
        }
        let (mut lo, mut hi) = (lo, hi);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if Self::accuracy(kind, technique, mid) >= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_match_paper() {
        assert!((AccuracyModel::baseline(ModelKind::Vgg16) - 92.20).abs() < 1e-9);
        assert!((AccuracyModel::baseline(ModelKind::ResNet18) - 94.32).abs() < 1e-9);
        assert!((AccuracyModel::baseline(ModelKind::MobileNet) - 90.47).abs() < 1e-9);
    }

    #[test]
    fn table5_anchors_hit_90_percent() {
        // The calibration contract: each Table V operating point predicts
        // ~90 % accuracy.
        for kind in ModelKind::all() {
            for tech in Technique::all() {
                let x = AccuracyModel::table5_operating_point(kind, tech);
                let acc = AccuracyModel::accuracy(kind, tech, x);
                assert!(
                    (acc - 90.0).abs() < 1.0,
                    "{kind} {tech} at {x}: predicted {acc}"
                );
            }
        }
    }

    #[test]
    fn table3_elbows_stay_near_baseline() {
        // Elbows are accuracy-optimal points: within a couple of percent
        // of the baseline.
        for kind in ModelKind::all() {
            for tech in Technique::all() {
                let x = AccuracyModel::table3_operating_point(kind, tech);
                let acc = AccuracyModel::accuracy(kind, tech, x);
                let base = AccuracyModel::baseline(kind);
                assert!(
                    base - acc < 3.0,
                    "{kind} {tech} elbow at {x}: {acc} vs base {base}"
                );
            }
        }
    }

    #[test]
    fn weight_pruning_monotone_decreasing() {
        for kind in ModelKind::all() {
            let mut prev = f64::INFINITY;
            for i in 0..=20 {
                let acc = AccuracyModel::accuracy(kind, Technique::WeightPruning, i as f64 * 5.0);
                assert!(acc <= prev + 1e-9, "{kind} not monotone at {i}");
                prev = acc;
            }
        }
    }

    #[test]
    fn mobilenet_is_most_pruning_fragile() {
        // At 60% sparsity MobileNet has lost more accuracy than VGG or
        // ResNet — the Fig. 3(a) separation.
        let drop = |kind: ModelKind| {
            AccuracyModel::baseline(kind)
                - AccuracyModel::accuracy(kind, Technique::WeightPruning, 60.0)
        };
        assert!(drop(ModelKind::MobileNet) > drop(ModelKind::Vgg16));
        assert!(drop(ModelKind::MobileNet) > drop(ModelKind::ResNet18));
    }

    #[test]
    fn mobilenet_ttq_improves_with_threshold() {
        // Fig. 3(c): MobileNet needs a larger threshold.
        let low =
            AccuracyModel::accuracy(ModelKind::MobileNet, Technique::TernaryQuantisation, 0.01);
        let high =
            AccuracyModel::accuracy(ModelKind::MobileNet, Technique::TernaryQuantisation, 0.20);
        assert!(high > low + 5.0);
    }

    #[test]
    fn ttq_sparsity_hits_table3_anchors() {
        assert!((AccuracyModel::ttq_sparsity(ModelKind::Vgg16, 0.09) - 69.52).abs() < 1.5);
        assert!((AccuracyModel::ttq_sparsity(ModelKind::ResNet18, 0.07) - 87.93).abs() < 1.5);
        assert!((AccuracyModel::ttq_sparsity(ModelKind::MobileNet, 0.20) - 92.13).abs() < 1.5);
    }

    #[test]
    fn ttq_sparsity_monotone_in_threshold() {
        for kind in ModelKind::all() {
            assert!(
                AccuracyModel::ttq_sparsity(kind, 0.15) > AccuracyModel::ttq_sparsity(kind, 0.05)
            );
        }
    }

    #[test]
    fn curves_have_requested_resolution_and_range() {
        let c = AccuracyModel::curve(ModelKind::Vgg16, Technique::ChannelPruning, 41);
        assert_eq!(c.len(), 41);
        assert!((c[0].0 - 60.0).abs() < 1e-9);
        assert!((c[40].0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_lookup_agrees_with_forward() {
        for kind in ModelKind::all() {
            let x =
                AccuracyModel::operating_point_for_accuracy(kind, Technique::WeightPruning, 90.0)
                    .unwrap();
            let acc = AccuracyModel::accuracy(kind, Technique::WeightPruning, x);
            assert!((acc - 90.0).abs() < 0.2, "{kind}: {x} -> {acc}");
        }
    }

    #[test]
    fn inverse_lookup_matches_table5_roughly() {
        // The Table V weight-pruning points should be near our inverse
        // lookup at 90%.
        for kind in ModelKind::all() {
            let x =
                AccuracyModel::operating_point_for_accuracy(kind, Technique::WeightPruning, 90.0)
                    .unwrap();
            let paper = AccuracyModel::table5_operating_point(kind, Technique::WeightPruning);
            assert!(
                (x - paper).abs() < 6.0,
                "{kind}: bisected {x} vs paper {paper}"
            );
        }
    }

    #[test]
    fn impossible_target_returns_none() {
        assert!(AccuracyModel::operating_point_for_accuracy(
            ModelKind::MobileNet,
            Technique::WeightPruning,
            99.0
        )
        .is_none());
    }
}
