//! Ablation: batch-norm folding — the deployment-time layer-3
//! transformation that merges inference-mode batch norms into the
//! preceding convolutions. Host-measured forward times before/after, per
//! model, plus the layer-count reduction.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_models::ModelKind;
use cnn_stack_nn::{fold_batchnorm, strip_identity_batchnorms, ExecConfig, Phase};
use cnn_stack_tensor::Tensor;
use std::time::Instant;

fn measure(net: &mut cnn_stack_nn::Network) -> f64 {
    let exec = ExecConfig::default();
    let input = Tensor::from_fn([1, 3, 32, 32], |i| (i as f32 * 0.001).sin());
    let _ = net.forward(&input, Phase::Eval, &exec); // warm
    let repeats = 5;
    let start = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(net.forward(&input, Phase::Eval, &exec).data()[0]);
    }
    start.elapsed().as_secs_f64() / repeats as f64
}

fn main() {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        let mut model = kind.build_width(10, 0.25);
        // Warm the running statistics so folding is non-trivial.
        let exec = ExecConfig::default();
        for seed in 0..2 {
            let x = Tensor::from_fn([4, 3, 32, 32], |i| {
                ((i as u64 * 37 + seed) % 19) as f32 * 0.1
            });
            let _ = model.network.forward(&x, Phase::Train, &exec);
        }
        let before = measure(&mut model.network);
        let layers_before = model.network.descriptors(&[1, 3, 32, 32]).len();
        let folded = fold_batchnorm(&mut model.network);
        let stripped = strip_identity_batchnorms(&mut model.network);
        let after = measure(&mut model.network);
        let layers_after = model.network.descriptors(&[1, 3, 32, 32]).len();
        rows.push(vec![
            kind.name().to_string(),
            format!("{folded}"),
            format!("{layers_before} -> {layers_after} ({stripped} stripped)"),
            fmt_seconds(before),
            fmt_seconds(after),
            format!("{:.2}x", before / after),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: batch-norm folding (host-measured, width 0.25, 1 thread)",
            &[
                "Model",
                "BNs folded",
                "Primitive layers",
                "Before",
                "After",
                "Speedup"
            ],
            &rows,
        )
    );
    println!(
        "\nFolding removes one full pass over every activation map per\n\
         convolution (residual-block batch norms fold in place and cannot be\n\
         stripped without graph surgery). The function computed is unchanged:\n\
         see nn::fold tests and tests/cross_stack_consistency.rs."
    );
}
