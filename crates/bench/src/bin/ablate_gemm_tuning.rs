//! Ablation: GEMM auto-tuning (the CLTune story) — real measured search
//! over the tiling surface for a CIFAR conv-shaped GEMM and an
//! ImageNet-shaped one.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_hwsim::{tune_gemm, TunedGemm};
use cnn_stack_tensor::{Tensor, TileConfig};
use std::time::Instant;

fn time_config(cfg: TileConfig, m: usize, k: usize, n: usize) -> f64 {
    let a = Tensor::from_fn([m, k], |i| (i as f32 * 0.13).sin());
    let b = Tensor::from_fn([k, n], |i| (i as f32 * 0.07).cos());
    let gemm = TunedGemm::new(cfg);
    let _ = gemm.matmul(&a, &b); // warm
    let start = Instant::now();
    let c = gemm.matmul(&a, &b);
    std::hint::black_box(c.data()[0]);
    start.elapsed().as_secs_f64()
}

fn main() {
    // VGG-16 layer 3 at CIFAR scale: [128 x 576] . [576 x 256].
    let shapes = [
        (
            "CIFAR conv (128x576 . 576x256)",
            128usize,
            576usize,
            256usize,
        ),
        ("ImageNet conv (128x576 . 576x3136)", 128, 576, 3136),
    ];
    for (label, m, k, n) in shapes {
        let result = tune_gemm(m, k, n, 12, 3, 7);
        let default = time_config(TileConfig::default(), m, k, n);
        let worst = result
            .evaluated
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        let rows = vec![
            vec![
                "tuned best".to_string(),
                format!("{:?}", result.best),
                fmt_seconds(result.best_seconds),
            ],
            vec![
                "default".to_string(),
                format!("{:?}", TileConfig::default()),
                fmt_seconds(default),
            ],
            vec![
                "tuned worst".to_string(),
                format!("{:?}", worst.0),
                fmt_seconds(worst.1),
            ],
        ];
        println!(
            "{}",
            render_table(
                &format!("Ablation: GEMM auto-tuning, {label} (host-measured, 12 candidates)"),
                &["Config", "Tiling", "Median time"],
                &rows,
            )
        );
        println!("worst/best spread: {:.2}x\n", worst.1 / result.best_seconds);
    }
    println!(
        "This is the CLTune mechanism in miniature: the tuning surface matters\n\
         more as the GEMM grows, which is also why CLBlast only pays off for\n\
         big (ImageNet-scale) matrices in the paper's Fig. 6 discussion."
    );
}
