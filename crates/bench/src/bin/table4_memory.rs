//! Table IV: runtime memory requirements (MB) for each model ×
//! compression technique at the Table III operating points.

use cnn_stack_bench::{compression_at, render_table, OperatingPoints};
use cnn_stack_compress::Technique;
use cnn_stack_core::{evaluate, PlatformChoice, StackConfig};
use cnn_stack_models::ModelKind;

fn main() {
    let paper: [(ModelKind, [f64; 4]); 3] = [
        (ModelKind::Vgg16, [111.4, 144.4, 17.9, 130.3]),
        (ModelKind::ResNet18, [89.0, 99.4, 31.6, 100.8]),
        (ModelKind::MobileNet, [69.1, 188.5, 10.8, 201.1]),
    ];

    let mut rows = Vec::new();
    for (kind, paper_mb) in paper {
        let base = StackConfig::plain(kind, PlatformChoice::OdroidXu4);
        let cells = [
            evaluate(&base),
            evaluate(&base.compress(compression_at(
                kind,
                Technique::WeightPruning,
                OperatingPoints::Table3,
            ))),
            evaluate(&base.compress(compression_at(
                kind,
                Technique::ChannelPruning,
                OperatingPoints::Table3,
            ))),
            evaluate(&base.compress(compression_at(
                kind,
                Technique::TernaryQuantisation,
                OperatingPoints::Table3,
            ))),
        ];
        let mut row = vec![kind.name().to_string()];
        for (cell, p) in cells.iter().zip(paper_mb) {
            row.push(format!("{:.1} (paper {p:.1})", cell.memory_mb));
        }
        rows.push(row);
    }

    print!(
        "{}",
        render_table(
            "Table IV: memory requirements (MB), measured vs paper",
            &["Model", "Plain", "W. Pruning", "C. Pruning", "T. Quantis."],
            &rows,
        )
    );
    println!(
        "\nShape to check: channel pruning shrinks memory dramatically; weight\n\
         pruning and quantisation *increase* it despite sparsity, because each\n\
         small (3x3 / 1x1) filter pays its own CSR array overheads (SV-D)."
    );
}
