//! Ablation: OpenMP loop schedules (static / dynamic / guided) on a
//! skewed convolution-like workload — real executions via the
//! `cnn-stack-parallel` fork-join runtime, reporting chunk counts and
//! load imbalance.

use cnn_stack_bench::render_table;
use cnn_stack_parallel::{parallel_for_stats, Schedule};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Simulated per-channel work: channel `i` costs `(i % 7 + 1)` units —
/// the uneven per-iteration cost the paper cites as the reason for
/// dynamic scheduling ("because of the different amount of data required
/// to process in each loop", §IV-D).
fn skewed_work(i: usize, sink: &AtomicU64) {
    let units = (i % 7 + 1) * 12_000;
    let mut acc = 0u64;
    for k in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
    }
    sink.fetch_xor(acc, Ordering::Relaxed);
}

fn main() {
    let sink = AtomicU64::new(0);
    let total = 512; // channels
    let threads = 4;
    let mut rows = Vec::new();
    for (label, schedule) in [
        ("static", Schedule::Static),
        ("dynamic(1)", Schedule::Dynamic { chunk: 1 }),
        ("dynamic(8)", Schedule::Dynamic { chunk: 8 }),
        ("guided", Schedule::Guided { min_chunk: 1 }),
    ] {
        let start = Instant::now();
        let stats = parallel_for_stats(threads, total, schedule, |range| {
            for i in range {
                skewed_work(i, &sink);
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        rows.push(vec![
            label.to_string(),
            format!("{:.1} ms", elapsed * 1e3),
            stats.chunks.to_string(),
            format!("{:.3}", stats.imbalance()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!("Ablation: loop schedules, {total} skewed grains on {threads} threads (host-measured)"),
            &["Schedule", "Time", "Chunks", "Imbalance (max/mean iters)"],
            &rows,
        )
    );
    println!(
        "\n(sink={:x}) Dynamic scheduling trades dispatch overhead for balance —\n\
         the paper's choice for convolution outer loops. On a single-core host\n\
         the times converge; chunk counts and imbalance still differentiate.",
        sink.load(Ordering::Relaxed)
    );
}
