//! Figure 3: accuracy/compression Pareto curves for the three models
//! under (a) weight pruning, (b) channel pruning, (c) ternary
//! quantisation.

use cnn_stack_bench::render_table;
use cnn_stack_compress::Technique;
use cnn_stack_core::pareto::pareto_curve;
use cnn_stack_models::ModelKind;

fn print_panel(
    title: &str,
    technique: Technique,
    xs: &[f64],
    x_label: &str,
    x_fmt: fn(f64) -> String,
) {
    let curves: Vec<Vec<_>> = ModelKind::all()
        .iter()
        .map(|&kind| pareto_curve(kind, technique, 201))
        .collect();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            let mut row = vec![x_fmt(x)];
            for curve in &curves {
                // Nearest sampled point.
                let p = curve
                    .iter()
                    .min_by(|a, b| {
                        (a.x - x)
                            .abs()
                            .partial_cmp(&(b.x - x).abs())
                            .expect("finite")
                    })
                    .expect("non-empty curve");
                row.push(format!("{:.2}%", p.accuracy_pct));
            }
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            title,
            &[x_label, "MobileNet", "ResNet-18", "VGG-16"],
            &rows
                .into_iter()
                .map(|mut r| {
                    // ModelKind::all() order is VGG, ResNet, MobileNet;
                    // the paper's legend lists MobileNet first.
                    r.swap(1, 3);
                    r
                })
                .collect::<Vec<_>>(),
        )
    );
}

fn main() {
    let sparsities: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    print_panel(
        "Figure 3(a): Top-1 accuracy vs weight-pruning sparsity",
        Technique::WeightPruning,
        &sparsities,
        "Sparsity",
        |x| format!("{x:.0}%"),
    );

    let compressions: Vec<f64> = (0..=8).map(|i| 60.0 + i as f64 * 5.0).collect();
    print_panel(
        "Figure 3(b): Top-1 accuracy vs channel-pruning compression rate",
        Technique::ChannelPruning,
        &compressions,
        "Compression",
        |x| format!("{x:.0}%"),
    );

    let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 * 0.02).collect();
    print_panel(
        "Figure 3(c): Top-1 accuracy vs TTQ threshold",
        Technique::TernaryQuantisation,
        &thresholds,
        "Threshold",
        |x| format!("{x:.2}"),
    );

    println!(
        "Anchors: baselines 92.20/94.32/90.47 (VGG/ResNet/MobileNet, SV-A);\n\
         curves calibrated to Tables III and V (see compress::accuracy)."
    );
}
