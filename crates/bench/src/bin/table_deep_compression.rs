//! Extension table: the full Deep Compression storage pipeline (§III-A's
//! "pruning, quantisation, and Huffman coding") realised end to end —
//! weight storage bytes after each stage, per model.

use cnn_stack_bench::render_table;
use cnn_stack_compress::{code_ternary_network, magnitude, ttq};
use cnn_stack_models::ModelKind;
use cnn_stack_nn::memory::layer_weight_bytes;
use cnn_stack_nn::network::set_network_format;
use cnn_stack_nn::WeightFormat;

fn weight_bytes(net: &cnn_stack_nn::Network, format: WeightFormat) -> usize {
    let mut clone_descs = net.descriptors(&[1, 3, 32, 32]);
    for d in &mut clone_descs {
        d.format = format;
    }
    clone_descs.iter().map(layer_weight_bytes).sum()
}

fn main() {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        let mut model = kind.build(10);
        let dense = weight_bytes(&model.network, WeightFormat::Dense);

        // Stage 1: prune to the Table III sparsity.
        let sparsity = cnn_stack_compress::AccuracyModel::table3_operating_point(
            kind,
            cnn_stack_compress::Technique::WeightPruning,
        ) / 100.0;
        magnitude::prune_network(&mut model.network, sparsity);
        set_network_format(&mut model.network, WeightFormat::Csr);
        let pruned_csr = weight_bytes(&model.network, WeightFormat::Csr);

        // Stage 2: ternary quantisation of the survivors.
        ttq::ttq_quantise(&mut model.network, 0.0);
        // Stage 3: Huffman coding of the ternary stream.
        let report = code_ternary_network(&mut model.network);

        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1} MB", dense as f64 / 1e6),
            format!("{:.1} MB", pruned_csr as f64 / 1e6),
            format!("{:.2} MB", report.coded_bytes as f64 / 1e6),
            format!("{:.2} bits/w", report.bits_per_weight),
            format!("{:.0}x", dense as f64 / report.coded_bytes as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Deep Compression storage pipeline: prune -> quantise -> Huffman",
            &[
                "Model",
                "Dense",
                "Pruned (CSR)",
                "Huffman",
                "Rate",
                "Total compression"
            ],
            &rows,
        )
    );
    println!(
        "\nThis is the storage story the paper's technique citation [12] tells:\n\
         the pipeline shrinks *storage* dramatically — but as Tables IV/VI\n\
         show, none of it helps (and CSR actively hurts) the *runtime* memory\n\
         footprint or inference time on unmodified kernels."
    );
}
