//! Figure 5: inference time of the three compression techniques with
//! accuracy fixed at 90 % — Odroid-XU4 with eight threads, Intel Core i7
//! with four.

use cnn_stack_bench::{compression_at, fmt_seconds, render_table, OperatingPoints};
use cnn_stack_compress::Technique;
use cnn_stack_core::{evaluate, PlatformChoice, StackConfig};
use cnn_stack_models::ModelKind;

fn main() {
    for (platform, threads) in [(PlatformChoice::OdroidXu4, 8), (PlatformChoice::IntelI7, 4)] {
        let mut rows = Vec::new();
        for kind in ModelKind::all() {
            let base = StackConfig::plain(kind, platform).threads(threads);
            let mut row = vec![kind.name().to_string()];
            for technique in Technique::all() {
                let cfg = base.compress(compression_at(kind, technique, OperatingPoints::Table5));
                let cell = evaluate(&cfg);
                row.push(fmt_seconds(cell.modelled_s));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 5: inference time at 90% accuracy on {} ({threads} threads)",
                    platform.platform().name
                ),
                &["Model", "Weight Pruning", "Channel Pruning", "Quantisation"],
                &rows,
            )
        );
    }
    println!(
        "Shape to check: channel pruning wins on every model and platform; on\n\
         the Odroid, channel-pruned VGG-16 and ResNet-18 beat MobileNet — big\n\
         networks compressed beyond a hand-designed small one (SV-E)."
    );
}
