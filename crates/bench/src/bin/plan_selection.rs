//! Prints the cost model's per-layer algorithm selection over a mixed
//! VGG-16 / MobileNet layer sweep (plus one large-kernel stem), both
//! unbudgeted and under a tight arena budget — the source of the
//! plan-selection table in `EXPERIMENTS.md`.
//!
//!   cargo run --release -p cnn-stack-bench --bin plan_selection

use cnn_stack_nn::{Conv2d, ExecConfig, Layer, Network, PlanCompiler};

struct Row {
    name: &'static str,
    in_c: usize,
    out_c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
}

fn net(r: &Row) -> Network {
    Network::new(vec![
        Box::new(Conv2d::new(r.in_c, r.out_c, r.k, r.stride, r.pad, 7)) as Box<dyn Layer>,
    ])
    .expect("single-layer net")
}

/// The tag SelectAlgorithms appended to the step name, e.g. "im2col-packed".
fn chosen(name: &str) -> String {
    name.rsplit_once(" [")
        .map(|(_, tag)| tag.trim_end_matches(']').to_string())
        .unwrap_or_else(|| "(base)".to_string())
}

fn main() {
    let rows = [
        Row {
            name: "vgg16 conv1_1  3->64    32x32 k3 s1",
            in_c: 3,
            out_c: 64,
            h: 32,
            w: 32,
            k: 3,
            stride: 1,
            pad: 1,
        },
        Row {
            name: "vgg16 conv2_2  128->128 16x16 k3 s1",
            in_c: 128,
            out_c: 128,
            h: 16,
            w: 16,
            k: 3,
            stride: 1,
            pad: 1,
        },
        Row {
            name: "vgg16 conv4_1  512->512 4x4   k3 s1",
            in_c: 512,
            out_c: 512,
            h: 4,
            w: 4,
            k: 3,
            stride: 1,
            pad: 1,
        },
        Row {
            name: "vgg16 conv5_3  512->512 2x2   k3 s1",
            in_c: 512,
            out_c: 512,
            h: 2,
            w: 2,
            k: 3,
            stride: 1,
            pad: 1,
        },
        Row {
            name: "mobilenet stem 3->32    32x32 k3 s2",
            in_c: 3,
            out_c: 32,
            h: 32,
            w: 32,
            k: 3,
            stride: 2,
            pad: 1,
        },
        Row {
            name: "mobilenet pw   64->128  16x16 k1 s1",
            in_c: 64,
            out_c: 128,
            h: 16,
            w: 16,
            k: 1,
            stride: 1,
            pad: 0,
        },
        Row {
            name: "mobilenet pw   256->256 8x8   k1 s1",
            in_c: 256,
            out_c: 256,
            h: 8,
            w: 8,
            k: 1,
            stride: 1,
            pad: 0,
        },
        Row {
            name: "lpf stem       2->2     98x98 k31 s1",
            in_c: 2,
            out_c: 2,
            h: 98,
            w: 98,
            k: 31,
            stride: 1,
            pad: 0,
        },
    ];
    println!(
        "{:<38} {:>15} {:>15}",
        "layer", "unbudgeted", "tight budget"
    );
    for r in &rows {
        let shape = [1usize, r.in_c, r.h, r.w];
        let mut free_net = net(r);
        let free = PlanCompiler::standard()
            .run(&mut free_net, &shape, &ExecConfig::serial())
            .expect("plan compiles");
        let free_choice = chosen(&free.steps()[0].name);
        let peak = free.footprint().peak_bytes;

        let capped_cfg = ExecConfig::builder()
            .plan_budget(peak.saturating_sub(1).max(1))
            .build()
            .expect("valid config");
        let mut capped_net = net(r);
        let capped_choice = match PlanCompiler::standard().run(&mut capped_net, &shape, &capped_cfg)
        {
            Ok(plan) => chosen(&plan.steps()[0].name),
            Err(_) => "(infeasible)".to_string(),
        };
        println!("{:<38} {:>15} {:>15}", r.name, free_choice, capped_choice);
    }
}
