//! Figure 4(a)–(f): baseline inference time vs thread count for the four
//! model variants (plain / weight-pruned / channel-pruned / quantised) at
//! the Table III operating points, on both platforms.

use cnn_stack_bench::{figure4_configs, fmt_seconds, render_table, OperatingPoints};
use cnn_stack_core::{evaluate, PlatformChoice};
use cnn_stack_models::ModelKind;

fn main() {
    let panels = [
        ('a', ModelKind::Vgg16, PlatformChoice::OdroidXu4),
        ('b', ModelKind::Vgg16, PlatformChoice::IntelI7),
        ('c', ModelKind::ResNet18, PlatformChoice::OdroidXu4),
        ('d', ModelKind::ResNet18, PlatformChoice::IntelI7),
        ('e', ModelKind::MobileNet, PlatformChoice::OdroidXu4),
        ('f', ModelKind::MobileNet, PlatformChoice::IntelI7),
    ];

    for (panel, kind, platform) in panels {
        let threads = platform.platform().paper_thread_counts();
        let mut headers = vec!["Variant"];
        let header_cells: Vec<String> = threads.iter().map(|t| format!("{t} threads")).collect();
        headers.extend(header_cells.iter().map(String::as_str));

        let mut rows = Vec::new();
        for (label, cfg) in figure4_configs(kind, platform, OperatingPoints::Table3) {
            let mut row = vec![label.to_string()];
            for &t in &threads {
                let cell = evaluate(&cfg.threads(t));
                row.push(fmt_seconds(cell.modelled_s));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "Figure 4({panel}): {} on {}",
                    kind.name(),
                    platform.platform().name
                ),
                &headers,
                &rows,
            )
        );
    }
    println!(
        "Key paper effects to check: channel pruning fastest everywhere;\n\
         VGG/ResNet plain scale with threads while sparse variants sit above\n\
         plain; MobileNet gains nothing (or worsens) with threads, and its\n\
         sparse variants overtake plain as threads increase."
    );
}
