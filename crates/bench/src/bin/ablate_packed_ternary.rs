//! Ablation: the paper's §V-D remark, measured — "Through hashing at
//! the level of bits, the memory requirement for quantisation could be
//! an order of magnitude smaller although the inference time would also
//! increase."
//!
//! Compares dense f32, CSR, and 2-bit packed ternary storage of a
//! ternarised layer on both axes: bytes and real measured matmul time.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_compress::packed::PackedTernaryMatrix;
use cnn_stack_compress::ttq::ternarise_tensor;
use cnn_stack_sparse::CsrMatrix;
use cnn_stack_tensor::{gemm, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn time_it(mut f: impl FnMut() -> Tensor) -> f64 {
    let _ = f();
    let start = Instant::now();
    for _ in 0..3 {
        std::hint::black_box(f().data()[0]);
    }
    start.elapsed().as_secs_f64() / 3.0
}

fn main() {
    // A ternarised VGG-scale layer matrix.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut w = Tensor::from_fn([512, 1152], |_| rng.gen_range(-1.0f32..1.0));
    let (_, sparsity) = ternarise_tensor(&mut w, 0.35);
    let b = Tensor::from_fn([1152, 64], |i| (i as f32 * 0.001).sin());

    let csr = CsrMatrix::from_dense(&w, 0.0);
    let packed = PackedTernaryMatrix::from_dense_ternary(&w).expect("ternarised");

    let dense_bytes = 512 * 1152 * 4;
    let rows = vec![
        vec![
            "dense f32".to_string(),
            format!("{dense_bytes}"),
            "1.00x".to_string(),
            fmt_seconds(time_it(|| gemm::matmul(&w, &b))),
        ],
        vec![
            "CSR".to_string(),
            format!("{}", csr.storage_bytes()),
            format!("{:.2}x", dense_bytes as f64 / csr.storage_bytes() as f64),
            fmt_seconds(time_it(|| csr.spmm(&b))),
        ],
        vec![
            "packed 2-bit".to_string(),
            format!("{}", packed.storage_bytes()),
            format!("{:.2}x", packed.ratio_vs_dense()),
            fmt_seconds(time_it(|| packed.spmm(&b))),
        ],
    ];
    print!(
        "{}",
        render_table(
            &format!(
                "Packed-ternary ablation: [512x1152] ternary layer at {:.0}% sparsity, . [1152x64]",
                sparsity * 100.0
            ),
            &["Storage", "Bytes", "vs dense", "Matmul (measured)"],
            &rows,
        )
    );
    println!(
        "\nThe paper's remark compares against its CSR quantised models, and it\n\
         holds here on both axes: packed storage is an order of magnitude\n\
         smaller than CSR (~16x below dense), while its decode-per-weight\n\
         kernel runs severalfold slower than the CSR kernel."
    );
}
