//! Figure 6: the plain models on the Odroid-XU4 under the three parallel
//! backends — CLBlast (im2col + GEMM on the Mali GPU), OpenMP (8 CPU
//! threads) and hand-tuned OpenCL — plus the §V-F ImageNet-scale check
//! where CLBlast turns the tables.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_core::{evaluate, PlatformChoice, StackConfig};
use cnn_stack_hwsim::{network_time, odroid_xu4, Backend, SimConfig};
use cnn_stack_models::{vgg16, ModelKind};

fn main() {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        let base = StackConfig::plain(kind, PlatformChoice::OdroidXu4);
        let clblast = evaluate(&base.backend(Backend::OpenClClblast));
        let openmp = evaluate(&base.threads(8));
        let opencl = evaluate(&base.backend(Backend::OpenClHandTuned));
        rows.push(vec![
            kind.name().to_string(),
            fmt_seconds(clblast.modelled_s),
            fmt_seconds(openmp.modelled_s),
            fmt_seconds(opencl.modelled_s),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Figure 6: plain models on Odroid-XU4 (CIFAR-10, 32x32 inputs)",
            &["Model", "CLBlast", "OpenMP (8t)", "OpenCL (hand)"],
            &rows,
        )
    );

    // SV-F: at ImageNet scale (224x224) the GEMMs are large enough that
    // CLBlast overtakes OpenMP.
    let vgg = vgg16(1000);
    let descs = vgg.network.descriptors(&[1, 3, 224, 224]);
    let platform = odroid_xu4();
    let (omp, _) = network_time(&platform, &descs, &SimConfig::cpu(8));
    let (blast, _) = network_time(&platform, &descs, &SimConfig::gpu(Backend::OpenClClblast));
    println!(
        "\nSV-F check, VGG-16 at 224x224 (ImageNet) on Odroid-XU4:\n\
         OpenMP (8 threads): {}   CLBlast: {}   -> CLBlast {}",
        fmt_seconds(omp),
        fmt_seconds(blast),
        if blast < omp {
            "wins (as the paper reports)"
        } else {
            "loses (MISMATCH)"
        },
    );
    println!(
        "\nShape to check: hand-tuned OpenCL fastest, OpenMP second, CLBlast\n\
         slowest at CIFAR scale (up to ~10x on ResNet-18); the ordering\n\
         inverts for CLBlast vs OpenMP at 224x224."
    );
}
