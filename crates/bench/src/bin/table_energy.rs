//! Extension table: energy per inference for every model × technique at
//! the Table III operating points — the §I motivation ("memory, compute
//! time, and energy consumption") quantified with the event-cost model.

use cnn_stack_bench::{compression_at, render_table, OperatingPoints};
use cnn_stack_compress::Technique;
use cnn_stack_core::{materialise, PlatformChoice, StackConfig};
use cnn_stack_hwsim::{network_energy, EnergyModel, SimConfig};
use cnn_stack_models::ModelKind;

fn main() {
    for platform_choice in PlatformChoice::all() {
        let platform = platform_choice.platform();
        let em = EnergyModel::for_platform(&platform);
        let threads = platform.max_threads();
        let sim = SimConfig::cpu(threads);

        let mut rows = Vec::new();
        for kind in ModelKind::all() {
            let base = StackConfig::plain(kind, platform_choice);
            let mut row = vec![kind.name().to_string()];
            let configs = [
                base,
                base.compress(compression_at(
                    kind,
                    Technique::WeightPruning,
                    OperatingPoints::Table3,
                )),
                base.compress(compression_at(
                    kind,
                    Technique::ChannelPruning,
                    OperatingPoints::Table3,
                )),
                base.compress(compression_at(
                    kind,
                    Technique::TernaryQuantisation,
                    OperatingPoints::Table3,
                )),
            ];
            for cfg in configs {
                let model = materialise(&cfg, 1.0);
                let descs = model.network.descriptors(&[1, 3, 32, 32]);
                let e = network_energy(&platform, &em, &descs, &sim);
                row.push(format!("{:.0} mJ", e.total() * 1e3));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "Energy per inference on {} ({threads} threads, Table III points)",
                    platform.name
                ),
                &["Model", "Plain", "W. Pruning", "C. Pruning", "T. Quantis."],
                &rows,
            )
        );
    }
    println!(
        "Reading: channel pruning is the only technique that reduces energy\n\
         across the board — it cuts MACs, bytes *and* runtime (static power).\n\
         CSR footprints raise DRAM energy even where MACs fall, the energy\n\
         restatement of the paper's Fig. 1/Table IV observations."
    );
}
