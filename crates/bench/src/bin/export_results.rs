//! Exports the full experiment grid as CSV files under `results/`, so
//! the paper's plots can be regenerated with any external plotting tool.
//!
//! Produces:
//! * `results/fig3_pareto.csv` — the accuracy curves (model, technique,
//!   x, accuracy).
//! * `results/fig4_threads.csv` — time vs threads for every (model,
//!   variant, platform) cell, plus memory, energy and accuracy.
//! * `results/fig6_backends.csv` — the three backends per plain model on
//!   the Odroid.

use cnn_stack_bench::{figure4_configs, OperatingPoints};
use cnn_stack_compress::Technique;
use cnn_stack_core::pareto::pareto_curve;
use cnn_stack_core::{evaluate, PlatformChoice, StackConfig};
use cnn_stack_hwsim::Backend;
use cnn_stack_models::ModelKind;
use std::fs;
use std::io::Write;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;

    // Fig. 3 curves.
    let mut f = fs::File::create("results/fig3_pareto.csv")?;
    writeln!(f, "model,technique,x,accuracy_pct")?;
    for kind in ModelKind::all() {
        for technique in Technique::all() {
            for p in pareto_curve(kind, technique, 101) {
                writeln!(
                    f,
                    "{},{},{:.4},{:.4}",
                    kind.name(),
                    technique.name(),
                    p.x,
                    p.accuracy_pct
                )?;
            }
        }
    }

    // Fig. 4 grid (+ memory/energy columns for Tables IV-ish views).
    let mut f = fs::File::create("results/fig4_threads.csv")?;
    writeln!(
        f,
        "model,variant,platform,threads,modelled_s,memory_mb,energy_j,accuracy_pct,sparsity"
    )?;
    for kind in ModelKind::all() {
        for platform in PlatformChoice::all() {
            for (label, cfg) in figure4_configs(kind, platform, OperatingPoints::Table3) {
                for &t in &platform.platform().paper_thread_counts() {
                    let cell = evaluate(&cfg.threads(t));
                    writeln!(
                        f,
                        "{},{},{},{},{:.6},{:.3},{:.4},{:.2},{:.4}",
                        kind.name(),
                        label,
                        platform.platform().name,
                        t,
                        cell.modelled_s,
                        cell.memory_mb,
                        cell.energy_j,
                        cell.accuracy_pct,
                        cell.sparsity,
                    )?;
                }
            }
        }
    }

    // Fig. 6 backends.
    let mut f = fs::File::create("results/fig6_backends.csv")?;
    writeln!(f, "model,backend,modelled_s")?;
    for kind in ModelKind::all() {
        let base = StackConfig::plain(kind, PlatformChoice::OdroidXu4);
        for (label, cfg) in [
            ("CLBlast", base.backend(Backend::OpenClClblast)),
            ("OpenMP-8t", base.threads(8)),
            ("OpenCL-hand", base.backend(Backend::OpenClHandTuned)),
        ] {
            let cell = evaluate(&cfg);
            writeln!(f, "{},{label},{:.6}", kind.name(), cell.modelled_s)?;
        }
    }

    println!("wrote results/fig3_pareto.csv, results/fig4_threads.csv, results/fig6_backends.csv");
    Ok(())
}
