//! Per-layer characterisation profile: where each model spends its
//! modelled time on each platform, decomposed into the timing model's
//! compute / memory / overhead terms — the drill-down view behind the
//! Fig. 4 bars. A final "Host ms" column shows where the build host
//! actually spends its time, measured through the arena-backed
//! inference session's per-layer counters.

use cnn_stack_bench::render_table;
use cnn_stack_core::PlatformChoice;
use cnn_stack_hwsim::timing::layer_time;
use cnn_stack_hwsim::SimConfig;
use cnn_stack_models::ModelKind;
use cnn_stack_nn::{ExecConfig, InferencePlan, InferenceSession};
use cnn_stack_tensor::Tensor;

fn main() {
    let kind = std::env::args()
        .nth(1)
        .map(|a| match a.to_lowercase().as_str() {
            "vgg16" | "vgg" => ModelKind::Vgg16,
            "resnet18" | "resnet" => ModelKind::ResNet18,
            _ => ModelKind::MobileNet,
        })
        .unwrap_or(ModelKind::MobileNet);

    let input_shape = [1usize, 3, 32, 32];
    let mut model = kind.build(10);
    let descs = model.network.descriptors(&input_shape);
    // Descriptors expand composites (a residual block contributes one row
    // per inner conv) while the session profiles whole top-level layers,
    // so record how many descriptor rows each profiled layer spans.
    let child_counts: Vec<usize> = {
        let mut shape = input_shape.to_vec();
        model
            .network
            .layers()
            .iter()
            .map(|l| {
                let n = l.child_descriptors(&shape).len();
                shape = l.descriptor(&shape).output_shape;
                n
            })
            .collect()
    };

    // One serial host run per layer through the compiled session; the
    // profile rows are index-aligned with the top-level layers.
    let exec = ExecConfig::serial();
    let plan = InferencePlan::compile(&model.network, &input_shape, &exec)
        .expect("paper models accept CIFAR-shaped input");
    let mut session =
        InferenceSession::new(&mut model.network, plan).expect("plan matches this network");
    let input = Tensor::zeros(input_shape.to_vec());
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
    session
        .run_into(&input, &mut out)
        .expect("shape matches plan");
    session.reset_profile(); // discard the warm-up pass
    session
        .run_into(&input, &mut out)
        .expect("shape matches plan");
    let host = session.profile().mean_layer_times();
    // Per-descriptor host column: a composite's measured time goes on its
    // first descriptor row; the remaining rows are covered by that figure.
    let mut host_col = Vec::with_capacity(descs.len());
    for (li, &k) in child_counts.iter().enumerate() {
        for j in 0..k {
            host_col.push(if j == 0 {
                format!("{:.2}", host[li].1.as_secs_f64() * 1e3)
            } else {
                "—".to_string()
            });
        }
    }

    for platform_choice in PlatformChoice::all() {
        let platform = platform_choice.platform();
        let threads = platform.max_threads();
        let sim = SimConfig::cpu(threads);
        let mut rows = Vec::new();
        let mut total = 0.0;
        for (i, d) in descs.iter().enumerate() {
            let t = layer_time(&platform, d, &sim);
            total += t.seconds();
            // Skip sub-microsecond layers to keep the table readable.
            if t.seconds() < 1e-5 {
                continue;
            }
            let bound = if t.compute_s >= t.memory_s {
                "compute"
            } else {
                "memory"
            };
            rows.push(vec![
                d.name.clone(),
                format!("{:.0}", d.macs as f64 / 1e6),
                format!("{:.2}", t.compute_s * 1e3),
                format!("{:.2}", t.memory_s * 1e3),
                format!("{:.2}", t.overhead_s * 1e3),
                bound.to_string(),
                host_col[i].clone(),
            ]);
        }
        print!(
            "{}",
            render_table(
                &format!(
                    "{} per-layer profile on {} ({} threads) — total {:.1} ms",
                    kind.name(),
                    platform.name,
                    threads,
                    total * 1e3
                ),
                &[
                    "Layer",
                    "MMACs",
                    "Compute ms",
                    "Memory ms",
                    "Overhead ms",
                    "Bound",
                    "Host ms"
                ],
                &rows,
            )
        );
        println!();
    }
    println!(
        "Usage: layer_profile [vgg16|resnet18|mobilenet]\n\
         The 'Bound' column shows each layer's roofline side: MobileNet's\n\
         late pointwise layers go memory-bound, which is the §V-D story."
    );
}
