//! Per-layer characterisation profile: where each model spends its
//! modelled time on each platform, decomposed into the timing model's
//! compute / memory / overhead terms — the drill-down view behind the
//! Fig. 4 bars.

use cnn_stack_bench::render_table;
use cnn_stack_core::PlatformChoice;
use cnn_stack_hwsim::timing::layer_time;
use cnn_stack_hwsim::SimConfig;
use cnn_stack_models::ModelKind;

fn main() {
    let kind = std::env::args()
        .nth(1)
        .map(|a| match a.to_lowercase().as_str() {
            "vgg16" | "vgg" => ModelKind::Vgg16,
            "resnet18" | "resnet" => ModelKind::ResNet18,
            _ => ModelKind::MobileNet,
        })
        .unwrap_or(ModelKind::MobileNet);

    let model = kind.build(10);
    let descs = model.network.descriptors(&[1, 3, 32, 32]);

    for platform_choice in PlatformChoice::all() {
        let platform = platform_choice.platform();
        let threads = platform.max_threads();
        let sim = SimConfig::cpu(threads);
        let mut rows = Vec::new();
        let mut total = 0.0;
        for d in &descs {
            let t = layer_time(&platform, d, &sim);
            total += t.seconds();
            // Skip sub-microsecond layers to keep the table readable.
            if t.seconds() < 1e-5 {
                continue;
            }
            let bound = if t.compute_s >= t.memory_s { "compute" } else { "memory" };
            rows.push(vec![
                d.name.clone(),
                format!("{:.0}", d.macs as f64 / 1e6),
                format!("{:.2}", t.compute_s * 1e3),
                format!("{:.2}", t.memory_s * 1e3),
                format!("{:.2}", t.overhead_s * 1e3),
                bound.to_string(),
            ]);
        }
        print!(
            "{}",
            render_table(
                &format!(
                    "{} per-layer profile on {} ({} threads) — total {:.1} ms",
                    kind.name(),
                    platform.name,
                    threads,
                    total * 1e3
                ),
                &["Layer", "MMACs", "Compute ms", "Memory ms", "Overhead ms", "Bound"],
                &rows,
            )
        );
        println!();
    }
    println!(
        "Usage: layer_profile [vgg16|resnet18|mobilenet]\n\
         The 'Bound' column shows each layer's roofline side: MobileNet's\n\
         late pointwise layers go memory-bound, which is the §V-D story."
    );
}
