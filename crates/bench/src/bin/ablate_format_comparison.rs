//! Ablation: the sparse-format exploration the paper defers (§IV-C,
//! "We leave the exploration of other formats for future work") —
//! dense vs CSR vs CSC vs COO vs BSR, on storage bytes and real measured
//! SpMM time, under unstructured and block-structured sparsity.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_sparse::{BsrMatrix, CooMatrix, CscMatrix, CsrMatrix};
use cnn_stack_tensor::{gemm, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn unstructured(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_fn([rows, cols], |_| {
        if rng.gen_bool(density) {
            rng.gen_range(-1.0..1.0)
        } else {
            0.0
        }
    })
}

fn block_structured(rows: usize, cols: usize, block: usize, density: f64, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bc = cols / block;
    let keep: Vec<bool> = (0..(rows / block) * bc)
        .map(|_| rng.gen_bool(density))
        .collect();
    Tensor::from_fn([rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        if keep[(r / block) * bc + c / block] {
            rng.gen_range(0.1..1.0)
        } else {
            0.0
        }
    })
}

fn time_it(mut f: impl FnMut() -> Tensor) -> f64 {
    let _ = f(); // warm
    let start = Instant::now();
    let out = f();
    std::hint::black_box(out.data()[0]);
    start.elapsed().as_secs_f64()
}

fn compare(title: &str, a: &Tensor) {
    let (rows, cols) = a.shape().matrix();
    let b = unstructured(cols, 64, 1.0, 999);
    let dense_bytes = rows * cols * 4;

    let csr = CsrMatrix::from_dense(a, 0.0);
    let csc = CscMatrix::from_dense(a, 0.0);
    let coo = CooMatrix::from_dense(a, 0.0);
    let bsr = BsrMatrix::from_dense(a, 8, 0.0);

    let rows_out = vec![
        vec![
            "dense".to_string(),
            format!("{dense_bytes}"),
            fmt_seconds(time_it(|| gemm::matmul(a, &b))),
        ],
        vec![
            "CSR".to_string(),
            format!("{}", csr.storage_bytes()),
            fmt_seconds(time_it(|| csr.spmm(&b))),
        ],
        vec![
            "CSC".to_string(),
            format!("{}", csc.storage_bytes()),
            fmt_seconds(time_it(|| csc.spmm(&b))),
        ],
        vec![
            "COO".to_string(),
            format!("{}", coo.storage_bytes()),
            fmt_seconds(time_it(|| coo.spmm(&b))),
        ],
        vec![
            format!("BSR-8 (waste {:.0}%)", bsr.fill_waste() * 100.0),
            format!("{}", bsr.storage_bytes()),
            fmt_seconds(time_it(|| bsr.spmm(&b))),
        ],
    ];
    println!(
        "{}",
        render_table(
            title,
            &["Format", "Bytes", "SpMM time (measured)"],
            &rows_out
        )
    );
}

fn main() {
    // A VGG-like layer matrix [512 x 1152] at ~80% sparsity.
    compare(
        "Format comparison: unstructured 80% sparsity [512x1152] . [1152x64]",
        &unstructured(512, 1152, 0.2, 1),
    );
    compare(
        "Format comparison: block-structured (8x8 blocks, 20% kept)",
        &block_structured(512, 1152, 8, 0.2, 2),
    );
    println!(
        "Reading: at the *large-matrix SpMM* level, sparse kernels do win at\n\
         80% sparsity — the paper's negative CSR result is specific to small\n\
         3x3-filter direct convolution (see ablate_conv_algo and Fig. 4).\n\
         The format lesson here is structural: under unstructured pruning,\n\
         BSR stores whole mostly-zero blocks (storage *worse* than dense);\n\
         only block-structured sparsity lets it beat CSR on storage while\n\
         matching its speed — the group-Lasso argument of the paper's\n\
         [26]/[30] citations."
    );
}
