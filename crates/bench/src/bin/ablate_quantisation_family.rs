//! Ablation: the §III-C quantisation family side by side — BinaryConnect
//! [19], HashedNet [20], INQ [18] and the paper's chosen TTQ [36] —
//! on weight storage, projection distortion, induced sparsity, and the
//! immediate (no fine-tune) accuracy hit on a trained model.

use cnn_stack_bench::render_table;
use cnn_stack_compress::{binary, hashed, inq, ttq};
use cnn_stack_dataset::{DatasetConfig, SyntheticCifar};
use cnn_stack_models::{vgg16_width, Model};
use cnn_stack_nn::train::{evaluate, train_batch};
use cnn_stack_nn::{ExecConfig, Sgd};

fn trained(data: &SyntheticCifar) -> Model {
    let mut model = vgg16_width(10, 0.125);
    let mut sgd = Sgd::new(0.05).momentum(0.9);
    let exec = ExecConfig::default();
    for b in 0..40 {
        let (images, labels) = data.train_batch(b, 32);
        train_batch(&mut model.network, &mut sgd, &images, &labels, &exec);
    }
    model
}

/// Mean squared distance between two networks' weights.
fn weight_mse(a: &mut Model, b: &mut Model) -> f64 {
    let pa = a.network.params_mut();
    let mut total = 0.0f64;
    let mut n = 0usize;
    let pb = b.network.params_mut();
    for (x, y) in pa.iter().zip(pb.iter()) {
        for (u, v) in x.value.data().iter().zip(y.value.data()) {
            total += ((u - v) as f64).powi(2);
            n += 1;
        }
    }
    total / n as f64
}

fn main() {
    let data = SyntheticCifar::new(DatasetConfig::tiny(33));
    let (tx, ty) = data.test_set();
    let exec = ExecConfig::default();
    let mut base = trained(&data);
    let base_acc = evaluate(&mut base.network, &tx, &ty, &exec);
    let params = base.network.num_params();
    let dense_bytes = params * 4;

    let mut rows = Vec::new();
    rows.push(vec![
        "fp32 baseline".into(),
        format!("{:.2} MB", dense_bytes as f64 / 1e6),
        "32.0".into(),
        "0%".into(),
        format!("{:.1}%", base_acc * 100.0),
    ]);

    // BinaryConnect: 1 bit/weight.
    let mut m = trained(&data);
    binary::binarise_network(&mut m.network);
    let acc = evaluate(&mut m.network, &tx, &ty, &exec);
    let _ = weight_mse(&mut m, &mut base);
    rows.push(vec![
        "BinaryConnect [19]".into(),
        format!("{:.2} MB", (params / 8) as f64 / 1e6),
        "1.0".into(),
        "0%".into(),
        format!("{:.1}%", acc * 100.0),
    ]);

    // TTQ at the paper's VGG threshold: ~2 bits, sparse.
    let mut m = trained(&data);
    let report = ttq::ttq_quantise(&mut m.network, 0.09);
    let acc = evaluate(&mut m.network, &tx, &ty, &exec);
    rows.push(vec![
        "TTQ [36] (t=0.09)".into(),
        format!("{:.2} MB", (params / 4) as f64 / 1e6),
        "2.0".into(),
        format!("{:.0}%", report.sparsity * 100.0),
        format!("{:.1}%", acc * 100.0),
    ]);

    // INQ with 7 magnitude levels: 4 bits, shift-friendly.
    let mut m = trained(&data);
    let report = inq::inq_quantise(&mut m.network, 7);
    let acc = evaluate(&mut m.network, &tx, &ty, &exec);
    rows.push(vec![
        format!("INQ [18] ({} bits)", report.bits),
        format!("{:.2} MB", (params as f64 * report.bits as f64 / 8.0) / 1e6),
        format!("{:.1}", report.bits),
        "~0%".into(),
        format!("{:.1}%", acc * 100.0),
    ]);

    // HashedNet at 8x sharing: fp32 buckets, 1/8 the parameters.
    let mut m = trained(&data);
    let report = hashed::hash_network(&mut m.network, 8.0);
    let acc = evaluate(&mut m.network, &tx, &ty, &exec);
    rows.push(vec![
        "HashedNet [20] (8x)".into(),
        format!("{:.2} MB", (report.real_parameters * 4) as f64 / 1e6),
        "4.0".into(),
        "0%".into(),
        format!("{:.1}%", acc * 100.0),
    ]);

    print!(
        "{}",
        render_table(
            "Quantisation family (SIII-C): projection only, no fine-tuning (width-0.125 VGG)",
            &[
                "Method",
                "Weight storage",
                "bits/w",
                "Sparsity",
                "Accuracy (no fine-tune)"
            ],
            &rows,
        )
    );
    println!(
        "\nAll of these recover most accuracy after the fine-tuning the paper\n\
         describes (SIII-C: 'the networks are typically pre-trained and then\n\
         quantisation is applied gradually while fine-tuning'); the immediate\n\
         projection hit shown here is what that fine-tuning must repair. Only\n\
         TTQ introduces sparsity — the property that ties quantisation to the\n\
         paper's CSR format story."
    );
}
