//! Table V: the compression rates each technique reaches when accuracy
//! is fixed at 90 %, found by inverse lookup on the calibrated curves,
//! against the paper's reported operating points.

use cnn_stack_bench::render_table;
use cnn_stack_compress::{AccuracyModel, Technique};
use cnn_stack_core::pareto::operating_point_at_accuracy;
use cnn_stack_models::ModelKind;

fn main() {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        let wp = operating_point_at_accuracy(kind, Technique::WeightPruning, 90.0)
            .expect("90% is reachable");
        let cp = operating_point_at_accuracy(kind, Technique::ChannelPruning, 90.0)
            .expect("90% is reachable");
        let q = operating_point_at_accuracy(kind, Technique::TernaryQuantisation, 90.0)
            .expect("90% is reachable");
        rows.push(vec![
            kind.name().to_string(),
            format!(
                "{wp:.2}% (paper {:.2}%)",
                AccuracyModel::table5_operating_point(kind, Technique::WeightPruning)
            ),
            format!(
                "{cp:.2}% (paper {:.2}%)",
                AccuracyModel::table5_operating_point(kind, Technique::ChannelPruning)
            ),
            format!(
                "{q:.2} (paper {:.2} / {:.0}% sparsity)",
                AccuracyModel::table5_operating_point(kind, Technique::TernaryQuantisation),
                AccuracyModel::table5_ttq_sparsity(kind),
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table V: operating points at a fixed 90% accuracy (derived vs paper)",
            &[
                "Model",
                "W. Pruning sparsity",
                "C. Pruning compression",
                "TTQ threshold"
            ],
            &rows,
        )
    );
    println!(
        "\nThe paper fixes accuracy at 90% because every model reaches it; the\n\
         derived points come from bisection on the calibrated Fig. 3 curves."
    );
}
