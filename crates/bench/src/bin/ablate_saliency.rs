//! Ablation: does saliency matter? Channel pruning by weight-norm
//! saliency versus uniform-random choice (the paper's [35] observation
//! that random pruning can compete) — measured as immediate accuracy
//! damage on a trained model, before any fine-tuning.

use cnn_stack_bench::render_table;
use cnn_stack_compress::random::random_channel_prune;
use cnn_stack_core::build::channel_prune_to;
use cnn_stack_dataset::{DatasetConfig, SyntheticCifar};
use cnn_stack_models::vgg16_width;
use cnn_stack_nn::train::{evaluate, train_batch};
use cnn_stack_nn::{ExecConfig, Sgd};

fn trained_model(data: &SyntheticCifar) -> cnn_stack_models::Model {
    let mut model = vgg16_width(10, 0.125);
    let mut sgd = Sgd::new(0.05).momentum(0.9);
    let exec = ExecConfig::default();
    for b in 0..40 {
        let (images, labels) = data.train_batch(b, 32);
        train_batch(&mut model.network, &mut sgd, &images, &labels, &exec);
    }
    model
}

fn main() {
    let data = SyntheticCifar::new(DatasetConfig::tiny(21));
    let (tx, ty) = data.test_set();
    let exec = ExecConfig::default();

    let mut base = trained_model(&data);
    let base_acc = evaluate(&mut base.network, &tx, &ty, &exec);

    let mut rows = Vec::new();
    for target in [0.15f64, 0.30, 0.45] {
        // Saliency-guided (min weight norm, the Fisher proxy).
        let mut saliency = trained_model(&data);
        channel_prune_to(&mut saliency, target);
        let acc_saliency = evaluate(&mut saliency.network, &tx, &ty, &exec);

        // Random choice, averaged over 3 seeds.
        let mut rand_accs = Vec::new();
        for seed in 0..3u64 {
            let mut random = trained_model(&data);
            // Match the channel count the saliency run removed.
            let removed = {
                let before = vgg16_width(10, 0.125).plan.total_channels(&base.network);
                before - saliency.plan.total_channels(&saliency.network)
            };
            random_channel_prune(&mut random, removed, seed);
            rand_accs.push(evaluate(&mut random.network, &tx, &ty, &exec));
        }
        let rand_mean = rand_accs.iter().sum::<f64>() / rand_accs.len() as f64;

        rows.push(vec![
            format!("{:.0}%", target * 100.0),
            format!("{:.1}%", acc_saliency * 100.0),
            format!("{:.1}%", rand_mean * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!(
                "Saliency ablation: accuracy after channel pruning, no fine-tune (base {:.1}%)",
                base_acc * 100.0
            ),
            &["Params removed", "Min-norm saliency", "Random (mean of 3)"],
            &rows,
        )
    );
    println!(
        "\nWithout fine-tuning, saliency matters enormously — random choice\n\
         collapses the model at compression levels min-norm shrugs off. [35]'s\n\
         claim (cited by the paper) is that *retraining* closes this gap; the\n\
         end_to_end_pipeline integration tests exercise exactly that recovery."
    );
}
