//! Figure 1: expected vs. observed inference time for weight-pruned
//! VGG-16 on the Intel Core i7.
//!
//! The "expected" line scales the dense baseline by the fraction of MACs
//! that survive pruning; the "actual" line is the modelled CSR execution
//! time. The gap between them is the paper's motivating observation.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_core::{evaluate, CompressionChoice, PlatformChoice, StackConfig};
use cnn_stack_models::ModelKind;

fn main() {
    let base = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
    let dense = evaluate(&base);

    let mut rows = Vec::new();
    for step in 0..=8 {
        let sparsity = step as f64 * 10.0;
        let cell = if step == 0 {
            dense.clone()
        } else {
            evaluate(&base.compress(CompressionChoice::WeightPruning {
                sparsity_pct: sparsity,
            }))
        };
        let expected = dense.modelled_s * cell.effective_macs as f64 / dense.macs as f64;
        rows.push(vec![
            format!("{sparsity:.0}%"),
            fmt_seconds(expected),
            fmt_seconds(cell.modelled_s),
            format!("{:.2}x", cell.modelled_s / expected),
        ]);
    }

    print!(
        "{}",
        render_table(
            "Figure 1: VGG-16 on Intel Core i7, weight pruning (CSR), 1 thread",
            &["Pruned away", "Expected", "Actual", "Actual/Expected"],
            &rows,
        )
    );
    println!(
        "\nPaper's shape: expected falls linearly with pruning; actual stays\n\
         near (or above) the dense time — CSR overheads swallow the MAC savings."
    );
}
