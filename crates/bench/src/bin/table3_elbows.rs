//! Table III: the compression rates chosen at the Pareto-curve elbows
//! for the baseline hardware experiments, alongside the elbows our
//! detector finds on the calibrated curves.

use cnn_stack_bench::render_table;
use cnn_stack_compress::{AccuracyModel, Technique};
use cnn_stack_core::pareto::{detect_elbow, pareto_curve};
use cnn_stack_models::ModelKind;

fn main() {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        let wp_curve = pareto_curve(kind, Technique::WeightPruning, 401);
        let wp_elbow = detect_elbow(&wp_curve, 1.0);
        let cp_curve = pareto_curve(kind, Technique::ChannelPruning, 401);
        let cp_elbow = detect_elbow(&cp_curve, 1.0);
        let q_curve = pareto_curve(kind, Technique::TernaryQuantisation, 401);
        let q_elbow = detect_elbow(&q_curve, 1.0);
        rows.push(vec![
            kind.name().to_string(),
            format!(
                "{:.2}% (paper {:.2}%)",
                wp_elbow.x,
                AccuracyModel::table3_operating_point(kind, Technique::WeightPruning)
            ),
            format!(
                "{:.2}% (paper {:.2}%)",
                cp_elbow.x,
                AccuracyModel::table3_operating_point(kind, Technique::ChannelPruning)
            ),
            format!(
                "{:.2} / {:.2}% (paper {:.2} / {:.2}%)",
                q_elbow.x,
                AccuracyModel::ttq_sparsity(kind, q_elbow.x),
                AccuracyModel::table3_operating_point(kind, Technique::TernaryQuantisation),
                AccuracyModel::table3_ttq_sparsity(kind),
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table III: elbow operating points (detected vs paper)",
            &[
                "Model",
                "W. Pruning sparsity",
                "C. Pruning compression",
                "TTQ thr / sparsity"
            ],
            &rows,
        )
    );
    println!(
        "\nNote: the paper's elbows were picked by eye from Fig. 3; the detector\n\
         takes the most aggressive point within 1% of peak accuracy. The paper's\n\
         own values are used for every downstream baseline experiment."
    );
}
