//! Ablation: the Winograd transform (the paper's §II-B layer-3 candidate
//! it names but never evaluates) against direct and im2col convolution —
//! theoretical multiply counts plus real measured times at the models'
//! layer shapes.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_tensor::winograd::{multiply_counts, winograd_conv2d};
use cnn_stack_tensor::{gemm, im2col, Conv2dGeometry, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn time_it(mut f: impl FnMut() -> Tensor) -> f64 {
    let _ = f();
    let start = Instant::now();
    let out = f();
    std::hint::black_box(out.data()[0]);
    start.elapsed().as_secs_f64()
}

fn main() {
    // Layer shapes drawn from the three models (channels, spatial).
    let shapes = [
        ("VGG conv2 (64ch, 32x32)", 64usize, 64usize, 32usize),
        ("VGG conv8 (512ch, 4x4)", 512, 512, 4),
        ("ResNet stage2 (128ch, 16x16)", 128, 128, 16),
    ];
    let mut rows = Vec::new();
    for (label, in_c, out_c, hw) in shapes {
        let mut rng = ChaCha8Rng::seed_from_u64(hw as u64);
        let input = Tensor::from_fn([1, in_c, hw, hw], |_| rng.gen_range(-1.0f32..1.0));
        let weights = Tensor::from_fn([out_c, in_c, 3, 3], |_| rng.gen_range(-0.2f32..0.2));
        let geom = Conv2dGeometry::new(in_c, hw, hw, 3, 3, 1, 1);
        let wmat = weights.reshape([out_c, in_c * 9]);

        let t_direct = time_it(|| {
            // Direct via the im2col-free reference path: use sparse crate's
            // dense-as-CSR? Keep honest: im2col is the GEMM path; direct
            // is the nn Conv2d kernel. Here: naive im2col+GEMM stands in
            // for the lowered path, and the winograd call is the subject.
            let cols = im2col(input.data(), &geom);
            gemm::matmul(&wmat, &cols)
        });
        let t_wino =
            time_it(|| winograd_conv2d(&input, &weights, None, 1).expect("eligible 3x3 layer"));
        let (muls_direct, muls_wino) = multiply_counts(in_c, out_c, geom.out_h, geom.out_w);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}x", muls_direct as f64 / muls_wino as f64),
            fmt_seconds(t_direct),
            fmt_seconds(t_wino),
            format!("{:.2}x", t_direct / t_wino),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Winograd F(2x2,3x3) vs im2col+GEMM (host-measured, 1 thread)",
            &[
                "Layer",
                "Multiply saving",
                "im2col+GEMM",
                "Winograd",
                "Speedup"
            ],
            &rows,
        )
    );
    println!(
        "\nTheoretical multiply saving is 2.25x for even tiles; realised speedup\n\
         depends on transform overhead — largest for big spatial extents,\n\
         smallest (or negative) for the 4x4 late layers. This is why layer-3\n\
         algorithm choices must be made per layer, the stack's core thesis."
    );
}
