//! Table VI: runtime memory (MB) for each model × technique with
//! accuracy fixed at 90 % (the Table V operating points).

use cnn_stack_bench::{compression_at, render_table, OperatingPoints};
use cnn_stack_compress::Technique;
use cnn_stack_core::{evaluate, PlatformChoice, StackConfig};
use cnn_stack_models::ModelKind;

fn main() {
    // Paper values: Plain, W. Pruning, C. Pruning, T. Quantisation.
    let paper: [(ModelKind, [f64; 4]); 3] = [
        (ModelKind::Vgg16, [309.9, 112.2, 74.9, 114.1]),
        (ModelKind::ResNet18, [233.8, 66.1, 13.1, 66.9]),
        (ModelKind::MobileNet, [66.3, 40.9, 2.7, 63.3]),
    ];

    let mut rows = Vec::new();
    for (kind, paper_mb) in paper {
        let base = StackConfig::plain(kind, PlatformChoice::OdroidXu4);
        let cells = [
            evaluate(&base),
            evaluate(&base.compress(compression_at(
                kind,
                Technique::WeightPruning,
                OperatingPoints::Table5,
            ))),
            evaluate(&base.compress(compression_at(
                kind,
                Technique::ChannelPruning,
                OperatingPoints::Table5,
            ))),
            evaluate(&base.compress(compression_at(
                kind,
                Technique::TernaryQuantisation,
                OperatingPoints::Table5,
            ))),
        ];
        let mut row = vec![kind.name().to_string()];
        for (cell, p) in cells.iter().zip(paper_mb) {
            row.push(format!("{:.1} (paper {p:.1})", cell.memory_mb));
        }
        rows.push(row);
    }

    print!(
        "{}",
        render_table(
            "Table VI: memory (MB) at 90% accuracy, measured vs paper",
            &["Model", "Plain", "W. Pruning", "C. Pruning", "T. Quantis."],
            &rows,
        )
    );
    println!(
        "\nNote: the paper's Table VI 'Plain' figures differ from Table IV's for\n\
         the same models (different measurement runs); our model is a single\n\
         consistent accounting, so compare within-row orderings, not absolutes.\n\
         Shape to check: channel pruning far smallest, especially MobileNet."
    );
}
