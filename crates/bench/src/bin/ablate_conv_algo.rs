//! Ablation: direct vs im2col convolution, dense vs CSR weights —
//! *measured on the build host* with real kernel executions (width-scaled
//! models so a run takes seconds).

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_models::ModelKind;
use cnn_stack_nn::network::set_network_format;
use cnn_stack_nn::{ConvAlgorithm, ExecConfig, Phase, WeightFormat};
use cnn_stack_tensor::Tensor;
use std::time::Instant;

fn measure(kind: ModelKind, format: WeightFormat, algo: ConvAlgorithm, sparsity: f64) -> f64 {
    let mut model = kind.build_width(10, 0.25);
    if sparsity > 0.0 {
        cnn_stack_compress::magnitude::prune_network(&mut model.network, sparsity);
    }
    set_network_format(&mut model.network, format);
    let exec = ExecConfig {
        conv_algo: algo,
        ..ExecConfig::serial()
    };
    let input = Tensor::zeros([1, 3, 32, 32]);
    let _ = model.network.forward(&input, Phase::Eval, &exec); // warm
    let repeats = 3;
    let start = Instant::now();
    for _ in 0..repeats {
        let _ = model.network.forward(&input, Phase::Eval, &exec);
    }
    start.elapsed().as_secs_f64() / repeats as f64
}

fn main() {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        for (label, format, sparsity) in [
            ("dense", WeightFormat::Dense, 0.0),
            ("CSR 80% sparse", WeightFormat::Csr, 0.8),
        ] {
            let direct = measure(kind, format, ConvAlgorithm::Direct, sparsity);
            let im2col = measure(kind, format, ConvAlgorithm::Im2col, sparsity);
            let winograd = measure(kind, format, ConvAlgorithm::Winograd, sparsity);
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                fmt_seconds(direct),
                fmt_seconds(im2col),
                fmt_seconds(winograd),
                format!("{:.2}x", im2col / direct),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Ablation: convolution algorithm x weight format (host-measured, width 0.25, 1 thread)",
            &[
                "Model",
                "Weights",
                "Direct",
                "im2col+GEMM",
                "Winograd",
                "im2col/direct"
            ],
            &rows,
        )
    );
    println!(
        "\nReal executions on this host. Winograd applies to dense 3x3 stride-1\n\
         layers only (CSR rows fall back to direct). Note that on this x86\n\
         machine with these Rust kernels, CSR at 80% sparsity *does* beat\n\
         dense — unlike the paper's ARM/C measurements. Kernel-level sparse\n\
         performance is implementation- and platform-specific, which is why\n\
         the figure harness reproduces the paper's platforms with the\n\
         calibrated analytic model (DESIGN.md section 4) instead of host\n\
         wall-clock."
    );
}
