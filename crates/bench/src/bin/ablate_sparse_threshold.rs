//! Ablation: at what sparsity does CSR actually start paying off?
//! Quantifies the paper's "sparsity is not a silver bullet" discussion
//! (§VI) on both the time and the memory axes.

use cnn_stack_bench::{fmt_seconds, render_table};
use cnn_stack_core::{evaluate, CompressionChoice, PlatformChoice, StackConfig};
use cnn_stack_models::ModelKind;
use cnn_stack_sparse::memory::csr_breakeven_density;

fn main() {
    // Time axis: sweep weight-pruning sparsity on VGG-16 / i7 and find
    // where the CSR model first beats the dense baseline.
    let base = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
    let dense = evaluate(&base);
    let mut crossover: Option<f64> = None;
    let mut rows = Vec::new();
    for step in 0..=19 {
        let sparsity = step as f64 * 5.0;
        let cell = if step == 0 {
            dense.clone()
        } else {
            evaluate(&base.compress(CompressionChoice::WeightPruning {
                sparsity_pct: sparsity,
            }))
        };
        if cell.modelled_s < dense.modelled_s && crossover.is_none() && step > 0 {
            crossover = Some(sparsity);
        }
        if step % 2 == 0 {
            rows.push(vec![
                format!("{sparsity:.0}%"),
                fmt_seconds(cell.modelled_s),
                format!("{:.2}x", cell.modelled_s / dense.modelled_s),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Ablation: CSR inference time vs sparsity (VGG-16, i7, 1 thread)",
            &["Sparsity", "Time", "vs dense"],
            &rows,
        )
    );
    match crossover {
        Some(s) => println!("\nCSR first beats dense at ~{s:.0}% sparsity."),
        None => println!("\nCSR never beats dense across the sweep."),
    }

    // Memory axis: the format break-even density for representative layer
    // shapes (whole-matrix CSR; the paper's per-filter layout is worse).
    let mut mrows = Vec::new();
    for (label, rows_n, cols_n) in [
        ("VGG conv3 [256 x 1152]", 256usize, 1152usize),
        ("3x3 filter as matrix [1 x 9]", 1, 9),
        ("MobileNet pointwise [512 x 512]", 512, 512),
        ("VGG classifier [512 x 512]", 512, 512),
    ] {
        let be = csr_breakeven_density(rows_n, cols_n);
        mrows.push(vec![
            label.to_string(),
            format!("{:.1}%", be * 100.0),
            format!("{:.1}%", (1.0 - be) * 100.0),
        ]);
    }
    print!(
        "\n{}",
        render_table(
            "Ablation: CSR storage break-even (whole-matrix CSR)",
            &["Layer shape", "Break-even density", "Required sparsity"],
            &mrows,
        )
    );
    println!(
        "\nBoth axes confirm SVI: with 3x3/1x1 filters, sparsity must be extreme\n\
         before CSR pays for itself in either time or memory."
    );
}
