//! Shared harness utilities for the figure/table regenerators.
//!
//! Every binary in `src/bin/` reproduces one artefact of the paper's
//! evaluation section (see `DESIGN.md` §3 for the index) and prints the
//! same rows/series the paper reports. This library holds the pieces
//! they share: the Table III / Table V operating-point lookups, cell
//! construction, and plain-text table rendering.

use cnn_stack_compress::{AccuracyModel, Technique};
use cnn_stack_core::{CompressionChoice, PlatformChoice, StackConfig};
use cnn_stack_models::ModelKind;

/// Which table's operating points to use when configuring a technique.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperatingPoints {
    /// Table III: the accuracy-optimal Pareto elbows.
    Table3,
    /// Table V: accuracy fixed at 90 %.
    Table5,
}

/// The compression choice for a model × technique at the chosen table's
/// operating point.
pub fn compression_at(
    kind: ModelKind,
    technique: Technique,
    points: OperatingPoints,
) -> CompressionChoice {
    let x = match points {
        OperatingPoints::Table3 => AccuracyModel::table3_operating_point(kind, technique),
        OperatingPoints::Table5 => AccuracyModel::table5_operating_point(kind, technique),
    };
    match technique {
        Technique::WeightPruning => CompressionChoice::WeightPruning { sparsity_pct: x },
        Technique::ChannelPruning => CompressionChoice::ChannelPruning { compression_pct: x },
        Technique::TernaryQuantisation => CompressionChoice::TernaryQuantisation { threshold: x },
    }
}

/// The four Fig. 4 legend entries for one model on one platform, at the
/// chosen operating points: plain, weight pruning, channel pruning,
/// quantisation.
pub fn figure4_configs(
    kind: ModelKind,
    platform: PlatformChoice,
    points: OperatingPoints,
) -> Vec<(&'static str, StackConfig)> {
    let base = StackConfig::plain(kind, platform);
    vec![
        ("Plain", base),
        (
            "Weight Pruning",
            base.compress(compression_at(kind, Technique::WeightPruning, points)),
        ),
        (
            "Channel Pruning",
            base.compress(compression_at(kind, Technique::ChannelPruning, points)),
        ),
        (
            "Quantisation",
            base.compress(compression_at(kind, Technique::TernaryQuantisation, points)),
        ),
    ]
}

/// Renders an aligned plain-text table.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with sensible precision for table cells.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_points_round_trip() {
        let c = compression_at(
            ModelKind::Vgg16,
            Technique::WeightPruning,
            OperatingPoints::Table3,
        );
        assert_eq!(
            c,
            CompressionChoice::WeightPruning {
                sparsity_pct: 76.54
            }
        );
        let c = compression_at(
            ModelKind::MobileNet,
            Technique::TernaryQuantisation,
            OperatingPoints::Table5,
        );
        assert_eq!(c, CompressionChoice::TernaryQuantisation { threshold: 0.2 });
    }

    #[test]
    fn figure4_has_four_legend_entries() {
        let cfgs = figure4_configs(
            ModelKind::ResNet18,
            PlatformChoice::OdroidXu4,
            OperatingPoints::Table3,
        );
        assert_eq!(cfgs.len(), 4);
        assert_eq!(cfgs[0].0, "Plain");
        assert_eq!(cfgs[2].0, "Channel Pruning");
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(s.contains("== T =="));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table("T", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0123), "12.3 ms");
        assert_eq!(fmt_seconds(42e-6), "42.0 us");
    }
}
