//! Criterion benchmarks of whole-model inference on the build host:
//! the three architectures (width-scaled for tractable runtimes) under
//! dense-direct, dense-im2col, and CSR execution.

use cnn_stack_models::ModelKind;
use cnn_stack_nn::network::set_network_format;
use cnn_stack_nn::{ConvAlgorithm, ExecConfig, Phase, WeightFormat};
use cnn_stack_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_model_variants(c: &mut Criterion) {
    let input = Tensor::zeros([1, 3, 32, 32]);
    for kind in ModelKind::all() {
        let mut group = c.benchmark_group(format!("forward_{}_w0.25", kind.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));

        let mut dense = kind.build_width(10, 0.25);
        let direct = ExecConfig {
            conv_algo: ConvAlgorithm::Direct,
            ..ExecConfig::serial()
        };
        group.bench_function("dense_direct", |b| {
            b.iter(|| dense.network.forward(&input, Phase::Eval, &direct))
        });

        let im2col = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            ..ExecConfig::serial()
        };
        group.bench_function("dense_im2col", |b| {
            b.iter(|| dense.network.forward(&input, Phase::Eval, &im2col))
        });

        let mut sparse = kind.build_width(10, 0.25);
        cnn_stack_compress::magnitude::prune_network(&mut sparse.network, 0.8);
        set_network_format(&mut sparse.network, WeightFormat::Csr);
        group.bench_function("csr80_direct", |b| {
            b.iter(|| sparse.network.forward(&input, Phase::Eval, &direct))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_model_variants);
criterion_main!(benches);
