//! Convolution-algorithm benchmark: direct, im2col + packed GEMM,
//! Winograd F(2×2,3×3), Winograd F(4×4,3×3), and FFT convolution over
//! VGG-16 / MobileNet layer shapes plus one large-kernel stem, emitting
//! `BENCH_conv.json` at the repository root.
//!
//! Two gates are asserted outside smoke mode:
//!
//! * **FFT vs im2col+packed** — on the large-kernel stem (33×33 over a
//!   220×220 map) the FFT path must beat im2col + packed GEMM: im2col
//!   materialises a ~616 MB column matrix there, while FFT does a
//!   handful of 256×256 plane transforms.
//! * **F(4×4) vs F(2×2)** — on a VGG-16 conv4_1-shaped 3×3 layer
//!   (28×28 map, so the 4×4 tiles divide the output exactly) F(4×4)
//!   must be ≥ 1.3× faster than F(2×2); the algebra gives 16/9 ≈ 1.78×
//!   fewer multiplies per output.
//!
//! Run modes:
//!   cargo bench -p cnn-stack-bench --bench conv_algo      # full + gates
//!   CONV_BENCH_SMOKE=1 cargo bench ... --bench conv_algo  # tiny shapes,
//!       one iteration, no gates, writes target/BENCH_conv.smoke.json

use cnn_stack_nn::{Conv2d, ConvAlgorithm, ExecConfig, Layer, Phase};
use cnn_stack_tensor::{GemmAlgorithm, Tensor};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One algorithm column of the comparison table.
#[derive(Clone, Copy)]
struct Algo {
    label: &'static str,
    conv: ConvAlgorithm,
    gemm: GemmAlgorithm,
}

const DIRECT: Algo = Algo {
    label: "direct",
    conv: ConvAlgorithm::Direct,
    gemm: GemmAlgorithm::Packed,
};
const IM2COL_PACKED: Algo = Algo {
    label: "im2col-packed",
    conv: ConvAlgorithm::Im2col,
    gemm: GemmAlgorithm::Packed,
};
const WINOGRAD_F2: Algo = Algo {
    label: "winograd-f2",
    conv: ConvAlgorithm::Winograd,
    gemm: GemmAlgorithm::Packed,
};
const WINOGRAD_F4: Algo = Algo {
    label: "winograd-f4",
    conv: ConvAlgorithm::WinogradF4,
    gemm: GemmAlgorithm::Packed,
};
const FFT: Algo = Algo {
    label: "fft",
    conv: ConvAlgorithm::Fft,
    gemm: GemmAlgorithm::Packed,
};

struct Case {
    name: &'static str,
    in_c: usize,
    out_c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    iters: usize,
    algos: &'static [Algo],
    seed: u64,
}

impl Case {
    fn macs(&self) -> usize {
        let out_h = (self.h + 2 * self.pad - self.k) / self.stride + 1;
        let out_w = (self.w + 2 * self.pad - self.k) / self.stride + 1;
        self.out_c * self.in_c * self.k * self.k * out_h * out_w
    }
}

/// Median seconds per `forward` call after one warm-up.
fn time_forward(conv: &mut Conv2d, input: &Tensor, cfg: &ExecConfig, iters: usize) -> f64 {
    conv.prepare(cfg);
    let _ = conv.forward(input, Phase::Eval, cfg);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let out = conv.forward(input, Phase::Eval, cfg);
        samples.push(t.elapsed().as_secs_f64());
        assert!(
            out.data()[0].is_finite(),
            "benchmark output went non-finite"
        );
    }
    samples.sort_by(|x, y| x.partial_cmp(y).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var("CONV_BENCH_SMOKE").is_ok();
    let cases: Vec<Case> = if smoke {
        vec![
            Case {
                name: "smoke-3x3(8->8)@8x8",
                in_c: 8,
                out_c: 8,
                h: 8,
                w: 8,
                k: 3,
                stride: 1,
                pad: 1,
                iters: 1,
                algos: &[DIRECT, IM2COL_PACKED, WINOGRAD_F2, WINOGRAD_F4, FFT],
                seed: 1,
            },
            Case {
                name: "smoke-7x7(2->2)@16x16",
                in_c: 2,
                out_c: 2,
                h: 16,
                w: 16,
                k: 7,
                stride: 1,
                pad: 0,
                iters: 1,
                algos: &[DIRECT, IM2COL_PACKED, FFT],
                seed: 2,
            },
        ]
    } else {
        vec![
            // VGG-16 conv4_1 shape (ImageNet scale): 28×28 map so the
            // F(4×4) tiles divide the output exactly — the F4-vs-F2
            // gate shape.
            Case {
                name: "vgg16-conv4_1(512->512)@28x28-k3",
                in_c: 512,
                out_c: 512,
                h: 28,
                w: 28,
                k: 3,
                stride: 1,
                pad: 1,
                iters: 5,
                algos: &[IM2COL_PACKED, WINOGRAD_F2, WINOGRAD_F4],
                seed: 41,
            },
            // VGG-16 conv2_2 at CIFAR scale: mid-size 3×3 where all
            // five algorithms are cheap enough to time.
            Case {
                name: "vgg16-conv2_2(128->128)@16x16-k3",
                in_c: 128,
                out_c: 128,
                h: 16,
                w: 16,
                k: 3,
                stride: 1,
                pad: 1,
                iters: 9,
                algos: &[DIRECT, IM2COL_PACKED, WINOGRAD_F2, WINOGRAD_F4, FFT],
                seed: 22,
            },
            // MobileNet pointwise 1×1: the im2col identity fast path.
            Case {
                name: "mobilenet-pointwise(256->256)@14x14-k1",
                in_c: 256,
                out_c: 256,
                h: 14,
                w: 14,
                k: 1,
                stride: 1,
                pad: 0,
                iters: 9,
                algos: &[DIRECT, IM2COL_PACKED],
                seed: 31,
            },
            // MobileNet stem: 3×3 stride 2 (Winograd-ineligible).
            Case {
                name: "mobilenet-stem(3->32)@32x32-k3s2",
                in_c: 3,
                out_c: 32,
                h: 32,
                w: 32,
                k: 3,
                stride: 2,
                pad: 1,
                iters: 9,
                algos: &[DIRECT, IM2COL_PACKED],
                seed: 32,
            },
            // Large-kernel stem: the FFT gate shape. im2col's column
            // matrix is ~616 MB here; FFT pays a few 256×256 plane
            // transforms instead.
            Case {
                name: "stem-fft(4->4)@220x220-k33",
                in_c: 4,
                out_c: 4,
                h: 220,
                w: 220,
                k: 33,
                stride: 1,
                pad: 0,
                iters: 5,
                algos: &[IM2COL_PACKED, FFT],
                seed: 71,
            },
        ]
    };

    println!(
        "conv-algo bench: single thread{}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut results: Vec<(&'static str, usize, usize, BTreeMap<&'static str, f64>)> = Vec::new();
    for case in &cases {
        let input = Tensor::from_fn([1, case.in_c, case.h, case.w], |i| {
            ((i % 29) as f32 - 14.0) * 0.05
        });
        let mut timings = BTreeMap::new();
        for algo in case.algos {
            let mut conv = Conv2d::new(
                case.in_c,
                case.out_c,
                case.k,
                case.stride,
                case.pad,
                case.seed,
            );
            let cfg = ExecConfig {
                conv_algo: algo.conv,
                gemm_algo: algo.gemm,
                ..ExecConfig::serial()
            };
            let secs = time_forward(&mut conv, &input, &cfg, case.iters);
            println!(
                "  {:<38} {:<14} {:>10.6}s ({:>7.2} GFLOP/s)",
                case.name,
                algo.label,
                secs,
                2.0 * case.macs() as f64 / secs / 1e9
            );
            timings.insert(algo.label, secs);
        }
        results.push((case.name, case.macs(), case.k, timings));
    }

    if !smoke {
        let f4_case = &results
            .iter()
            .find(|(n, ..)| n.starts_with("vgg16-conv4_1"))
            .expect("gate case present")
            .3;
        let f4_speedup = f4_case["winograd-f2"] / f4_case["winograd-f4"];
        assert!(
            f4_speedup >= 1.3,
            "F(4x4) must be >= 1.3x over F(2x2) on the VGG conv4_1 shape \
             (16/9 multiplies), got {f4_speedup:.2}x"
        );
        let fft_case = &results
            .iter()
            .find(|(n, ..)| n.starts_with("stem-fft"))
            .expect("gate case present")
            .3;
        let fft_speedup = fft_case["im2col-packed"] / fft_case["fft"];
        assert!(
            fft_speedup > 1.0,
            "FFT must beat im2col+packed on the large-kernel stem, got {fft_speedup:.2}x"
        );
        println!(
            "gates: winograd-f4 {f4_speedup:.2}x over f2 (>=1.3 required); \
             fft {fft_speedup:.2}x over im2col-packed (>1.0 required)"
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"convolution algorithms over VGG-16/MobileNet layer shapes plus a large-kernel stem, single thread\","
    );
    let _ = writeln!(
        json,
        "  \"note\": \"median Conv2d::forward seconds per algorithm (includes lowering, packing, transforms, epilogue); gates: winograd-f4 >= 1.3x winograd-f2 on the 28x28 VGG shape, fft > 1.0x im2col-packed on the 33x33-kernel stem\","
    );
    json.push_str("  \"results\": [\n");
    for (i, (name, macs, k, timings)) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"layer\": \"{name}\", \"kernel\": {k}, \"macs\": {macs}, \"timings\": {{"
        );
        let best = timings
            .iter()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        for (j, (label, secs)) in timings.iter().enumerate() {
            let _ = write!(json, "\"{label}\": {secs:.6}");
            if j + 1 < timings.len() {
                json.push_str(", ");
            }
        }
        let _ = write!(json, "}}, \"fastest\": \"{best}\"}}");
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let path = if smoke {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_conv.smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_conv.json")
    };
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("wrote {}", path.display());
}
