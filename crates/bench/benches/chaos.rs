//! Chaos benchmark: the self-healing serving runtime under injected
//! faults and overload, emitting `BENCH_chaos.json` at the repository
//! root.
//!
//! Two experiments, both on the VGG-16 serving plan:
//!
//! 1. **Survival** — a threaded server is offered 1.5× its calibrated
//!    capacity while a worker crash and a worker hang are injected
//!    mid-run. The acceptance property is *zero lost tickets*: every
//!    submission resolves to a typed outcome (served, shed, or a typed
//!    `WorkerCrashed`/`BatchHung` failure), and the server demonstrably
//!    keeps serving after the supervisor respawns the worker.
//! 2. **Brownout** — the same 1.5× overload with a common deadline is
//!    offered to a breaker-less server and to one with the brownout
//!    circuit breaker. With the breaker, sustained misses swap workers
//!    onto the degraded (guards-off, throughput-tuned) plan ladder,
//!    which carries more of the offered load — the deadline-miss rates
//!    at equal offered load are the comparison.
//!
//! Run modes (both need `--features fault-inject`):
//!   cargo bench -p cnn-stack-bench --bench chaos --features fault-inject
//!       # full: width 0.5, writes BENCH_chaos.json
//!   CHAOS_BENCH_SMOKE=1 cargo bench ...
//!       # small width/request count, writes target/BENCH_chaos.smoke.json

#[cfg(not(feature = "fault-inject"))]
fn main() {
    println!(
        "chaos bench skipped: rebuild with --features fault-inject to \
         enable serve-level fault injection"
    );
}

#[cfg(feature = "fault-inject")]
fn main() {
    chaos::main();
}

#[cfg(feature = "fault-inject")]
mod chaos {
    use cnn_stack_models::ModelKind;
    use cnn_stack_nn::{
        ConvAlgorithm, ExecConfig, FaultPlan, GuardConfig, InferenceSession, Network, PlanCompiler,
    };
    use cnn_stack_serve::{
        run_open_loop, BreakerPolicy, FailureCause, LoadReport, LoadSpec, Outcome, ServeConfig,
        Server, ServerHealth, ShedReason, SupervisionPolicy, Ticket,
    };
    use cnn_stack_tensor::Tensor;
    use std::fmt::Write as _;
    use std::time::{Duration, Instant};

    const MAX_BATCH: usize = 8;

    fn build_net(width: f64) -> Network {
        ModelKind::Vgg16.build_width(10, width).network
    }

    fn request_input(i: usize) -> Tensor {
        Tensor::from_fn([3usize, 32, 32], move |e| {
            (((e + 97 * i) % 23) as f32 - 11.0) * 0.05
        })
    }

    /// Peak engine throughput (req/s, best of `iters` timed runs) of one
    /// pre-warmed batch-`MAX_BATCH` session under `guard`, on the
    /// serving exec path.
    fn calibrate_qps(width: f64, guard: GuardConfig, iters: usize) -> f64 {
        let exec = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            ..ExecConfig::serial()
        };
        let mut net = build_net(width);
        let shape = vec![MAX_BATCH, 3, 32, 32];
        let plan = PlanCompiler::standard()
            .run(&mut net, &shape, &exec)
            .expect("VGG-16 compiles at CIFAR shape");
        let mut session =
            InferenceSession::with_guard(&mut net, plan, guard).expect("plan matches the network");
        let input = Tensor::zeros(shape);
        let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
        session.run_into(&input, &mut out).expect("warm-up run");
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            session.run_into(&input, &mut out).expect("timed run");
            best = best.min(t.elapsed().as_secs_f64());
        }
        MAX_BATCH as f64 / best
    }

    /// Fast-recovery supervision for a bench run: short hang floor and
    /// respawn backoff so failovers complete well inside the run.
    fn bench_supervision() -> SupervisionPolicy {
        SupervisionPolicy {
            hang_floor: Duration::from_millis(50),
            monitor_interval: Duration::from_millis(2),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            ..SupervisionPolicy::default()
        }
    }

    fn chaos_config(
        guard: GuardConfig,
        queue_depth: usize,
        breaker: Option<BreakerPolicy>,
    ) -> ServeConfig {
        let mut builder = ServeConfig::builder([3, 32, 32])
            .max_batch(MAX_BATCH)
            .max_delay(Duration::from_millis(20))
            .queue_depth(queue_depth)
            .guard(guard)
            .supervision(bench_supervision());
        if let Some(b) = breaker {
            builder = builder.breaker(b);
        }
        builder.build().expect("chaos bench config is valid")
    }

    /// Submits `requests` open-loop arrivals at `qps` and returns the
    /// tickets in submission order.
    fn offer(
        server: &Server,
        qps: f64,
        requests: usize,
        deadline: Option<Duration>,
    ) -> Vec<Ticket> {
        let t0 = Instant::now();
        (0..requests)
            .map(|i| {
                let due = Duration::from_secs_f64(i as f64 / qps);
                let elapsed = t0.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
                match deadline {
                    Some(d) => server.submit_with_deadline(request_input(i), d),
                    None => server.submit(request_input(i)),
                }
                .expect("well-shaped request")
            })
            .collect()
    }

    struct SurvivalResult {
        requests: usize,
        served: usize,
        shed: usize,
        failed_crashed: usize,
        failed_hung: usize,
        failed_engine: usize,
        served_after_respawn: usize,
        health: ServerHealth,
    }

    /// The survival run: 1.5× overload with an injected worker crash
    /// (batch 1) and an injected worker hang (batch 3), followed by a
    /// calm second wave that the recycled worker must serve in full.
    /// Waiting on every ticket *is* the zero-lost-tickets assertion — a
    /// lost ticket would wedge this function forever.
    fn survival(width: f64, capacity: f64, requests: usize) -> SurvivalResult {
        let cfg = chaos_config(GuardConfig::Paranoid, 4 * MAX_BATCH, None);
        let server = Server::start(cfg, move || build_net(width)).expect("server starts");
        server.inject_serve_faults(FaultPlan::new().crash_serve_batch(1).hang_serve_batch(3));

        let tickets = offer(&server, 1.5 * capacity, requests, None);
        let mut r = SurvivalResult {
            requests,
            served: 0,
            shed: 0,
            failed_crashed: 0,
            failed_hung: 0,
            failed_engine: 0,
            served_after_respawn: 0,
            health: ServerHealth::default(),
        };
        for (i, ticket) in tickets.into_iter().enumerate() {
            match ticket.wait().outcome {
                Outcome::Served(_) => r.served += 1,
                Outcome::Shed(ShedReason::QueueFull | ShedReason::DeadlineExpired) => r.shed += 1,
                Outcome::Shed(ShedReason::ShuttingDown) => {
                    panic!("request {i} shed as ShuttingDown on a live server")
                }
                Outcome::Failed(FailureCause::WorkerCrashed(_)) => r.failed_crashed += 1,
                Outcome::Failed(FailureCause::BatchHung) => r.failed_hung += 1,
                Outcome::Failed(FailureCause::Engine(_)) => r.failed_engine += 1,
            }
        }

        // Second wave, offered at sustainable rate once the storm has
        // fully resolved: the respawned worker (post-crash, post-hang
        // failover) must serve every one of these.
        let wave2 = offer(&server, capacity, MAX_BATCH, None);
        for ticket in wave2 {
            match ticket.wait().outcome {
                Outcome::Served(_) => r.served_after_respawn += 1,
                other => panic!("post-respawn request not served: {other:?}"),
            }
        }
        r.health = server.shutdown();
        r
    }

    struct BrownoutResult {
        report: LoadReport,
        health: ServerHealth,
    }

    /// One arm of the brownout comparison: the same overload stream
    /// against a server with or without the circuit breaker.
    fn brownout_arm(
        width: f64,
        offered: f64,
        requests: usize,
        deadline: Duration,
        breaker: Option<BreakerPolicy>,
    ) -> BrownoutResult {
        let cfg = chaos_config(GuardConfig::Paranoid, 2 * MAX_BATCH, breaker);
        let server = Server::start(cfg, move || build_net(width)).expect("server starts");
        let spec = LoadSpec {
            qps: offered,
            requests,
            deadline: Some(deadline),
            retry: None,
        };
        let report = run_open_loop(&server, &spec, request_input);
        let health = server.shutdown();
        BrownoutResult { report, health }
    }

    fn json_brownout(label: &str, r: &BrownoutResult) -> String {
        format!(
            "{{\"policy\": \"{label}\", \"offered_qps\": {:.2}, \"served\": {}, \
             \"shed_queue_full\": {}, \"shed_deadline\": {}, \"failed\": {}, \
             \"deadline_miss_rate\": {:.4}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \
             \"breaker_trips\": {}, \"degraded_batches\": {}}}",
            r.report.offered_qps,
            r.report.served,
            r.report.shed_queue_full,
            r.report.shed_deadline,
            r.report.failed,
            r.report.deadline_miss_rate,
            r.report.p50_ms,
            r.report.p99_ms,
            r.health.breaker_trips,
            r.health.degraded_batches,
        )
    }

    pub fn main() {
        let smoke = std::env::var("CHAOS_BENCH_SMOKE").is_ok();
        let (width, requests, cal_iters) = if smoke { (0.25, 48, 3) } else { (0.5, 160, 5) };
        println!(
            "chaos bench: VGG-16 width {width}, Paranoid primary plan, max_batch {MAX_BATCH}{}",
            if smoke { " [smoke]" } else { "" }
        );

        let capacity = calibrate_qps(width, GuardConfig::Paranoid, cal_iters);
        let degraded_capacity = calibrate_qps(width, GuardConfig::Off, cal_iters);
        println!(
            "calibrated capacity: primary (Paranoid) {capacity:.1} req/s, \
             degraded plan bound (guards off) {degraded_capacity:.1} req/s"
        );

        // --- Survival under crash + hang at 1.5x capacity ------------
        let sv = survival(width, capacity, requests);
        let resolved = sv.served + sv.shed + sv.failed_crashed + sv.failed_hung + sv.failed_engine;
        println!(
            "survival: {} served, {} shed, {} crashed, {} hung, {} engine-failed \
             (of {} — {} respawns, {} worker crashes, {} hung batches)",
            sv.served,
            sv.shed,
            sv.failed_crashed,
            sv.failed_hung,
            sv.failed_engine,
            sv.requests,
            sv.health.respawns,
            sv.health.workers.iter().map(|w| w.crashes).sum::<u64>(),
            sv.health.hung_batches,
        );
        assert_eq!(resolved, sv.requests, "every ticket must resolve typed");
        assert!(
            sv.failed_crashed >= 1,
            "the injected crash must surface as WorkerCrashed"
        );
        assert!(
            sv.failed_hung >= 1,
            "the injected hang must surface as BatchHung"
        );
        assert!(
            sv.health.respawns >= 2,
            "both the crash and the hang failover must respawn the worker"
        );
        assert_eq!(sv.health.hung_batches, 1);
        assert_eq!(
            sv.served_after_respawn, MAX_BATCH,
            "the server must keep serving after the respawns"
        );

        // --- Brownout: breaker-on vs breaker-off at equal load -------
        // Both arms get the same 1.5x-capacity stream. The deadline is
        // generous (double the full-queue drain time), so misses are
        // dominated by queue-full sheds — pure capacity arithmetic,
        // robust to scheduler noise. The breaker trips on those sheds
        // and swaps onto the degraded ladder, whose extra throughput
        // (guards off) sheds measurably less of the same load. The
        // cooldown outlasts the run so one trip decides the whole tail.
        let offered = 1.5 * capacity;
        let brownout_requests = 2 * requests;
        let queue_depth = 2 * MAX_BATCH;
        let deadline = Duration::from_secs_f64(2.0 * (queue_depth + MAX_BATCH) as f64 / capacity);
        let breaker = BreakerPolicy {
            window: 32,
            min_samples: 8,
            trip_miss_rate: 0.3,
            cooldown: Duration::from_secs(5),
            probe_requests: 4,
        };
        let off = brownout_arm(width, offered, brownout_requests, deadline, None);
        let on = brownout_arm(width, offered, brownout_requests, deadline, Some(breaker));
        for (label, arm) in [("breaker-off", &off), ("breaker-on", &on)] {
            println!(
                "{label:>12}: miss rate {:.1}% ({} served, {} shed-queue, {} shed-deadline, \
                 {} trips, {} degraded batches)",
                arm.report.deadline_miss_rate * 100.0,
                arm.report.served,
                arm.report.shed_queue_full,
                arm.report.shed_deadline,
                arm.health.breaker_trips,
                arm.health.degraded_batches,
            );
            assert_eq!(
                arm.report.failed, 0,
                "{label}: overload must not fail requests"
            );
        }
        assert!(off.health.breaker_trips == 0 && off.health.degraded_batches == 0);
        if !smoke {
            // The acceptance comparison; smoke runs are too short (the
            // queue may never even fill) to gate on trip behaviour or a
            // rate difference.
            assert!(
                on.health.breaker_trips >= 1,
                "sustained 1.5x overload must trip the breaker"
            );
            assert!(
                on.health.degraded_batches >= 1,
                "an open breaker must serve degraded batches"
            );
            assert!(
                on.report.deadline_miss_rate < off.report.deadline_miss_rate,
                "breaker-on miss rate ({:.1}%) must beat breaker-off ({:.1}%) at equal load",
                on.report.deadline_miss_rate * 100.0,
                off.report.deadline_miss_rate * 100.0
            );
        }

        // --- Report --------------------------------------------------
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(
            json,
            "  \"workload\": \"VGG-16 width {width}, Paranoid primary plan, guards-off degraded \
             plan, single batch worker, open-loop arrivals at 1.5x calibrated capacity\","
        );
        let _ = writeln!(
            json,
            "  \"calibrated_capacity_qps\": {{\"primary\": {capacity:.2}, \
             \"degraded_bound\": {degraded_capacity:.2}}},"
        );
        let _ = writeln!(
            json,
            "  \"survival\": {{\"requests\": {}, \"served\": {}, \"shed\": {}, \
             \"failed_worker_crashed\": {}, \"failed_batch_hung\": {}, \"failed_engine\": {}, \
             \"lost\": {}, \"respawns\": {}, \"hung_batches\": {}, \
             \"served_after_respawn\": {}}},",
            sv.requests,
            sv.served,
            sv.shed,
            sv.failed_crashed,
            sv.failed_hung,
            sv.failed_engine,
            sv.requests - resolved,
            sv.health.respawns,
            sv.health.hung_batches,
            sv.served_after_respawn,
        );
        let _ = writeln!(json, "  \"brownout\": [");
        let _ = writeln!(json, "    {},", json_brownout("breaker-off", &off));
        let _ = writeln!(json, "    {}", json_brownout("breaker-on", &on));
        let _ = writeln!(json, "  ]");
        let _ = writeln!(json, "}}");

        let path = if smoke {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/BENCH_chaos.smoke.json")
        } else {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chaos.json")
        };
        std::fs::write(&path, json).expect("write chaos bench report");
        println!("report written to {}", path.display());
    }
}
