//! Serving-layer benchmark: dynamic batching versus batch-size-1
//! serving under the open-loop load generator, on the paper's VGG-16
//! host plan, emitting `BENCH_serve.json` at the repository root.
//!
//! Methodology (SLO-capacity style): for each batching policy the
//! harness first *calibrates* the policy's raw engine throughput with
//! direct timed session runs, then offers the server a fixed open-loop
//! arrival stream at ~80% of that capacity with a common latency
//! deadline. A policy "sustains" its load when its deadline-miss rate
//! (queue sheds plus served-past-deadline) stays ~0, so comparing
//! served QPS at equal (≈0) p99 miss rate is an apples-to-apples
//! capacity comparison. The acceptance gate asserts dynamic batching
//! (max-batch 16) sustains ≥ 2× the QPS of batch-size-1 serving.
//!
//! A final overload run offers a batch-1 server three times its capacity
//! against a small queue to demonstrate typed admission-control
//! shedding (no hangs, no panics, every ticket resolves).
//!
//! Run modes:
//!   cargo bench -p cnn-stack-bench --bench serve        # full, VGG-16
//!       width 1.0, Paranoid guard, writes BENCH_serve.json
//!   SERVE_BENCH_SMOKE=1 cargo bench ... --bench serve   # width 0.25,
//!       few requests, loose 5% gate, writes target/BENCH_serve.smoke.json

use cnn_stack_models::ModelKind;
use cnn_stack_nn::{
    ConvAlgorithm, ExecConfig, GuardConfig, InferenceSession, Network, PlanCompiler,
};
use cnn_stack_serve::{run_open_loop, LoadReport, LoadSpec, Outcome, ServeConfig, Server};
use cnn_stack_tensor::Tensor;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn build_net(width: f64) -> Network {
    ModelKind::Vgg16.build_width(10, width).network
}

fn request_input(i: usize) -> Tensor {
    Tensor::from_fn([3usize, 32, 32], move |e| {
        (((e + 97 * i) % 23) as f32 - 11.0) * 0.05
    })
}

/// Measures the peak engine throughput of one pre-warmed session at the
/// given batch size (best of `iters` runs — scheduler noise on a shared
/// host is one-sided, so the fastest run is the stable capacity
/// estimate), in requests/second, on the serving exec path (im2col +
/// packed GEMM) under `guard`.
fn calibrate_qps(width: f64, batch: usize, guard: GuardConfig, iters: usize) -> f64 {
    let exec = ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        ..ExecConfig::serial()
    };
    let mut net = build_net(width);
    let shape = vec![batch, 3, 32, 32];
    let plan = PlanCompiler::standard()
        .run(&mut net, &shape, &exec)
        .expect("VGG-16 compiles at CIFAR shape");
    let mut session =
        InferenceSession::with_guard(&mut net, plan, guard).expect("plan matches the network");
    let input = Tensor::zeros(shape);
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
    session.run_into(&input, &mut out).expect("warm-up run");
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        session.run_into(&input, &mut out).expect("timed run");
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    batch as f64 / samples[0]
}

struct PolicyResult {
    label: &'static str,
    max_batch: usize,
    calibrated_qps: f64,
    report: LoadReport,
}

/// Serves `requests` open-loop arrivals at `qps` through a fresh server
/// with the given batching policy.
#[allow(clippy::too_many_arguments)]
fn run_policy(
    label: &'static str,
    width: f64,
    guard: GuardConfig,
    max_batch: usize,
    max_delay: Duration,
    calibrated_qps: f64,
    qps: f64,
    requests: usize,
    deadline: Duration,
) -> PolicyResult {
    let cfg = ServeConfig::builder([3, 32, 32])
        .max_batch(max_batch)
        .max_delay(max_delay)
        .queue_depth(4 * max_batch.max(8))
        .guard(guard)
        .build()
        .expect("bench config is valid");
    let server = Server::start(cfg, move || build_net(width)).expect("server starts");
    let spec = LoadSpec {
        qps,
        requests,
        deadline: Some(deadline),
        retry: None,
    };
    let report = run_open_loop(&server, &spec, request_input);
    server.shutdown();
    PolicyResult {
        label,
        max_batch,
        calibrated_qps,
        report,
    }
}

fn json_policy(r: &PolicyResult) -> String {
    let rep = &r.report;
    format!(
        "{{\"policy\": \"{}\", \"max_batch\": {}, \"calibrated_capacity_qps\": {:.2}, \
         \"offered_qps\": {:.2}, \"served_qps\": {:.2}, \"served\": {}, \"submitted\": {}, \
         \"shed_queue_full\": {}, \"shed_deadline\": {}, \"failed\": {}, \
         \"deadline_miss_rate\": {:.4}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \
         \"mean_batch\": {:.2}}}",
        r.label,
        r.max_batch,
        r.calibrated_qps,
        rep.offered_qps,
        rep.served_qps,
        rep.served,
        rep.submitted,
        rep.shed_queue_full,
        rep.shed_deadline,
        rep.failed,
        rep.deadline_miss_rate,
        rep.p50_ms,
        rep.p99_ms,
        rep.mean_batch
    )
}

fn main() {
    let smoke = std::env::var("SERVE_BENCH_SMOKE").is_ok();
    let (width, max_batch, requests, cal_iters, gate) = if smoke {
        (0.25, 4, 24, 9, 1.05)
    } else {
        (1.0, 16, 120, 5, 2.0)
    };
    let guard = GuardConfig::Paranoid;
    let deadline = Duration::from_millis(1500);
    // ~80% of calibrated capacity: high enough that batching matters,
    // low enough that a sustainable policy holds its miss rate at ~0.
    let utilisation = 0.8;

    println!(
        "serve bench: VGG-16 width {width}, Paranoid guard, max_batch {max_batch}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let qps1 = calibrate_qps(width, 1, guard, cal_iters);
    let qps_n = calibrate_qps(width, max_batch, guard, cal_iters);
    println!(
        "calibrated engine capacity: batch1 {qps1:.1} req/s, batch{max_batch} {qps_n:.1} req/s"
    );

    // The delay window spans a few inter-arrival periods so open
    // batches actually fill at the offered rate.
    let offered_n = utilisation * qps_n;
    let max_delay = Duration::from_secs_f64(8.0 / offered_n).min(Duration::from_millis(250));

    let single = run_policy(
        "batch-1",
        width,
        guard,
        1,
        Duration::ZERO,
        qps1,
        utilisation * qps1,
        requests,
        deadline,
    );
    let batched = run_policy(
        "dynamic-batching",
        width,
        guard,
        max_batch,
        max_delay,
        qps_n,
        offered_n,
        requests,
        deadline,
    );

    for r in [&single, &batched] {
        let rep = &r.report;
        println!(
            "{:>16}: offered {:6.1} qps -> served {:6.1} qps, p50 {:7.2} ms, p99 {:7.2} ms, \
             miss {:.2}%, mean batch {:.1}",
            r.label,
            rep.offered_qps,
            rep.served_qps,
            rep.p50_ms,
            rep.p99_ms,
            rep.deadline_miss_rate * 100.0,
            rep.mean_batch
        );
    }

    // --- Gates ------------------------------------------------------
    // Sustained QPS = the offered rate a policy carries while holding
    // its deadline-miss rate at ~0 (the equal-miss-rate comparison the
    // acceptance criterion asks for). `served_qps` over the whole wall
    // clock includes the post-submission drain tail, which penalises
    // short runs; the miss gate is what certifies the offered rate was
    // genuinely sustained.
    for r in [&single, &batched] {
        assert_eq!(r.report.failed, 0, "{}: requests failed", r.label);
        assert!(
            r.report.deadline_miss_rate <= 0.02,
            "{}: offered load was not sustained (miss rate {:.2}%) — capacities are not \
             comparable at equal p99 miss rate",
            r.label,
            r.report.deadline_miss_rate * 100.0
        );
    }
    let ratio = batched.report.offered_qps / single.report.offered_qps;
    println!("sustained QPS ratio (dynamic batching / batch-1): {ratio:.2}x (gate >= {gate}x)");
    assert!(
        ratio >= gate,
        "dynamic batching sustained only {ratio:.2}x batch-1 QPS (gate {gate}x)"
    );

    // Cross-check (full mode): the 2x is real only if batch-1 serving
    // *cannot* carry the batched policy's rate. Offer it that rate and
    // require the miss rate to blow up where dynamic batching held ~0.
    let cross = if smoke {
        None
    } else {
        let r = run_policy(
            "batch-1-at-batched-rate",
            width,
            guard,
            1,
            Duration::ZERO,
            qps1,
            offered_n,
            requests,
            deadline,
        );
        println!(
            "cross-check: batch-1 at {:.1} qps -> miss rate {:.1}% (batching held ~0%)",
            r.report.offered_qps,
            r.report.deadline_miss_rate * 100.0
        );
        assert!(
            r.report.deadline_miss_rate > 0.10,
            "batch-1 unexpectedly sustained the batched rate (miss {:.2}%): the batching \
             advantage did not materialise",
            r.report.deadline_miss_rate * 100.0
        );
        assert_eq!(r.report.failed, 0);
        Some(r)
    };

    // --- Overload: typed shedding, never a hang ---------------------
    // Offer a batch-1 server ~3x its capacity against a small queue
    // with a tight deadline: admission control must shed typed, every
    // ticket must resolve, nothing may fail.
    let overload_requests = if smoke { 32 } else { 60 };
    let cfg = ServeConfig::builder([3, 32, 32])
        .max_batch(1)
        .queue_depth(8)
        .guard(guard)
        .build()
        .expect("overload bench config is valid");
    let server = Server::start(cfg, move || build_net(width)).expect("server starts");
    let spec = LoadSpec {
        qps: 3.0 * qps1,
        requests: overload_requests,
        deadline: Some(Duration::from_secs_f64(4.0 / qps1)),
        retry: None,
    };
    let t0 = Instant::now();
    let mut served = 0usize;
    let mut shed = 0usize;
    let tickets: Vec<_> = (0..spec.requests)
        .map(|i| {
            let due = Duration::from_secs_f64(i as f64 / spec.qps);
            let elapsed = t0.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            server
                .submit_with_deadline(request_input(i), spec.deadline.unwrap())
                .expect("well-shaped request")
        })
        .collect();
    for ticket in tickets {
        match ticket.wait().outcome {
            Outcome::Served(_) => served += 1,
            Outcome::Shed(_) => shed += 1,
            Outcome::Failed(e) => panic!("overload produced a Failed outcome: {e}"),
        }
    }
    let health = server.shutdown();
    println!(
        "overload (3x capacity, queue 8): {served} served, {shed} shed \
         ({} queue-full, {} deadline), 0 failed",
        health.shed_queue_full, health.shed_deadline
    );
    assert_eq!(served + shed, overload_requests, "every ticket resolves");
    assert!(shed > 0, "overload at 3x capacity must shed");
    assert_eq!(health.failed, 0);

    // --- Report -----------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": \"VGG-16 width {width}, Paranoid guard, single host thread, \
         im2col+packed serving plan\","
    );
    let _ = writeln!(
        json,
        "  \"note\": \"open-loop arrivals at {:.0}% of calibrated capacity per policy, \
         common {:.0} ms deadline; miss = queue/deadline sheds + served past deadline\",",
        utilisation * 100.0,
        deadline.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "  \"qps_ratio_batched_vs_single\": {ratio:.3},");
    let _ = writeln!(json, "  \"policies\": [");
    let _ = writeln!(json, "    {},", json_policy(&single));
    let _ = writeln!(json, "    {}", json_policy(&batched));
    let _ = writeln!(json, "  ],");
    if let Some(cross) = &cross {
        let _ = writeln!(json, "  \"cross_check\": {},", json_policy(cross));
    }
    let _ = writeln!(
        json,
        "  \"overload\": {{\"policy\": \"batch-1\", \"offered_x_capacity\": 3.0, \
         \"queue_depth\": 8, \"served\": {served}, \"shed_queue_full\": {}, \
         \"shed_deadline\": {}, \"failed\": 0}}",
        health.shed_queue_full, health.shed_deadline
    );
    let _ = writeln!(json, "}}");

    let path = if smoke {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_serve.smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
    };
    std::fs::write(&path, json).expect("write serve bench report");
    println!("report written to {}", path.display());
}
