//! GEMM engine throughput sweep: naive / blocked / packed at the
//! paper's convolution GEMM shapes, across thread counts, emitting
//! `BENCH_gemm.json` at the repository root.
//!
//! The vendored criterion is a plain sampler without machine-readable
//! output, so this harness times iterations directly (median of the
//! per-iteration wall-clock samples) and writes the JSON itself.
//!
//! Run modes:
//!   cargo bench -p cnn-stack-bench --bench gemm       # full sweep
//!   GEMM_BENCH_SMOKE=1 cargo bench ... --bench gemm   # tiny shapes,
//!       writes to target/BENCH_gemm.smoke.json (CI correctness check)

use cnn_stack_parallel::{parallel_for, DisjointWriter, Schedule};
use cnn_stack_tensor::{gemm, GemmPlan};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

/// One benchmarked problem: `C[m×n] = A[m×k] · B[k×n]`, named after the
/// layer whose im2col lowering produces it.
struct ShapeSpec {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

/// im2col GEMM shapes of the paper's model zoo (m = output channels,
/// k = patch length, n = output positions at 224×224 inputs).
const SHAPES: &[ShapeSpec] = &[
    // VGG-16 conv2_2: 128 filters over 128×3×3 patches, 112×112 map
    // (n clipped to one 16×16 tile column to keep the naive arm sane).
    ShapeSpec {
        name: "vgg16_conv2_2",
        m: 128,
        k: 1152,
        n: 256,
    },
    // VGG-16 conv4_3: the acceptance-criterion shape.
    ShapeSpec {
        name: "vgg16_conv4_3",
        m: 512,
        k: 4608,
        n: 196,
    },
    // MobileNet pointwise at the 14×14 stage: k = in_channels (1×1).
    ShapeSpec {
        name: "mobilenet_pw_14x14",
        m: 512,
        k: 512,
        n: 196,
    },
    // ResNet-18 conv3_x block: 128 in → 256 out is folded to the
    // 3×3/128-channel patch shape at the 14×14 map.
    ShapeSpec {
        name: "resnet18_conv3_x",
        m: 256,
        k: 1152,
        n: 196,
    },
];

const SMOKE_SHAPES: &[ShapeSpec] = &[ShapeSpec {
    name: "smoke_17x33x29",
    m: 17,
    k: 33,
    n: 29,
}];

fn random_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Row-split driver for the algorithms without internal parallelism:
/// each worker computes a contiguous row slab of C with `algo`.
#[allow(clippy::too_many_arguments)]
fn gemm_rowsplit(
    algo: gemm::GemmAlgorithm,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let writer = DisjointWriter::new(c);
    let writer = &writer;
    parallel_for(threads, m, Schedule::Static, |range| {
        // SAFETY: `Schedule::Static` hands each worker a disjoint row
        // range, so the written C slabs never overlap.
        let rows = unsafe { writer.slice_mut(range.start * n, range.end * n) };
        let a_rows = &a[range.start * k..range.end * k];
        gemm::gemm_into(a_rows, b, rows, range.len(), k, n, algo);
    });
}

/// Times `body` enough iterations to pass `min_total_s` of accumulated
/// runtime (at least `min_iters`), returning the median per-iteration
/// seconds.
fn time_median(min_iters: usize, min_total_s: f64, mut body: impl FnMut()) -> f64 {
    // Warm-up: fault in buffers and the dispatch cache.
    body();
    let mut samples = Vec::new();
    let mut total = 0.0f64;
    while samples.len() < min_iters || total < min_total_s {
        let t = Instant::now();
        body();
        let dt = t.elapsed().as_secs_f64();
        samples.push(dt);
        total += dt;
        if samples.len() >= 64 {
            break;
        }
    }
    samples.sort_by(|x, y| x.partial_cmp(y).expect("timings are finite"));
    samples[samples.len() / 2]
}

struct Measurement {
    shape: &'static str,
    algorithm: &'static str,
    threads: usize,
    seconds: f64,
    gflops: f64,
}

fn main() {
    let smoke = std::env::var("GEMM_BENCH_SMOKE").is_ok();
    let shapes = if smoke { SMOKE_SHAPES } else { SHAPES };
    let (min_iters, min_total_s) = if smoke { (1, 0.0) } else { (3, 0.3) };
    let thread_counts = [1usize, 2, 4];
    let mut results: Vec<Measurement> = Vec::new();

    println!(
        "gemm bench: kernel={}, {} shape(s), threads {:?}{}",
        gemm::gemm_kernel_name(),
        shapes.len(),
        thread_counts,
        if smoke { " [smoke]" } else { "" }
    );

    for spec in shapes {
        let ShapeSpec { name, m, k, n } = *spec;
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let a = random_vec(m * k, 1);
        let b = random_vec(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        let plan = GemmPlan::new(m, k, n);
        let mut scratch = vec![0.0f32; plan.scratch_elems()];

        // Correctness cross-check before timing anything.
        let mut want = vec![0.0f32; m * n];
        gemm::gemm_into(&a, &b, &mut want, m, k, n, gemm::GemmAlgorithm::Naive);
        gemm::gemm_packed_into(&a, &b, &mut c, m, k, n, &mut scratch, 1, Schedule::Static);
        let max_diff = want
            .iter()
            .zip(&c)
            .map(|(w, g)| (w - g).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff <= 1e-3,
            "{name}: packed disagrees with naive by {max_diff}"
        );

        for &threads in &thread_counts {
            for (algorithm, runner) in [
                (
                    "naive",
                    Box::new(|c: &mut [f32], scratch: &mut [f32], threads: usize| {
                        let _ = scratch;
                        gemm_rowsplit(gemm::GemmAlgorithm::Naive, &a, &b, c, m, k, n, threads);
                    }) as Box<dyn Fn(&mut [f32], &mut [f32], usize)>,
                ),
                (
                    "blocked",
                    Box::new(|c: &mut [f32], scratch: &mut [f32], threads: usize| {
                        let _ = scratch;
                        gemm_rowsplit(gemm::GemmAlgorithm::Blocked, &a, &b, c, m, k, n, threads);
                    }),
                ),
                (
                    "packed",
                    Box::new(|c: &mut [f32], scratch: &mut [f32], threads: usize| {
                        gemm::gemm_packed_into(
                            &a,
                            &b,
                            c,
                            m,
                            k,
                            n,
                            scratch,
                            threads,
                            Schedule::Static,
                        );
                    }),
                ),
            ] {
                let seconds = time_median(min_iters, min_total_s, || {
                    c.fill(0.0);
                    runner(&mut c, &mut scratch, threads);
                });
                let gflops = flops / seconds / 1e9;
                println!("  {name:<20} {algorithm:<8} t={threads}  {seconds:>9.5}s  {gflops:>7.2} GFLOP/s");
                results.push(Measurement {
                    shape: name,
                    algorithm,
                    threads,
                    seconds,
                    gflops,
                });
            }
        }
    }

    // Headline ratio at the acceptance-criterion shape.
    if !smoke {
        let single = |alg: &str| {
            results
                .iter()
                .find(|r| r.shape == "vgg16_conv4_3" && r.algorithm == alg && r.threads == 1)
                .expect("measured")
                .gflops
        };
        let speedup = single("packed") / single("blocked");
        println!("vgg16_conv4_3 packed/blocked single-thread speedup: {speedup:.2}x");
        assert!(
            speedup >= 3.0,
            "packed GEMM must be at least 3x the blocked GEMM single-thread"
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", gemm::gemm_kernel_name());
    let _ = writeln!(
        json,
        "  \"note\": \"median per-iteration wall clock; host has {} core(s), so >1-thread rows measure scheduling overhead, not speedup\",",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shape\": \"{}\", \"algorithm\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \"gflops\": {:.3}}}",
            r.shape, r.algorithm, r.threads, r.seconds, r.gflops
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let path = if smoke {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_gemm.smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_gemm.json")
    };
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("wrote {}", path.display());
}
