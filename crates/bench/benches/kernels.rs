//! Criterion microbenchmarks of the compute kernels underlying every
//! experiment: GEMM variants, the im2col lowering, and dense vs sparse
//! convolution at the paper's layer shapes.

use cnn_stack_sparse::{sparse_conv2d, CsrMatrix};
use cnn_stack_tensor::{gemm, im2col, Conv2dGeometry, Tensor, TileConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn random(shape: impl Into<cnn_stack_tensor::Shape>, density: f64, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_fn(shape.into(), |_| {
        if rng.gen_bool(density) {
            rng.gen_range(-1.0..1.0)
        } else {
            0.0
        }
    })
}

/// GEMM algorithm comparison at a VGG-16 mid-layer shape
/// ([256 x 2304] . [2304 x 64], the 8x8 stage).
fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_256x2304x64");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let a = random([256, 2304], 1.0, 1);
    let b = random([2304, 64], 1.0, 2);
    for (label, algo) in [
        ("naive", gemm::GemmAlgorithm::Naive),
        ("blocked", gemm::GemmAlgorithm::Blocked),
        (
            "tiled_32x32x32u4",
            gemm::GemmAlgorithm::Tiled(TileConfig::default()),
        ),
    ] {
        group.bench_function(label, |bencher| {
            bencher.iter(|| gemm::matmul_with(&a, &b, algo))
        });
    }
    group.finish();
}

/// The im2col lowering for a CIFAR 3x3 "same" convolution input.
fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let geom = Conv2dGeometry::new(64, 32, 32, 3, 3, 1, 1);
    let image: Vec<f32> = (0..64 * 1024).map(|i| (i as f32 * 0.01).sin()).collect();
    group.bench_function("64ch_32x32_k3", |bencher| {
        bencher.iter(|| im2col(&image, &geom))
    });
    group.finish();
}

/// Dense GEMM-based conv vs direct sparse conv across sparsity levels —
/// the kernel-level version of Fig. 1's expected-vs-actual gap.
fn bench_sparse_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_64to64_16x16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let geom = Conv2dGeometry::new(64, 16, 16, 3, 3, 1, 1);
    let input = random([1, 64, 16, 16], 1.0, 3);

    let dense_w = random([64, geom.patch_len()], 1.0, 4);
    let dense_csr = CsrMatrix::from_dense(&dense_w, 0.0);
    group.bench_function("dense_as_csr_0pct", |bencher| {
        bencher.iter(|| sparse_conv2d(&input, &dense_csr, None, &geom))
    });

    for sparsity in [50u64, 80, 95] {
        let w = random(
            [64, geom.patch_len()],
            1.0 - sparsity as f64 / 100.0,
            sparsity,
        );
        let csr = CsrMatrix::from_dense(&w, 0.0);
        group.bench_with_input(
            BenchmarkId::new("csr", format!("{sparsity}pct")),
            &csr,
            |bencher, csr| bencher.iter(|| sparse_conv2d(&input, csr, None, &geom)),
        );
    }
    group.finish();
}

/// SpMM vs dense matmul at a linear-layer shape.
fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_512x512x64");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let b = random([512, 64], 1.0, 7);
    let dense = random([512, 512], 1.0, 8);
    group.bench_function("dense_gemm", |bencher| {
        bencher.iter(|| gemm::matmul(&dense, &b))
    });
    for sparsity in [80u64, 95] {
        let w = random([512, 512], 1.0 - sparsity as f64 / 100.0, sparsity + 20);
        let csr = CsrMatrix::from_dense(&w, 0.0);
        group.bench_with_input(
            BenchmarkId::new("csr_spmm", format!("{sparsity}pct")),
            &csr,
            |bencher, csr| bencher.iter(|| csr.spmm(&b)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_im2col,
    bench_sparse_conv,
    bench_spmm
);
criterion_main!(benches);
