//! Observability overhead benchmark: the cost of the metrics/tracing
//! hooks when disabled must stay within noise of the PR 4 session, and
//! the enabled modes are measured and recorded in `BENCH_obs.json`.
//!
//! Run modes:
//!   cargo bench -p cnn-stack-bench --bench obs      # full measurement,
//!       asserts tracing-off <1% over the frozen PR 4 baseline and
//!       writes BENCH_obs.json at the workspace root
//!   OBS_BENCH_SMOKE=1 cargo bench ... --bench obs   # quick regression
//!       check (CI job): fails on >5% tracing-off overhead vs the
//!       frozen baseline, writes target/obs_bench_smoke.json

use cnn_stack_models::ModelKind;
use cnn_stack_nn::{ExecConfig, GuardConfig, InferenceSession, ObsLevel, PlanCompiler};
use cnn_stack_tensor::Tensor;
use std::time::Instant;

/// Seconds per pass for the PR 4 session (commit db7c3e5, before the
/// observability hooks landed): mean of three min-of-120 runs of this
/// exact workload on the reference host. The min-of-N estimator's
/// run-to-run spread is ~0.6%, so the 1%/5% gates below have headroom.
const PR4_BASELINE_S: f64 = 0.008338;

/// Full-run gate: ISSUE acceptance requires tracing-off within 1% of
/// the PR 4 session.
const FULL_GATE: f64 = 1.01;

/// Smoke-run gate: CI hosts are noisier than the reference measurement,
/// so the quick check only fails on a >5% regression.
const SMOKE_GATE: f64 = 1.05;

/// Minimum seconds per `run_into` pass after one warm-up. The workload
/// is deterministic and single-threaded, so the minimum estimates the
/// noise floor far more stably than the median on a shared host.
fn time_session(
    session: &mut InferenceSession,
    input: &Tensor,
    out: &mut Tensor,
    iters: usize,
) -> f64 {
    session.run_into(input, out).expect("warm-up run succeeds");
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        session.run_into(input, out).expect("timed run succeeds");
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measures one fused VGG-16 session (width 0.25, batch 4, serial) —
/// the same workload the PR 4 baseline was frozen on — at the given
/// observability level.
fn measure(level: ObsLevel, iters: usize) -> f64 {
    let exec = ExecConfig {
        observer: level,
        ..ExecConfig::serial()
    };
    let mut model = ModelKind::Vgg16.build_width(10, 0.25);
    let shape = model.input_shape(4);
    let plan = PlanCompiler::standard()
        .run(&mut model.network, &shape, &exec)
        .expect("plan compiles");
    let mut session = InferenceSession::with_guard(&mut model.network, plan, GuardConfig::Off)
        .expect("session builds");
    let input = Tensor::from_fn(shape.to_vec(), |i| ((i % 23) as f32 - 11.0) * 0.05);
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
    time_session(&mut session, &input, &mut out, iters)
}

fn write_json(path: &std::path::Path, entries: &[(&str, f64)], baseline: f64) {
    use std::fmt::Write as _;
    let mut json = String::from("{\n");
    writeln!(
        json,
        "  \"workload\": \"vgg16 w=0.25 batch=4 serial fused\","
    )
    .unwrap();
    writeln!(json, "  \"estimator\": \"min seconds/pass\",").unwrap();
    writeln!(json, "  \"pr4_baseline_s\": {baseline:.6},").unwrap();
    for (i, (name, secs)) in entries.iter().enumerate() {
        let ratio = secs / baseline;
        let comma = if i + 1 == entries.len() { "" } else { "," };
        writeln!(
            json,
            "  \"{name}\": {{\"seconds_per_pass\": {secs:.6}, \"vs_pr4\": {ratio:.4}}}{comma}"
        )
        .unwrap();
    }
    json.push_str("}\n");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn main() {
    if std::env::var_os("OBS_BENCH_SMOKE").is_some() {
        // CI quick mode: one short tracing-off measurement against the
        // recorded baseline.
        let off = measure(ObsLevel::Off, 30);
        let ratio = off / PR4_BASELINE_S;
        println!("smoke: obs-off {off:.6} s/pass = {ratio:.4}x PR4 baseline");
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/obs_bench_smoke.json");
        write_json(&path, &[("obs_off", off)], PR4_BASELINE_S);
        assert!(
            ratio < SMOKE_GATE,
            "tracing-off overhead regressed: {ratio:.4}x > {SMOKE_GATE}x PR4 baseline"
        );
        return;
    }

    let iters = 120usize;
    // Interleave the three levels so slow host-wide drift (thermal,
    // neighbours) hits every mode equally instead of biasing one.
    let mut best = [f64::INFINITY; 3];
    let levels = [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Trace];
    for round in 0..3 {
        for (slot, &level) in levels.iter().enumerate() {
            let secs = measure(level, iters);
            best[slot] = best[slot].min(secs);
            println!("round {round}: {level:?} {secs:.6} s/pass (min of {iters})");
        }
    }
    let [off, metrics, trace] = best;
    let off_ratio = off / PR4_BASELINE_S;
    println!();
    println!("obs off:     {off:.6} s/pass = {off_ratio:.4}x PR4");
    println!(
        "obs metrics: {metrics:.6} s/pass = {:.4}x PR4",
        metrics / PR4_BASELINE_S
    );
    println!(
        "obs trace:   {trace:.6} s/pass = {:.4}x PR4",
        trace / PR4_BASELINE_S
    );

    write_json(
        &std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json"),
        &[
            ("obs_off", off),
            ("obs_metrics", metrics),
            ("obs_trace", trace),
        ],
        PR4_BASELINE_S,
    );
    assert!(
        off_ratio < FULL_GATE,
        "tracing-off must cost <1% vs the PR 4 session: {off_ratio:.4}x"
    );
    println!("tracing-off overhead gate passed (<1% vs PR 4)");
}
