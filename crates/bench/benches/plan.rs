//! End-to-end plan-compiler benchmark: per-layer algorithm selection
//! versus every single global `ExecConfig`, on a mixed-sparsity VGG-16,
//! emitting `BENCH_plan.json` at the repository root.
//!
//! The workload is the regime the paper's §V-C sweep cannot express: a
//! weight-pruned network where only *some* layers are sparse enough for
//! CSR to win (the crossover sits near 2% density on this host, see
//! BENCH_gemm.json), so any global format/algorithm choice is wrong for
//! part of the network. The pass compiler folds batch norms, fuses the
//! ReLU epilogues, and picks im2col+packed for the dense layers and
//! CSR for the pruned ones — it must beat the best global config
//! end-to-end (asserted below).
//!
//! Run modes:
//!   cargo bench -p cnn-stack-bench --bench plan       # full measurement
//!   PLAN_BENCH_SMOKE=1 cargo bench ... --bench plan   # tiny width, one
//!       iteration, writes to target/BENCH_plan.smoke.json (CI check)

use cnn_stack_models::{Model, ModelKind};
use cnn_stack_nn::network::set_network_format;
use cnn_stack_nn::{
    Conv2d, ConvAlgorithm, ExecConfig, GuardConfig, InferencePlan, InferenceSession, Linear,
    PlanCompiler, WeightFormat,
};
use cnn_stack_tensor::Tensor;
use std::fmt::Write as _;
use std::time::Instant;

/// Magnitude-prunes `data` in place to the target sparsity.
fn prune_to(data: &mut [f32], sparsity: f64) {
    let mut mags: Vec<f32> = data.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
    let cut_idx = ((data.len() as f64 * sparsity) as usize).min(data.len() - 1);
    let cut = mags[cut_idx];
    for v in data.iter_mut() {
        if v.abs() <= cut {
            *v = 0.0;
        }
    }
}

/// Builds the mixed-sparsity workload: a width-scaled VGG-16 whose
/// *large* conv layers and classifier are magnitude-pruned to ~99.5%
/// sparsity while the small early layers stay dense. Deterministic, so
/// every config benchmarks the identical network.
fn build_mixed_model(width: f64, elems_cut: usize) -> Model {
    let mut model = ModelKind::Vgg16.build_width(10, width);
    for layer in model.network.layers_mut() {
        if let Some(conv) = layer.as_any_mut().downcast_mut::<Conv2d>() {
            if conv.weight().value.len() >= elems_cut {
                prune_to(conv.weight_mut().value.data_mut(), 0.995);
            }
        } else if let Some(fc) = layer.as_any_mut().downcast_mut::<Linear>() {
            if fc.weight().value.len() >= elems_cut {
                prune_to(fc.weight_mut().value.data_mut(), 0.995);
            }
        }
    }
    model
}

/// Median of per-iteration wall-clock times for `session.run_into`.
fn time_session(
    session: &mut InferenceSession,
    input: &Tensor,
    out: &mut Tensor,
    iters: usize,
) -> f64 {
    session.run_into(input, out).expect("warm-up run succeeds");
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        session.run_into(input, out).expect("timed run succeeds");
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|x, y| x.partial_cmp(y).expect("timings are finite"));
    samples[samples.len() / 2]
}

struct Measurement {
    config: &'static str,
    seconds: f64,
    steps: usize,
    fused_steps: usize,
}

fn main() {
    let smoke = std::env::var("PLAN_BENCH_SMOKE").is_ok();
    let (width, iters) = if smoke { (0.1, 1) } else { (0.5, 7) };
    // Prune everything above ~16k weight elements: at width 0.5 that is
    // the back half of VGG-16 (which dominates dense runtime) plus the
    // classifier, while the early convs stay dense.
    let elems_cut = if smoke { 4_000 } else { 16_000 };
    let input = Tensor::from_fn([1usize, 3, 32, 32], |i| ((i % 23) as f32 - 11.0) * 0.05);

    println!(
        "plan bench: VGG-16 width {width}, mixed ~99.5% sparsity above {elems_cut} elems{}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut results: Vec<Measurement> = Vec::new();
    let mut selection_lines: Vec<String> = Vec::new();

    // The global single-choice baselines the paper's sweep can express,
    // plus the per-layer selected plan. Each rebuilds the identical
    // model so earlier runs cannot leak format changes.
    let configs: Vec<(&'static str, WeightFormat, ExecConfig, bool)> = vec![
        (
            "global-direct-dense",
            WeightFormat::Dense,
            ExecConfig::serial(),
            false,
        ),
        (
            "global-im2col-packed-dense",
            WeightFormat::Dense,
            ExecConfig {
                conv_algo: ConvAlgorithm::Im2col,
                ..ExecConfig::serial()
            },
            false,
        ),
        (
            "global-direct-csr",
            WeightFormat::Csr,
            ExecConfig::serial(),
            false,
        ),
        (
            "selected-per-layer",
            WeightFormat::Dense,
            ExecConfig::serial(),
            true,
        ),
    ];

    for (name, format, exec, use_compiler) in configs {
        let mut model = build_mixed_model(width, elems_cut);
        if format != WeightFormat::Dense {
            set_network_format(&mut model.network, format);
        }
        let shape = model.input_shape(1);
        let plan = if use_compiler {
            PlanCompiler::standard()
                .run(&mut model.network, &shape, &exec)
                .expect("plan compiles")
        } else {
            InferencePlan::compile(&model.network, &shape, &exec).expect("plan compiles")
        };
        let steps = plan.steps().len();
        let fused_steps = plan.steps().iter().filter(|s| s.cfg.fused_relu).count();
        if use_compiler {
            for s in plan.steps() {
                selection_lines.push(format!(
                    "{} [span {}] {:?}/{:?}{}",
                    s.name,
                    s.span,
                    s.cfg.conv_algo,
                    s.cfg.gemm_algo,
                    if s.cfg.fused_relu { " +relu" } else { "" }
                ));
            }
        }
        let mut session = InferenceSession::with_guard(&mut model.network, plan, GuardConfig::Off)
            .expect("session builds");
        let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
        let seconds = time_session(&mut session, &input, &mut out, iters);
        println!("  {name:<28} {steps:>2} steps ({fused_steps} fused)  {seconds:>9.5}s");
        results.push(Measurement {
            config: name,
            seconds,
            steps,
            fused_steps,
        });
    }

    let selected = results
        .iter()
        .find(|r| r.config == "selected-per-layer")
        .expect("measured");
    let best_global = results
        .iter()
        .filter(|r| r.config != "selected-per-layer")
        .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite"))
        .expect("measured");
    let speedup = best_global.seconds / selected.seconds;
    println!(
        "selected-per-layer vs best global ({}): {speedup:.2}x",
        best_global.config
    );
    if !smoke {
        assert!(
            speedup > 1.0,
            "per-layer selection ({:.5}s) must beat the best global config {} ({:.5}s)",
            selected.seconds,
            best_global.config,
            best_global.seconds
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"VGG-16 width {width}, layers >= {elems_cut} weight elems magnitude-pruned to 99.5% sparsity\","
    );
    let _ = writeln!(
        json,
        "  \"note\": \"median of {iters} single-thread host passes; selected plan folds BN, fuses ReLU epilogues and picks im2col+packed or CSR per layer\","
    );
    let _ = writeln!(json, "  \"best_global\": \"{}\",", best_global.config);
    let _ = writeln!(json, "  \"speedup_vs_best_global\": {speedup:.3},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"config\": \"{}\", \"seconds\": {:.6}, \"steps\": {}, \"fused_steps\": {}}}",
            r.config, r.seconds, r.steps, r.fused_steps
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n  \"selected_plan\": [\n");
    for (i, line) in selection_lines.iter().enumerate() {
        let _ = write!(json, "    \"{line}\"");
        json.push_str(if i + 1 == selection_lines.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ]\n}\n");

    let path = if smoke {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_plan.smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_plan.json")
    };
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("wrote {}", path.display());
}
