//! Plan-compiled session execution vs the allocating `Network::forward`
//! path: wall-clock through criterion, plus a heap-allocation count per
//! inference pass (the arena should bring the session's steady-state
//! count to zero for fully supported layer stacks).

use cnn_stack_models::ModelKind;
use cnn_stack_nn::{ExecConfig, GuardConfig, InferencePlan, InferenceSession, Phase};
use cnn_stack_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// System allocator wrapper that counts every allocation, so the bench
/// can report allocations-per-pass next to the timings.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn bench_session_vs_forward(c: &mut Criterion) {
    let input = Tensor::zeros([4, 3, 32, 32]);
    let cfg = ExecConfig::serial();
    for kind in [ModelKind::Vgg16, ModelKind::MobileNet] {
        let mut group = c.benchmark_group(format!("engine_{}_w0.25_b4", kind.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));

        let mut baseline = kind.build_width(10, 0.25);
        group.bench_function("network_forward", |b| {
            b.iter(|| baseline.network.forward(&input, Phase::Eval, &cfg))
        });

        let mut compiled = kind.build_width(10, 0.25);
        let plan = InferencePlan::compile(&compiled.network, input.shape().dims(), &cfg)
            .expect("paper models accept CIFAR-shaped input");
        let mut session =
            InferenceSession::new(&mut compiled.network, plan).expect("plan matches this network");
        let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
        // Warm once so arena setup is excluded from the steady state.
        session
            .run_into(&input, &mut out)
            .expect("shape matches plan");
        group.bench_function("session_run_into", |b| {
            b.iter(|| {
                session
                    .run_into(&input, &mut out)
                    .expect("shape matches plan")
            })
        });
        group.finish();

        let session_allocs = allocations_during(|| {
            session
                .run_into(&input, &mut out)
                .expect("shape matches plan")
        });
        drop(session);
        let forward_allocs = allocations_during(|| {
            let _ = baseline.network.forward(&input, Phase::Eval, &cfg);
        });
        println!(
            "{} allocations/pass: Network::forward = {forward_allocs}, \
             InferenceSession::run_into = {session_allocs}",
            kind.name()
        );
    }
}

/// Guard overhead on VGG-16 (width 0.25, batch 8): `GuardConfig::Off`
/// must sit within noise of the unguarded PR-1 session, and
/// `BoundaryCheck` — one finiteness scan per layer boundary — should
/// stay under a few percent of the pass time.
fn bench_guard_overhead(c: &mut Criterion) {
    let input = Tensor::zeros([8, 3, 32, 32]);
    let cfg = ExecConfig::serial();
    let mut group = c.benchmark_group("guard_vgg16_w0.25_b8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for (label, guard) in [
        ("off", GuardConfig::Off),
        ("boundary_check", GuardConfig::BoundaryCheck),
        ("paranoid", GuardConfig::Paranoid),
    ] {
        let mut model = ModelKind::Vgg16.build_width(10, 0.25);
        let plan = InferencePlan::compile(&model.network, input.shape().dims(), &cfg)
            .expect("paper models accept CIFAR-shaped input");
        let mut session = InferenceSession::with_guard(&mut model.network, plan, guard)
            .expect("plan matches this network");
        let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
        session
            .run_into(&input, &mut out)
            .expect("shape matches plan");
        group.bench_function(label, |b| {
            b.iter(|| {
                session
                    .run_into(&input, &mut out)
                    .expect("shape matches plan")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_vs_forward, bench_guard_overhead);
criterion_main!(benches);
