//! Memory-planning benchmark: the liveness-coloured arena against the
//! legacy ping-pong pair on batch-8 VGG-16, emitting `BENCH_memory.json`
//! at the repository root.
//!
//! Colouring is a pure layout optimisation — the kernels and algorithm
//! choices are identical, so outputs are asserted bit-identical before
//! either layout is timed. The gates (full mode only) encode the PR's
//! acceptance bar:
//!
//!   * coloured peak ≤ 70 % of the ping-pong peak (≥ 30 % reduction);
//!   * coloured median latency ≤ 105 % of ping-pong (≤ 5 % regression).
//!
//! A third row plans the same model under a 16 MB activation budget —
//! the envelope the fixed im2col + ping-pong configuration cannot fit —
//! and must land inside it.
//!
//! Run modes:
//!   cargo bench -p cnn-stack-bench --bench memory        # full measurement
//!   MEMORY_BENCH_SMOKE=1 cargo bench ... --bench memory  # thin model, one
//!       iteration, writes to target/BENCH_memory.smoke.json (CI check)

use cnn_stack_models::{vgg16, vgg16_width, Model};
use cnn_stack_nn::{ArenaStrategy, ExecConfig, InferenceSession, PlanCompiler};
use cnn_stack_tensor::Tensor;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    peak_bytes: usize,
    arena_bytes: usize,
    seconds: f64,
}

/// How a row's output is checked against the ping-pong reference.
enum Check<'a> {
    /// This row *is* the reference; capture its output.
    Reference(&'a mut Vec<f32>),
    /// Same compiled algorithms, different layout: bits must match.
    BitIdentical(&'a [f32]),
    /// The budget solver may pick different kernels: tolerance match.
    Close(&'a [f32]),
}

/// Compiles `model` with `cfg`, checks its output per `check`, then
/// returns the plan's predicted peak, the session's actual arena
/// allocation, and the median seconds per run.
fn measure(
    mut model: Model,
    cfg: &ExecConfig,
    input: &Tensor,
    check: Check,
    iters: usize,
    name: &'static str,
) -> Row {
    let shape = input.shape().dims().to_vec();
    let plan = PlanCompiler::standard()
        .run(&mut model.network, &shape, cfg)
        .expect("plan compiles");
    let peak_bytes = plan.strategy_peak_bytes();
    let mut session = InferenceSession::new(&mut model.network, plan).expect("session builds");
    let arena_bytes = session.arena_bytes();
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());

    // Correctness before timing: a layout change must not change math.
    session.run_into(input, &mut out).expect("clean run");
    match check {
        Check::Reference(sink) => *sink = out.data().to_vec(),
        Check::BitIdentical(want) => {
            for (i, (a, b)) in out.data().iter().zip(want).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{name}: elem {i} diverged from reference ({a} vs {b})"
                );
            }
        }
        Check::Close(want) => {
            for (i, (a, b)) in out.data().iter().zip(want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-3,
                    "{name}: elem {i} drifted from reference ({a} vs {b})"
                );
            }
        }
    }

    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        session.run_into(input, &mut out).expect("clean run");
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|x, y| x.partial_cmp(y).expect("timings are finite"));
    Row {
        name,
        peak_bytes,
        arena_bytes,
        seconds: samples[samples.len() / 2],
    }
}

fn main() {
    let smoke = std::env::var("MEMORY_BENCH_SMOKE").is_ok();
    let iters = if smoke { 1 } else { 31 };
    let batch = if smoke { 2 } else { 8 };
    let budget = 16 << 20;
    let build = || {
        if smoke {
            vgg16_width(10, 0.25)
        } else {
            vgg16(10)
        }
    };

    let shape = vec![batch, 3, 32, 32];
    let input = Tensor::from_fn(shape.clone(), |i| ((i % 31) as f32 - 15.0) * 0.05);

    let ping_cfg = ExecConfig::builder()
        .arena(ArenaStrategy::PingPong)
        .build()
        .expect("valid config");
    let colour_cfg = ExecConfig::builder()
        .arena(ArenaStrategy::Coloured)
        .build()
        .expect("valid config");
    let capped_cfg = ExecConfig::builder()
        .plan_budget(budget)
        .build()
        .expect("valid config");

    println!(
        "memory bench: batch-{batch} VGG-16{}, single thread",
        if smoke { " (width 0.25) [smoke]" } else { "" }
    );

    // The ping-pong row is the reference: colouring is a pure layout
    // change over the same compiled plan, so it must match to the bit;
    // the budgeted row may select different kernels and gets a
    // tolerance check instead.
    let mut want: Vec<f32> = Vec::new();
    let rows = vec![
        measure(
            build(),
            &ping_cfg,
            &input,
            Check::Reference(&mut want),
            iters,
            "ping-pong",
        ),
        measure(
            build(),
            &colour_cfg,
            &input,
            Check::BitIdentical(&want),
            iters,
            "coloured",
        ),
        measure(
            build(),
            &capped_cfg,
            &input,
            Check::Close(&want),
            iters,
            "16MB-budget",
        ),
    ];
    for r in &rows {
        println!(
            "  {:<12} peak {:>10} B  arena {:>10} B  median {:>9.6}s",
            r.name, r.peak_bytes, r.arena_bytes, r.seconds
        );
    }

    let reduction = 1.0 - rows[1].peak_bytes as f64 / rows[0].peak_bytes as f64;
    let latency_ratio = rows[1].seconds / rows[0].seconds;
    println!(
        "  coloured vs ping-pong: {:.1}% smaller peak, {:.3}x latency",
        reduction * 100.0,
        latency_ratio
    );

    if !smoke {
        assert!(
            reduction >= 0.30,
            "coloured arena must cut the ping-pong peak by >= 30%, got {:.1}%",
            reduction * 100.0
        );
        assert!(
            latency_ratio <= 1.05,
            "coloured arena must cost <= 5% latency, got {:.3}x",
            latency_ratio
        );
        assert!(
            rows[2].peak_bytes <= budget && rows[2].arena_bytes <= budget,
            "the budgeted plan must fit its 16 MB envelope"
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"VGG-16 CIFAR batch {batch}, single thread{}\",",
        if smoke { " [smoke]" } else { "" }
    );
    let _ = writeln!(
        json,
        "  \"note\": \"median of {iters} steady-state session runs; coloured output asserted bit-identical to the ping-pong reference before timing (budgeted row within 1e-3); gates: coloured peak <= 70% of ping-pong, latency <= 105%\","
    );
    let _ = writeln!(json, "  \"peak_reduction_pct\": {:.1},", reduction * 100.0);
    let _ = writeln!(json, "  \"latency_ratio\": {latency_ratio:.3},");
    let _ = writeln!(json, "  \"budget_bytes\": {budget},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"arena\": \"{}\", \"peak_bytes\": {}, \"arena_bytes\": {}, \"seconds\": {:.6}}}",
            r.name, r.peak_bytes, r.arena_bytes, r.seconds
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let path = if smoke {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_memory.smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_memory.json")
    };
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("wrote {}", path.display());
}
