//! Quantised-kernel benchmark: the packed 2-bit ternary GEMM engine
//! against the f32 packed engine on the three largest TTQ-quantised
//! VGG-16 convolutions (the conv5 trio: 512→512, 3×3, 2×2 spatial at
//! CIFAR scale — 2.36 M weights each), emitting `BENCH_quant.json` at
//! the repository root.
//!
//! Each layer is ternarised at the paper's Table III VGG operating
//! point (TTQ threshold 0.09) and timed through `Conv2d::forward` both
//! ways, so the comparison includes everything the serving path pays:
//! im2col, packing, the kernel, and the bias/activation epilogue. The
//! ternary path must win ≥1.5× single-thread on every layer (asserted
//! outside smoke mode): it streams 16× less weight traffic and its
//! transposed lowering pads the 4-column output to 6 rows instead of
//! 16 columns.
//!
//! Alongside GFLOP/s the report carries the model-level price of the
//! speedup: the calibrated top-1 delta at the same operating point
//! (`compress::accuracy`, Fig. 3c), so the JSON answers "how much
//! faster *and* how much accuracy" in one place.
//!
//! Run modes:
//!   cargo bench -p cnn-stack-bench --bench quant       # full measurement
//!   QUANT_BENCH_SMOKE=1 cargo bench ... --bench quant  # tiny shapes, one
//!       iteration, writes to target/BENCH_quant.smoke.json (CI check)

use cnn_stack_compress::accuracy::{AccuracyModel, Technique};
use cnn_stack_compress::ttq::ternarise_tensor;
use cnn_stack_models::ModelKind;
use cnn_stack_nn::{Conv2d, ConvAlgorithm, ExecConfig, Layer, Phase, WeightFormat};
use cnn_stack_tensor::{GemmAlgorithm, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

/// The paper's Table III TTQ operating point for VGG-16.
const TTQ_THRESHOLD: f64 = 0.09;

struct LayerCase {
    name: &'static str,
    in_c: usize,
    out_c: usize,
    spatial: usize,
    seed: u64,
}

/// Builds one conv5-trio layer, ternarised at the operating point.
/// Deterministic in `seed`, so the f32 and quantised runs see identical
/// weights.
fn build_conv(case: &LayerCase, quantised: bool) -> Conv2d {
    let mut conv = Conv2d::new(case.in_c, case.out_c, 3, 1, 1, case.seed);
    ternarise_tensor(&mut conv.weight_mut().value, TTQ_THRESHOLD);
    if quantised {
        conv.set_format(WeightFormat::Ternary);
    }
    conv
}

/// Median seconds per `forward` call after one warm-up.
fn time_forward(conv: &mut Conv2d, input: &Tensor, cfg: &ExecConfig, iters: usize) -> f64 {
    conv.prepare(cfg);
    let _ = conv.forward(input, Phase::Eval, cfg);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let out = conv.forward(input, Phase::Eval, cfg);
        samples.push(t.elapsed().as_secs_f64());
        assert!(
            out.data()[0].is_finite(),
            "benchmark output went non-finite"
        );
    }
    samples.sort_by(|x, y| x.partial_cmp(y).expect("timings are finite"));
    samples[samples.len() / 2]
}

struct Measurement {
    name: &'static str,
    macs: usize,
    f32_seconds: f64,
    ternary_seconds: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::var("QUANT_BENCH_SMOKE").is_ok();
    let iters = if smoke { 1 } else { 31 };
    let cases: Vec<LayerCase> = if smoke {
        vec![LayerCase {
            name: "smoke-conv(64->64)@4x4",
            in_c: 64,
            out_c: 64,
            spatial: 4,
            seed: 5,
        }]
    } else {
        // VGG-16's three largest TTQ'd convolutions at CIFAR scale: the
        // conv5 trio, 512→512 3×3 on a 2×2 plane (2.36 M weights each).
        vec![
            LayerCase {
                name: "vgg16-conv5_1(512->512)@2x2",
                in_c: 512,
                out_c: 512,
                spatial: 2,
                seed: 51,
            },
            LayerCase {
                name: "vgg16-conv5_2(512->512)@2x2",
                in_c: 512,
                out_c: 512,
                spatial: 2,
                seed: 52,
            },
            LayerCase {
                name: "vgg16-conv5_3(512->512)@2x2",
                in_c: 512,
                out_c: 512,
                spatial: 2,
                seed: 53,
            },
        ]
    };

    let f32_cfg = ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        gemm_algo: GemmAlgorithm::Packed,
        ..ExecConfig::serial()
    };
    let ternary_cfg = ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        gemm_algo: GemmAlgorithm::TernaryPacked,
        ..ExecConfig::serial()
    };

    println!(
        "quant bench: TTQ threshold {TTQ_THRESHOLD}, single thread{}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut results: Vec<Measurement> = Vec::new();
    for case in &cases {
        let input = Tensor::from_fn([1, case.in_c, case.spatial, case.spatial], |i| {
            ((i % 31) as f32 - 15.0) * 0.07
        });

        let mut f32_conv = build_conv(case, false);
        let mut tern_conv = build_conv(case, true);

        // The two lowerings must agree to the bit before either is
        // timed — the quantised path is value-preserving by contract.
        let want = f32_conv.forward(&input, Phase::Eval, &f32_cfg);
        let got = tern_conv.forward(&input, Phase::Eval, &ternary_cfg);
        assert_eq!(
            want.data(),
            got.data(),
            "{}: ternary path diverged from f32",
            case.name
        );

        let f32_seconds = time_forward(&mut f32_conv, &input, &f32_cfg, iters);
        let ternary_seconds = time_forward(&mut tern_conv, &input, &ternary_cfg, iters);
        let macs = case.out_c * case.in_c * 9 * case.spatial * case.spatial;
        let speedup = f32_seconds / ternary_seconds;
        println!(
            "  {:<28} f32 {:>9.6}s ({:>6.2} GFLOP/s)  ternary {:>9.6}s ({:>6.2} GFLOP/s)  {speedup:.2}x",
            case.name,
            f32_seconds,
            2.0 * macs as f64 / f32_seconds / 1e9,
            ternary_seconds,
            2.0 * macs as f64 / ternary_seconds / 1e9,
        );
        results.push(Measurement {
            name: case.name,
            macs,
            f32_seconds,
            ternary_seconds,
            speedup,
        });
    }

    if !smoke {
        for r in &results {
            assert!(
                r.speedup >= 1.5,
                "{}: ternary packed GEMM must beat f32 packed >= 1.5x single-thread, got {:.2}x",
                r.name,
                r.speedup
            );
        }
    }

    // The accuracy side of the trade: calibrated top-1 at the same TTQ
    // operating point, versus the uncompressed baseline (Fig. 3c).
    let kind = ModelKind::Vgg16;
    let baseline = AccuracyModel::baseline(kind);
    let quantised = AccuracyModel::accuracy(kind, Technique::TernaryQuantisation, TTQ_THRESHOLD);
    let sparsity = AccuracyModel::ttq_sparsity(kind, TTQ_THRESHOLD);
    println!(
        "accuracy: baseline {baseline:.2}% -> ttq {quantised:.2}% (delta {:.2} pp, {sparsity:.1}% weights zeroed)",
        quantised - baseline
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"VGG-16 conv5 trio (512x512x3x3 @ 2x2), TTQ threshold {TTQ_THRESHOLD}, single thread\","
    );
    let _ = writeln!(
        json,
        "  \"note\": \"median of {iters} Conv2d::forward passes per engine (im2col + pack + kernel + epilogue); ternary output asserted bit-identical to f32 before timing\","
    );
    let _ = writeln!(json, "  \"ttq_threshold\": {TTQ_THRESHOLD},");
    let _ = writeln!(json, "  \"top1_baseline_pct\": {baseline:.2},");
    let _ = writeln!(json, "  \"top1_quantised_pct\": {quantised:.2},");
    let _ = writeln!(json, "  \"top1_delta_pp\": {:.2},", quantised - baseline);
    let _ = writeln!(json, "  \"ttq_sparsity_pct\": {sparsity:.2},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"layer\": \"{}\", \"f32_seconds\": {:.6}, \"f32_gflops\": {:.2}, \"ternary_seconds\": {:.6}, \"ternary_gflops\": {:.2}, \"speedup\": {:.3}}}",
            r.name,
            r.f32_seconds,
            2.0 * r.macs as f64 / r.f32_seconds / 1e9,
            r.ternary_seconds,
            2.0 * r.macs as f64 / r.ternary_seconds / 1e9,
            r.speedup
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let path = if smoke {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_quant.smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_quant.json")
    };
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("wrote {}", path.display());
}
