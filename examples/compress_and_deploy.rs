//! The full across-stack story in one program: take a trained network,
//! apply each of the paper's three compression techniques *for real*
//! (magnitude masks, channel surgery, ternarisation), then walk the
//! result down the stack — data format, systems technique, hardware —
//! and compare what actually matters: time, memory, and accuracy.
//!
//! ```bash
//! cargo run --release --example compress_and_deploy
//! ```

use cnn_stack::compress::{magnitude, ttq, FisherPruner};
use cnn_stack::dataset::{DatasetConfig, SyntheticCifar};
use cnn_stack::hwsim::{network_time, odroid_xu4, SimConfig};
use cnn_stack::nn::memory::network_memory;
use cnn_stack::nn::network::set_network_format;
use cnn_stack::nn::train::{evaluate, train_batch};
use cnn_stack::nn::{ExecConfig, Phase, Sgd, WeightFormat};
use cnn_stack::tensor::ops;

fn main() {
    let data = SyntheticCifar::new(DatasetConfig::tiny(7));
    let exec = ExecConfig::default();
    let (test_images, test_labels) = data.test_set();
    let input_shape = [1usize, 3, 32, 32];
    let platform = odroid_xu4();

    // --- Stack layer 1: train a base model (short schedule). ---------
    let mut base = cnn_stack::models::vgg16_width(10, 0.125);
    let mut sgd = Sgd::new(0.05).momentum(0.9);
    for b in 0..40 {
        let (images, labels) = data.train_batch(b, 32);
        train_batch(&mut base.network, &mut sgd, &images, &labels, &exec);
    }
    let base_acc = evaluate(&mut base.network, &test_images, &test_labels, &exec);
    println!(
        "trained base model: {:.1}% synthetic test accuracy\n",
        base_acc * 100.0
    );

    let report = |label: &str, net: &mut cnn_stack::nn::Network, acc: f64| {
        let descs = net.descriptors(&input_shape);
        let (t, _) = network_time(&platform, &descs, &SimConfig::cpu(8));
        let mem = network_memory(&descs, false);
        println!(
            "{label:<18} acc {:>5.1}%  sparsity {:>5.1}%  Odroid@8t {:>8.1} ms  mem {:>6.2} MB",
            acc * 100.0,
            net.weight_sparsity(&input_shape) * 100.0,
            t * 1e3,
            mem.total_mb(),
        );
    };
    report("plain", &mut base.network, base_acc);

    // --- Technique 1: Deep Compression weight pruning + fine-tune. ---
    let mut wp = cnn_stack::models::vgg16_width(10, 0.125);
    clone_weights(&mut wp.network, &mut base.network);
    magnitude::prune_network(&mut wp.network, 0.8);
    let mut sgd = Sgd::new(0.01).momentum(0.9);
    for b in 0..20 {
        let (images, labels) = data.train_batch(b, 32);
        train_batch(&mut wp.network, &mut sgd, &images, &labels, &exec);
    }
    set_network_format(&mut wp.network, WeightFormat::Csr);
    let acc = evaluate(&mut wp.network, &test_images, &test_labels, &exec);
    report("weight-pruned 80%", &mut wp.network, acc);

    // --- Technique 2: Fisher channel pruning + fine-tune. ------------
    let mut cp = cnn_stack::models::vgg16_width(10, 0.125);
    clone_weights(&mut cp.network, &mut base.network);
    let mut pruner = FisherPruner::new(&cp.network, &cp.plan, 1e-9);
    let mut sgd = Sgd::new(0.01).momentum(0.9);
    let to_prune = cp.plan.total_channels(&cp.network) / 3;
    for step in 0..to_prune {
        // Fine-tune one batch, accumulating Fisher saliency.
        let (images, labels) = data.train_batch(step, 32);
        cp.network.zero_grad();
        let logits = cp.network.forward(&images, Phase::Train, &exec);
        let (_, dlogits) = ops::cross_entropy_with_grad(&logits, &labels);
        cp.network.backward(&dlogits);
        pruner.accumulate(&mut cp.network, &cp.plan);
        sgd.step(&mut cp.network);
        pruner.prune_one(&mut cp.network, &cp.plan, &input_shape);
    }
    let acc = evaluate(&mut cp.network, &test_images, &test_labels, &exec);
    report("channel-pruned", &mut cp.network, acc);
    println!(
        "                   ({} channels removed by Fisher saliency)",
        pruner.pruned_channels()
    );

    // --- Technique 3: ternary quantisation + fine-tune-by-projection. -
    let mut q = cnn_stack::models::vgg16_width(10, 0.125);
    clone_weights(&mut q.network, &mut base.network);
    ttq::ttq_quantise(&mut q.network, 0.09);
    let mut sgd = Sgd::new(0.005).momentum(0.9);
    for b in 0..10 {
        let (images, labels) = data.train_batch(b, 32);
        train_batch(&mut q.network, &mut sgd, &images, &labels, &exec);
        ttq::reproject(&mut q.network, 0.09);
    }
    set_network_format(&mut q.network, WeightFormat::Csr);
    let acc = evaluate(&mut q.network, &test_images, &test_labels, &exec);
    report("ternary (t=0.09)", &mut q.network, acc);

    println!(
        "\nThe paper's across-stack lesson, visible above: only channel pruning\n\
         converts compression into both time and memory wins; CSR formats cost\n\
         memory at 3x3 filter sizes even at high sparsity (SV-D, SVI)."
    );
}

/// Copies parameter values between two identically shaped networks.
fn clone_weights(dst: &mut cnn_stack::nn::Network, src: &mut cnn_stack::nn::Network) {
    let src_params: Vec<_> = src
        .params_mut()
        .into_iter()
        .map(|p| p.value.clone())
        .collect();
    for (d, s) in dst.params_mut().into_iter().zip(src_params) {
        d.value = s;
    }
}
