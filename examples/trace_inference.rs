//! Traces one VGG-16 inference end to end and dumps the result in both
//! exporter formats:
//!
//! * `target/vgg16_trace.json` — Chrome `trace_event` JSON. Open it in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: one
//!   row per logical track, a `run` span covering the whole forward
//!   pass, and one child span per fused plan step named like
//!   `conv3x3(3->64)/s1 + bn + relu [im2col-packed] [span 3]
//!   Im2col/Packed +relu` — the fusion span and the chosen
//!   convolution/GEMM algorithms are right there in the timeline.
//! * stdout — the deterministic text trace (what the golden tests pin)
//!   plus the metrics registry rendering: GEMM FLOPs, im2col bytes
//!   lowered, per-step latency histogram and friends.
//!
//! ```bash
//! cargo run --release --example trace_inference
//! ```

use cnn_stack::obs::{chrome_trace_json, text_trace};
use cnn_stack::prelude::*;

fn main() {
    let mut model = ModelKind::Vgg16.build_width(10, 0.5);
    let cfg = ExecConfig {
        observer: ObsLevel::Trace,
        ..ExecConfig::serial()
    };
    let plan = model
        .compile_plan(1, &cfg, &PlanCompiler::standard())
        .expect("VGG-16 compiles at CIFAR shape");
    let mut session = InferenceSession::with_guard(&mut model.network, plan, GuardConfig::Off)
        .expect("plan matches the network");

    let input = Tensor::from_fn([1, 3, 32, 32], |i| ((i * 13 % 31) as f32) * 0.1 - 1.5);
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
    session.run_into(&input, &mut out).expect("clean inference");

    let observer = session
        .observer()
        .expect("ObsLevel::Trace attaches an observer");

    let json = chrome_trace_json(observer);
    let path = std::path::Path::new("target").join("vgg16_trace.json");
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write(&path, &json).expect("write trace JSON");

    println!("=== text trace (deterministic golden format) ===");
    print!("{}", text_trace(observer));
    println!();
    println!("=== metrics ===");
    print!("{}", observer.snapshot().render());
    println!();
    println!(
        "Chrome trace written to {} ({} events, {} dropped) — load it in \
         https://ui.perfetto.dev or chrome://tracing",
        path.display(),
        observer.events().len(),
        observer.dropped()
    );
}
