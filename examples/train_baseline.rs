//! The paper's §V-A training pipeline, end to end, at laptop scale:
//! SGD with the stepped learning rate, pad-2 + random-crop augmentation,
//! cross-entropy loss — on the synthetic CIFAR-10 substitute.
//!
//! The paper trains the full-width models for 150 GPU-epochs to reach
//! 92.20/94.32/90.47 %; this example demonstrates the identical pipeline
//! on a width-scaled model and a small synthetic split, reaching high
//! accuracy in under a minute on one CPU core.
//!
//! ```bash
//! cargo run --release --example train_baseline
//! ```

use cnn_stack::dataset::{pad_and_crop, DatasetConfig, SyntheticCifar};
use cnn_stack::models::vgg16_width;
use cnn_stack::nn::train::{evaluate, train_batch};
use cnn_stack::nn::{ExecConfig, LrSchedule, Sgd};

fn main() {
    let data = SyntheticCifar::new(DatasetConfig::tiny(42));
    let mut model = vgg16_width(10, 0.125);
    println!(
        "training {} (width 0.125) on {} synthetic images",
        model.kind.name(),
        data.train_len()
    );

    // The paper's optimiser: SGD, momentum 0.9, weight decay 5e-4, LR
    // starting at 0.1 and stepping down by 10x (we step every 4 epochs at
    // this scale instead of every 50).
    let schedule = LrSchedule::Stepped {
        initial: 0.05,
        factor: 0.1,
        every: 4,
    };
    let mut sgd = Sgd::new(schedule.at_epoch(0))
        .momentum(0.9)
        .weight_decay(5e-4);
    let exec = ExecConfig::default();

    let batch_size = 32;
    let batches_per_epoch = data.train_len() / batch_size;
    let (test_images, test_labels) = data.test_set();

    let initial_acc = evaluate(&mut model.network, &test_images, &test_labels, &exec);
    println!(
        "epoch  0: test accuracy {:.1}% (untrained)",
        initial_acc * 100.0
    );

    for epoch in 0..6 {
        sgd.set_lr(schedule.at_epoch(epoch));
        let mut loss_sum = 0.0;
        for b in 0..batches_per_epoch {
            let (images, labels) = data.train_batch(b, batch_size);
            // The paper's augmentation: pad 2 pixels, random 32x32 crop.
            let augmented = pad_and_crop(&images, 2, (epoch * 1000 + b) as u64);
            loss_sum += train_batch(&mut model.network, &mut sgd, &augmented, &labels, &exec);
        }
        let acc = evaluate(&mut model.network, &test_images, &test_labels, &exec);
        println!(
            "epoch {:>2}: mean loss {:.3}, test accuracy {:.1}%  (lr {})",
            epoch + 1,
            loss_sum / batches_per_epoch as f32,
            acc * 100.0,
            sgd.lr(),
        );
    }

    let final_acc = evaluate(&mut model.network, &test_images, &test_labels, &exec);
    assert!(
        final_acc > initial_acc,
        "training failed to improve accuracy"
    );
    println!(
        "\npaper full-scale baselines (SV-A): VGG-16 92.20%, ResNet-18 94.32%, MobileNet 90.47%"
    );
}
