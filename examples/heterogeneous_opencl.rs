//! The systems layer hands-on: run a convolution on the simulated
//! Mali-T628 OpenCL device under different work-group/vector tunings,
//! compare the CLBlast GEMM route, and auto-tune the CPU GEMM with the
//! CLTune-style search.
//!
//! ```bash
//! cargo run --release --example heterogeneous_opencl
//! ```

use cnn_stack::hwsim::{odroid_xu4, tune_gemm, OclDevice};
use cnn_stack::tensor::{im2col, Conv2dGeometry, Tensor};

fn main() {
    let gpu = odroid_xu4().gpu.expect("the Odroid has a Mali GPU");
    let geom = Conv2dGeometry::new(64, 32, 32, 3, 3, 1, 1);
    let image: Vec<f32> = (0..64 * 1024).map(|i| (i as f32 * 0.013).sin()).collect();
    let weights = Tensor::from_fn([64, geom.patch_len()], |i| (i as f32 * 0.07).cos());

    // Hand-tuning sweep: the paper settled on 4x4 work-groups with
    // 16-wide vectors (SV-F); the cost model peaks exactly there.
    println!("hand-tuned OpenCL kernel: work-group / vector-width sweep");
    let mut best: Option<((usize, usize), usize, f64)> = None;
    for wg in [(1usize, 1usize), (2, 2), (4, 4), (8, 8), (16, 16)] {
        for vw in [1usize, 4, 16] {
            let mut dev = OclDevice::new(gpu.clone());
            let run = dev.run_conv2d(&image, &weights, &geom, wg, vw);
            println!(
                "  wg {:>2}x{:<2} vec {:>2}: {:>7.2} ms (simulated)",
                wg.0,
                wg.1,
                vw,
                run.simulated_s * 1e3
            );
            if best.is_none_or(|(.., b)| run.simulated_s < b) {
                best = Some((wg, vw, run.simulated_s));
            }
        }
    }
    let (wg, vw, t) = best.expect("sweep is non-empty");
    println!(
        "  -> best: {}x{} work-group, {vw}-wide vectors ({:.2} ms) — the paper's hand-tuned pick\n",
        wg.0,
        wg.1,
        t * 1e3
    );

    // CLBlast route for the same convolution: im2col on host, GEMM call.
    let mut dev = OclDevice::new(gpu.clone());
    let cols = im2col(&image, &geom);
    let a = dev.write_buffer(weights.data());
    let b = dev.write_buffer(cols.data());
    let before = dev.elapsed_s();
    let _out = dev.launch_gemm_clblast(a, b, 64, geom.patch_len(), geom.out_positions());
    println!(
        "CLBlast im2col+GEMM for the same layer: {:.2} ms (simulated)\n\
         — the fixed call overhead and small-matrix inefficiency that make\n\
         CLBlast lose at 32x32 in Fig. 6.\n",
        (dev.elapsed_s() - before) * 1e3
    );

    // And the CLTune mechanism on the host GEMM, with real measurements.
    println!("CLTune-style auto-tuning of the CPU tiled GEMM (real measurements):");
    let result = tune_gemm(64, geom.patch_len(), geom.out_positions(), 8, 3, 1);
    for (cfg, secs) in &result.evaluated {
        println!("  {cfg:?}: {:.2} ms", secs * 1e3);
    }
    println!(
        "  -> best {:?} at {:.2} ms",
        result.best,
        result.best_seconds * 1e3
    );
}
