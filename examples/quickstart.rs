//! Quickstart: build one of the paper's models, run inference on
//! CIFAR-10-shaped data, inspect the workload the way the paper's
//! characterisation does (MACs, parameters, per-layer timing) — then
//! serve the same model under concurrent traffic through the serving
//! layer.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cnn_stack::dataset::{DatasetConfig, SyntheticCifar};
use cnn_stack::prelude::*;

fn main() {
    // A width-scaled ResNet-18 so the example runs in seconds; pass 1.0
    // for the paper's full-size model.
    let mut model = resnet18_width(10, 0.25);
    println!("model: {} (width 0.25)", model.kind.name());

    let input_shape = [8usize, 3, 32, 32];
    println!("parameters: {}", model.network.num_params());
    println!("MACs/batch8: {}", model.network.macs(&input_shape));

    // CIFAR-10-shaped synthetic data (geometry-identical substitute; see
    // DESIGN.md section 5).
    let data = SyntheticCifar::new(DatasetConfig::tiny(0));
    let (images, labels) = data.test_batch(0, 8);

    // Compile the network once into an inference plan (shapes, conv
    // algorithm choices, arena size), then execute through the session:
    // repeat runs reuse the same activation arena with no per-layer
    // allocation, and the session keeps per-layer counters.
    let exec = ExecConfig::default();
    let plan = InferencePlan::compile(&model.network, &input_shape, &exec)
        .expect("the model accepts CIFAR-shaped input");
    println!(
        "plan: {} steps, {:.1} KiB activation arena",
        plan.steps().len(),
        (2 * plan.buf_elems() + plan.scratch_elems()) as f64 * 4.0 / 1024.0
    );
    let mut session =
        InferenceSession::new(&mut model.network, plan).expect("plan matches this network");
    let logits = session.run(&images).expect("input matches the plan shape");
    let preds = ops::argmax_rows(&logits);
    println!("\npredictions (untrained net): {preds:?}");
    println!("labels:                      {labels:?}");

    println!("\nfive most expensive layers this run:");
    let times = session.profile().mean_layer_times();
    let mut ranked: Vec<_> = times.iter().collect();
    ranked.sort_by_key(|(_, t)| std::cmp::Reverse(*t));
    for (name, t) in ranked.iter().take(5) {
        println!("  {name:<28} {:>8.2?}", t);
    }

    let total = session.profile().total_time();
    println!("\ntotal forward time (host, 1 thread): {total:.2?}");

    // --- Serving the same architecture under traffic ----------------
    // One ServeConfig gathers the serving knobs (batching, queue,
    // deadlines, guard, threads); the server pre-warms a ladder of
    // sessions sharing one set of prepacked weight panels, then
    // coalesces concurrent requests into batched runs.
    let cfg = ServeConfig::builder([3, 32, 32])
        .max_batch(4)
        .build()
        .expect("serving config is valid");
    let server =
        Server::start(cfg, || resnet18_width(10, 0.25).network).expect("serving sessions compile");

    let elems = 3 * 32 * 32;
    let tickets: Vec<Ticket> = (0..8)
        .map(|i| {
            let image = images.data()[i * elems..(i + 1) * elems].to_vec();
            server
                .submit(Tensor::from_vec(vec![3, 32, 32], image))
                .expect("request shape matches the server")
        })
        .collect();
    println!("\nserving 8 concurrent requests (max_batch 4):");
    for ticket in tickets {
        match ticket.wait().outcome {
            Outcome::Served(s) => println!(
                "  request served in {:>8.2?} (co-batched with {} other(s))",
                s.latency,
                s.batch_size - 1
            ),
            other => println!("  request not served: {other:?}"),
        }
    }
    let health = server.shutdown();
    println!(
        "server health: {} served / {} submitted, {} shed",
        health.served,
        health.submitted,
        health.shed_queue_full + health.shed_deadline
    );

    println!(
        "\nNext: examples/train_baseline.rs trains this model; \
              examples/compress_and_deploy.rs compresses it."
    );
}
