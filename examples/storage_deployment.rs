//! The deployment endgame: take a trained, compressed model all the way
//! to a shippable artifact — batch-norm folding, parameter
//! serialisation, and the Deep Compression storage pipeline
//! (prune → ternarise → Huffman) with bit-packed ternary as the
//! on-device format.
//!
//! ```bash
//! cargo run --release --example storage_deployment
//! ```

use cnn_stack::compress::packed::PackedTernaryMatrix;
use cnn_stack::compress::{code_ternary_network, magnitude, ttq};
use cnn_stack::models::vgg16_width;
use cnn_stack::nn::{
    fold_batchnorm, load_params, save_params, strip_identity_batchnorms, Conv2d, ExecConfig, Phase,
};
use cnn_stack::tensor::Tensor;

fn main() {
    let mut model = vgg16_width(10, 0.25);
    let exec = ExecConfig::default();
    let probe = Tensor::from_fn([1, 3, 32, 32], |i| (i as f32 * 0.001).sin());

    // Warm the batch statistics (stands in for training).
    for seed in 0..3u64 {
        let x = Tensor::from_fn([4, 3, 32, 32], |i| {
            ((i as u64 * 31 + seed) % 23) as f32 * 0.08
        });
        let _ = model.network.forward(&x, Phase::Train, &exec);
    }
    let reference = model.network.forward(&probe, Phase::Eval, &exec);

    // Step 1: deployment-time graph surgery — fold + strip batch norms.
    let folded = fold_batchnorm(&mut model.network);
    let stripped = strip_identity_batchnorms(&mut model.network);
    let after = model.network.forward(&probe, Phase::Eval, &exec);
    println!(
        "step 1: folded {folded} batch norms, stripped {stripped}; \
         output drift {:.2e}",
        max_abs_diff(&reference, &after)
    );

    // Step 2: serialise the deployable parameters.
    let blob = save_params(&mut model.network);
    println!(
        "step 2: serialised {} parameters to {:.2} MB",
        model.network.num_params(),
        blob.len() as f64 / 1e6
    );
    let mut reloaded = vgg16_width(10, 0.25);
    fold_batchnorm(&mut reloaded.network);
    strip_identity_batchnorms(&mut reloaded.network);
    load_params(&mut reloaded.network, &blob).expect("same architecture");
    let reload_out = reloaded.network.forward(&probe, Phase::Eval, &exec);
    assert!(after.allclose(&reload_out, 0.0), "reload must be exact");
    println!("        reloaded blob reproduces outputs bit-exactly");

    // Step 3: the Deep Compression storage pipeline on the weights.
    magnitude::prune_network(&mut model.network, 0.7654); // Table III VGG
    ttq::ttq_quantise(&mut model.network, 0.0);
    let report = code_ternary_network(&mut model.network);
    println!(
        "step 3: prune+ternarise+Huffman: {:.2} MB -> {:.3} MB \
         ({:.2} bits/weight, {:.0}x)",
        report.dense_bytes as f64 / 1e6,
        report.coded_bytes as f64 / 1e6,
        report.bits_per_weight,
        report.dense_bytes as f64 / report.coded_bytes as f64,
    );

    // Step 4: the on-device format — 2-bit packed ternary per layer.
    let mut packed_bytes = 0usize;
    let mut dense_bytes = 0usize;
    for i in 0..model.network.len() {
        if let Some(conv) = model.network.layers()[i].as_any().downcast_ref::<Conv2d>() {
            let m = conv.weight_matrix();
            let packed = PackedTernaryMatrix::from_dense_ternary(&m)
                .expect("network is ternary after step 3");
            packed_bytes += packed.storage_bytes();
            dense_bytes += m.len() * 4;
        }
    }
    println!(
        "step 4: packed 2-bit conv weights: {:.2} MB -> {:.3} MB ({:.1}x)",
        dense_bytes as f64 / 1e6,
        packed_bytes as f64 / 1e6,
        dense_bytes as f64 / packed_bytes as f64,
    );
    println!(
        "\nThe across-stack caveat (Tables IV/VI): these storage wins do not\n\
         translate to runtime memory or speed on unmodified kernels — that\n\
         requires the layer-3/4 co-design the paper argues for."
    );
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}
