//! Deployment-constraint explorer: given constraints on accuracy,
//! inference time and memory, search the whole stack configuration space
//! (model x technique x operating point x threads x platform) and report
//! the best feasible configurations — the decision procedure the paper's
//! Pareto curves are meant to instruct.
//!
//! ```bash
//! cargo run --release --example pareto_explorer
//! ```

use cnn_stack::compress::Technique;
use cnn_stack::stack::pareto::{detect_elbow, pareto_curve};
use cnn_stack::stack::{evaluate, CompressionChoice, PlatformChoice, StackConfig};
use cnn_stack_models::ModelKind;

fn main() {
    // Part 1: the Fig. 3 elbows, as a deployment shortlist.
    println!("Pareto elbows (within 1% of peak accuracy):");
    for kind in ModelKind::all() {
        for technique in Technique::all() {
            let curve = pareto_curve(kind, technique, 201);
            let elbow = detect_elbow(&curve, 1.0);
            println!(
                "  {:<10} {:<16} x = {:>6.2}  accuracy {:.2}%",
                kind.name(),
                technique.name(),
                elbow.x,
                elbow.accuracy_pct
            );
        }
    }

    // Part 2: constraint solving. The embedded brief: accuracy >= 90%,
    // inference <= 500 ms on the Odroid, memory <= 32 MB.
    let (min_acc, max_time_s, max_mem_mb) = (90.0, 0.5, 32.0);
    println!(
        "\nSearching configurations with accuracy >= {min_acc}%, \
         time <= {:.0} ms on Odroid-XU4, memory <= {max_mem_mb} MB:",
        max_time_s * 1e3
    );

    let mut feasible: Vec<(String, f64, f64, f64)> = Vec::new();
    for kind in ModelKind::all() {
        let mut candidates: Vec<(String, CompressionChoice)> =
            vec![("plain".into(), CompressionChoice::Plain)];
        for step in 1..=6 {
            let s = 50.0 + step as f64 * 7.0;
            candidates.push((
                format!("wp {s:.0}%"),
                CompressionChoice::WeightPruning { sparsity_pct: s },
            ));
            let c = 60.0 + step as f64 * 6.0;
            candidates.push((
                format!("cp {c:.0}%"),
                CompressionChoice::ChannelPruning { compression_pct: c },
            ));
        }
        candidates.push((
            "ttq 0.09".into(),
            CompressionChoice::TernaryQuantisation { threshold: 0.09 },
        ));
        for (label, choice) in candidates {
            for threads in [1usize, 4, 8] {
                let cfg = StackConfig::plain(kind, PlatformChoice::OdroidXu4)
                    .compress(choice)
                    .threads(threads);
                let cell = evaluate(&cfg);
                if cell.accuracy_pct >= min_acc
                    && cell.modelled_s <= max_time_s
                    && cell.memory_mb <= max_mem_mb
                {
                    feasible.push((
                        format!("{} {label} @{threads}t", kind.name()),
                        cell.modelled_s,
                        cell.memory_mb,
                        cell.accuracy_pct,
                    ));
                }
            }
        }
    }
    feasible.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
    if feasible.is_empty() {
        println!("  no feasible configuration — relax a constraint");
    }
    for (label, time_s, mem, acc) in feasible.iter().take(8) {
        println!(
            "  {label:<28} {:>7.1} ms  {mem:>6.2} MB  {acc:.2}%",
            time_s * 1e3
        );
    }
    println!(
        "\nChannel-pruned configurations dominate the feasible set — compression\n\
         by architecture surgery beats both sparse formats and the uncompressed\n\
         hand-designed baseline, the paper's SV-E headline. Try tightening the\n\
         constraints to watch the feasible set collapse onto channel pruning."
    );
}
