//! Prints the pass-compiled execution plan — fusion spans and per-layer
//! algorithm choices — for the paper's three models, plain and with the
//! large layers magnitude-pruned to 99.5% sparsity. This regenerates the
//! per-layer selection table in EXPERIMENTS.md (the paper's Fig. 7
//! "which algorithm wins where" analogue).
//!
//! ```bash
//! cargo run --release --example plan_compiler
//! ```

use cnn_stack::models::ModelKind;
use cnn_stack::nn::{Conv2d, ExecConfig, Linear, PlanCompiler};

/// Magnitude-prunes a weight slice in place to the target sparsity.
fn prune_to(data: &mut [f32], sparsity: f64) {
    let mut mags: Vec<f32> = data.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
    let cut = mags[((data.len() as f64 * sparsity) as usize).min(data.len() - 1)];
    for v in data.iter_mut() {
        if v.abs() <= cut {
            *v = 0.0;
        }
    }
}

fn main() {
    for kind in ModelKind::all() {
        for pruned in [false, true] {
            let mut model = kind.build(10);
            if pruned {
                // The weight-pruning deployment regime: every layer big
                // enough to matter is pushed past the CSR crossover.
                for layer in model.network.layers_mut() {
                    if let Some(conv) = layer.as_any_mut().downcast_mut::<Conv2d>() {
                        if conv.weight().value.len() >= 32_768 {
                            prune_to(conv.weight_mut().value.data_mut(), 0.995);
                        }
                    } else if let Some(fc) = layer.as_any_mut().downcast_mut::<Linear>() {
                        if fc.weight().value.len() >= 32_768 {
                            prune_to(fc.weight_mut().value.data_mut(), 0.995);
                        }
                    }
                }
            }
            let layers = model.network.len();
            let plan = model
                .compile_plan(1, &ExecConfig::serial(), &PlanCompiler::standard())
                .expect("plan compiles");
            println!(
                "## {} ({}): {} layers -> {} steps",
                kind.name(),
                if pruned { "pruned 99.5%" } else { "plain" },
                layers,
                plan.steps().len()
            );
            for s in plan.steps() {
                println!(
                    "  {:<58} span {} {:>9.3} MMACs",
                    s.name,
                    s.span,
                    s.macs as f64 / 1e6
                );
            }
            println!();
        }
    }
}
