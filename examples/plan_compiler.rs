//! Prints the pass-compiled execution plan — fusion spans and per-layer
//! algorithm choices — for the paper's three models, plain and with the
//! large layers magnitude-pruned to 99.5% sparsity. This regenerates the
//! per-layer selection table in EXPERIMENTS.md (the paper's Fig. 7
//! "which algorithm wins where" analogue), then sweeps a shrinking
//! memory budget over batch-8 VGG-16 to show the planner trading speed
//! for footprint ("fastest plan under N MB").
//!
//! ```bash
//! cargo run --release --example plan_compiler
//! ```

use cnn_stack::models::ModelKind;
use cnn_stack::nn::{Conv2d, Error, ExecConfig, Linear, PlanCompiler, PlanError};

/// Magnitude-prunes a weight slice in place to the target sparsity.
fn prune_to(data: &mut [f32], sparsity: f64) {
    let mut mags: Vec<f32> = data.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
    let cut = mags[((data.len() as f64 * sparsity) as usize).min(data.len() - 1)];
    for v in data.iter_mut() {
        if v.abs() <= cut {
            *v = 0.0;
        }
    }
}

fn main() {
    for kind in ModelKind::all() {
        for pruned in [false, true] {
            let mut model = kind.build(10);
            if pruned {
                // The weight-pruning deployment regime: every layer big
                // enough to matter is pushed past the CSR crossover.
                for layer in model.network.layers_mut() {
                    if let Some(conv) = layer.as_any_mut().downcast_mut::<Conv2d>() {
                        if conv.weight().value.len() >= 32_768 {
                            prune_to(conv.weight_mut().value.data_mut(), 0.995);
                        }
                    } else if let Some(fc) = layer.as_any_mut().downcast_mut::<Linear>() {
                        if fc.weight().value.len() >= 32_768 {
                            prune_to(fc.weight_mut().value.data_mut(), 0.995);
                        }
                    }
                }
            }
            let layers = model.network.len();
            let plan = model
                .compile_plan(1, &ExecConfig::serial(), &PlanCompiler::standard())
                .expect("plan compiles");
            println!(
                "## {} ({}): {} layers -> {} steps",
                kind.name(),
                if pruned { "pruned 99.5%" } else { "plain" },
                layers,
                plan.steps().len()
            );
            for s in plan.steps() {
                println!(
                    "  {:<58} span {} {:>9.3} MMACs",
                    s.name,
                    s.span,
                    s.macs as f64 / 1e6
                );
            }
            println!();
        }
    }
    budget_sweep();
}

/// "Fastest plan under N MB" on batch-8 VGG-16: the same model planned
/// under a shrinking activation envelope. The unconstrained plan picks
/// im2col + packed GEMM everywhere; as the budget bites, the solver
/// demotes the widest layers to smaller-workspace algorithms, and an
/// impossible envelope fails with the smallest budget that would work.
fn budget_sweep() {
    println!("## VGG-16 (batch 8) under a memory budget");
    let batch = 8;
    let budgets: [(Option<usize>, &str); 4] = [
        (None, "unbounded"),
        (Some(64 << 20), "64 MB"),
        (Some(16 << 20), "16 MB"),
        (Some(4 << 20), "4 MB"),
    ];
    for (budget, label) in budgets {
        let mut model = ModelKind::Vgg16.build(10);
        let mut builder = ExecConfig::builder();
        if let Some(bytes) = budget {
            builder = builder.plan_budget(bytes);
        }
        let cfg = builder.build().expect("config is valid");
        match model.compile_plan(batch, &cfg, &PlanCompiler::standard()) {
            Ok(plan) => {
                let fp = plan.footprint();
                println!(
                    "  budget {label:>9}: peak {:>6.2} MB (naive ping-pong {:>6.2} MB)",
                    fp.peak_bytes as f64 / (1 << 20) as f64,
                    fp.naive_bytes as f64 / (1 << 20) as f64,
                );
                for s in plan.steps() {
                    // Step names carry the selected algorithm as a
                    // bracketed tag, e.g. "conv1_1 [im2col+packed]".
                    println!("    {}", s.name);
                }
            }
            Err(Error::Plan(PlanError::BudgetInfeasible {
                budget_bytes,
                min_feasible_bytes,
            })) => println!(
                "  budget {label:>9}: infeasible ({:.2} MB asked, {:.2} MB is the floor)",
                budget_bytes as f64 / (1 << 20) as f64,
                min_feasible_bytes as f64 / (1 << 20) as f64,
            ),
            Err(other) => panic!("unexpected compile failure: {other:?}"),
        }
        println!();
    }
}
