//! # cnn-stack
//!
//! A Rust reproduction of *"Characterising Across-Stack Optimisations for
//! Deep Convolutional Neural Networks"* (Turner et al., IEEE IISWC 2018).
//!
//! This facade crate re-exports every subsystem of the workspace so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense NCHW tensors, im2col, GEMM kernels.
//! * [`sparse`] — CSR/CSC formats, sparse kernels, memory accounting.
//! * [`nn`] — layers, forward/backward, SGD training.
//! * [`models`] — VGG-16, ResNet-18, MobileNet for CIFAR-10.
//! * [`dataset`] — synthetic CIFAR-10-shaped data with planted structure.
//! * [`compress`] — weight pruning, Fisher channel pruning, TTQ.
//! * [`parallel`] — OpenMP-style thread pool and loop scheduling.
//! * [`hwsim`] — platform timing models and the simulated OpenCL device.
//! * [`obs`] — metrics registry, span tracer, Chrome-trace export.
//! * [`stack`] — the five-layer Deep Learning Inference Stack itself.
//!
//! ## Quickstart
//!
//! ```
//! use cnn_stack::models::resnet18;
//! use cnn_stack::nn::{ExecConfig, Phase};
//! use cnn_stack::tensor::Tensor;
//!
//! let mut model = resnet18(10);
//! let input = Tensor::zeros([1, 3, 32, 32]);
//! let logits = model.network.forward(&input, Phase::Eval, &ExecConfig::default());
//! assert_eq!(logits.shape().dims(), &[1, 10]);
//! ```

pub use cnn_stack_compress as compress;
pub use cnn_stack_core as stack;
pub use cnn_stack_dataset as dataset;
pub use cnn_stack_hwsim as hwsim;
pub use cnn_stack_models as models;
pub use cnn_stack_nn as nn;
pub use cnn_stack_obs as obs;
pub use cnn_stack_parallel as parallel;
pub use cnn_stack_sparse as sparse;
pub use cnn_stack_tensor as tensor;
