//! # cnn-stack
//!
//! A Rust reproduction of *"Characterising Across-Stack Optimisations for
//! Deep Convolutional Neural Networks"* (Turner et al., IEEE IISWC 2018).
//!
//! This facade crate re-exports every subsystem of the workspace so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense NCHW tensors, im2col, GEMM kernels.
//! * [`sparse`] — CSR/CSC formats, sparse kernels, memory accounting.
//! * [`nn`] — layers, forward/backward, SGD training.
//! * [`models`] — VGG-16, ResNet-18, MobileNet for CIFAR-10.
//! * [`dataset`] — synthetic CIFAR-10-shaped data with planted structure.
//! * [`compress`] — weight pruning, Fisher channel pruning, TTQ.
//! * [`parallel`] — OpenMP-style thread pool and loop scheduling.
//! * [`hwsim`] — platform timing models and the simulated OpenCL device.
//! * [`obs`] — metrics registry, span tracer, Chrome-trace export.
//! * [`serve`] — multi-tenant serving: dynamic batching, session pool,
//!   deadline shedding.
//! * [`stack`] — the five-layer Deep Learning Inference Stack itself.
//!
//! Most programs only need [`prelude`], which curates one coherent
//! surface across those crates — model constructors, the engine types,
//! and the serving layer:
//!
//! ```
//! use cnn_stack::prelude::*;
//!
//! let cfg = ServeConfig::builder([3, 32, 32]).max_batch(4).build().unwrap();
//! let server = Server::start(cfg, || mobilenet_width(10, 0.25).network).unwrap();
//! let ticket = server.submit(Tensor::zeros([3, 32, 32])).unwrap();
//! assert!(matches!(ticket.wait().outcome, Outcome::Served(_)));
//! ```
//!
//! ## Quickstart (engine level)
//!
//! ```
//! use cnn_stack::prelude::*;
//!
//! let mut model = resnet18(10);
//! let input = Tensor::zeros([1, 3, 32, 32]);
//! let logits = model.network.forward(&input, Phase::Eval, &ExecConfig::default());
//! assert_eq!(logits.shape().dims(), &[1, 10]);
//! ```

pub use cnn_stack_compress as compress;
pub use cnn_stack_core as stack;
pub use cnn_stack_dataset as dataset;
pub use cnn_stack_hwsim as hwsim;
pub use cnn_stack_models as models;
pub use cnn_stack_nn as nn;
pub use cnn_stack_obs as obs;
pub use cnn_stack_parallel as parallel;
pub use cnn_stack_serve as serve;
pub use cnn_stack_sparse as sparse;
pub use cnn_stack_tensor as tensor;

/// The curated import surface: everything a program that builds,
/// compiles, runs, or serves one of the paper's models needs, in one
/// `use cnn_stack::prelude::*;`.
///
/// Deeper or rarer items (sparse formats, the hardware simulator,
/// training) stay behind their subsystem modules.
pub mod prelude {
    pub use crate::models::{
        mobilenet, mobilenet_width, resnet18, resnet18_width, vgg16, vgg16_width, Model, ModelKind,
    };
    pub use crate::nn::{
        ArenaStrategy, ConvAlgorithm, ExecConfig, GuardConfig, HealthReport, InferencePlan,
        InferenceSession, Network, Phase, PlanCompiler, PlanError,
    };
    pub use crate::obs::ObsLevel;
    pub use crate::serve::{
        run_open_loop, BreakerPolicy, FailureCause, LoadReport, LoadSpec, Outcome, RetryPolicy,
        ServeConfig, Served, Server, ServerHealth, ShedReason, SupervisionPolicy, Ticket,
    };
    pub use crate::stack::{serve_cell, CellResult, PlatformChoice, StackConfig};
    pub use crate::tensor::{ops, Tensor};
}

// ---------------------------------------------------------------------
// Deprecated shims: the pre-serve import paths. The serving-relevant
// knobs these types scattered (threads, guard level, observer) are
// gathered by `serve::ServeConfig`; for everything else, import through
// `prelude` (or the owning subsystem module).

/// Deprecated root-level alias of [`nn::ExecConfig`].
#[deprecated(
    since = "0.2.0",
    note = "import via `cnn_stack::prelude`; serving-side knobs (threads, observer) now live in `cnn_stack::serve::ServeConfig`"
)]
pub type ExecConfig = nn::ExecConfig;

/// Deprecated root-level alias of [`nn::GuardConfig`].
#[deprecated(
    since = "0.2.0",
    note = "import via `cnn_stack::prelude`; the serving guard level is set on `cnn_stack::serve::ServeConfig::builder`"
)]
pub type GuardConfig = nn::GuardConfig;

/// Deprecated root-level alias of [`obs::ObsLevel`].
#[deprecated(
    since = "0.2.0",
    note = "import via `cnn_stack::prelude`; the serving observer level is set on `cnn_stack::serve::ServeConfig::builder`"
)]
pub type ObsLevel = obs::ObsLevel;

/// Deprecated root-level alias of [`stack::StackConfig`].
#[deprecated(
    since = "0.2.0",
    note = "import via `cnn_stack::prelude`; to serve a configured cell use `cnn_stack::stack::serve_cell`"
)]
pub type StackConfig = stack::StackConfig;
